//! Sweep the thetasubselect selectivity (the paper's Fig. 15 axis) and
//! watch how traffic scales with the fraction of the column retrieved.
//!
//! ```sh
//! cargo run --release --example selectivity_sweep
//! ```

use elastic_numa::prelude::*;
use emca_metrics::table::{fnum, Table};

fn main() {
    let data = TpchData::generate(TpchScale { sf: 0.05, seed: 42 });
    let mut t = Table::new(
        "thetasubselect selectivity sweep (8 clients, adaptive mode)",
        &["selectivity_pct", "qps", "imc_GB", "l3_misses", "out_rows"],
    );
    for sel in [2u8, 8, 32, 100] {
        let out = run(
            RunConfig::new(
                Alloc::Adaptive,
                8,
                Workload::Repeat {
                    spec: QuerySpec::ThetaSubselect { sel_pct: sel },
                    iterations: 2,
                },
            )
            .with_scale(data.scale),
            &data,
        );
        let rows = out.results.first().map(|r| r.result.len()).unwrap_or(0);
        t.row(vec![
            sel.to_string(),
            fnum(out.throughput_qps(), 2),
            fnum(
                out.imc_bytes_per_socket().iter().sum::<u64>() as f64 / 1e9,
                3,
            ),
            out.l3_misses_per_socket().iter().sum::<u64>().to_string(),
            rows.to_string(),
        ]);
    }
    println!("{}", t.render());
}
