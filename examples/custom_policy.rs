//! A custom `Policy` and a custom `Scenario`, registered from user
//! code — the one-file extension path the experiment API exists for.
//!
//! The policy (`WidestFirst`) allocates one core per node before
//! doubling up anywhere (sparse-style) but *releases* from the
//! page-coldest node (adaptive-style) — a mix no built-in provides.
//! The scenario wires it into the standard runner next to the OS
//! baseline and renders a two-row table, exactly like the built-in
//! figures do. Run it:
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use elastic_core::{AllocationMode, ModeCtx, Policy, SparseMode};
use emca_harness::{
    run, Alloc, ExperimentSpec, FnScenario, PolicyFactory, RunConfig, Scenario, ScenarioError,
    ScenarioRegistry,
};
use numa_sim::CoreId;
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Sparse growth, page-cold release.
#[derive(Default)]
struct WidestFirst {
    grow: SparseMode,
    release: elastic_core::AdaptiveMode,
}

impl Policy for WidestFirst {
    fn name(&self) -> &str {
        "widest-first"
    }

    fn next_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        AllocationMode::next_core(&mut self.grow, ctx)
    }

    fn release_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        AllocationMode::release_core(&mut self.release, ctx)
    }
    // `observe`, `shape` and `decide` keep their defaults: follow the
    // PrT net's verdict. See `elastic_core::HillClimbPolicy` for a
    // policy that overrides all three.
}

/// The scenario body: one OS run, one mechanism run under the custom
/// policy, two summary rows.
fn widest_first_scenario(spec: &ExperimentSpec) -> Result<(), ScenarioError> {
    let scale = spec.scale(0.002);
    let users = spec.users_or(4);
    let iters = spec.iters_or(2);
    let data = TpchData::generate(scale);
    let workload = Workload::Repeat {
        spec: QuerySpec::Q6 { variant: 0 },
        iterations: iters,
    };

    let os = run(
        spec.apply(RunConfig::new(Alloc::OsAll, users, workload.clone()).with_scale(scale)),
        &data,
    );
    let custom = run(
        spec.apply(
            RunConfig::new(Alloc::Adaptive, users, workload)
                .with_scale(scale)
                .with_custom_policy(PolicyFactory::new("widest-first", || {
                    Box::new(WidestFirst::default())
                })),
        ),
        &data,
    );
    for (name, out) in [("OS (all cores)", &os), ("widest-first", &custom)] {
        println!(
            "{name:<16} qps={:<8.2} ht={:.3} GB  mean response={}",
            out.throughput_qps(),
            out.ht_bytes() as f64 / 1e9,
            out.mean_response(),
        );
    }
    if os.throughput_qps() <= 0.0 || custom.throughput_qps() <= 0.0 {
        return Err("a run produced no throughput".into());
    }
    Ok(())
}

fn main() {
    // Register the custom scenario alongside nothing else (a user
    // registry; `emca_bench::scenarios::registry()` would give the
    // built-ins to extend instead).
    let mut registry = ScenarioRegistry::new();
    registry
        .register(Box::new(FnScenario {
            name: "widest_first",
            about: "sparse growth + page-cold release vs the OS baseline",
            schemas: &[],
            run: widest_first_scenario,
            // The keys this scenario honours; pinning anything else
            // (e.g. `policy=`) is a hard SpecError, not a silent no-op.
            keys: &[
                "sf",
                "users",
                "iters",
                "warmup",
                "guard",
                "interval_ms",
                "backend",
            ],
        }))
        .expect("fresh registry");

    println!(
        "registered scenarios: {:?} ({})",
        registry.names(),
        registry
            .get("widest_first")
            .map(Scenario::about)
            .unwrap_or_default()
    );
    let spec = ExperimentSpec::for_scenario("widest_first");
    spec.log_resolved();
    if let Err(e) = registry.run("widest_first", &spec) {
        eprintln!("widest_first: {e}");
        std::process::exit(1);
    }
}
