//! Quickstart: boot the simulated Opteron machine, load TPC-H, run Q6
//! under the elastic mechanism, and print what the allocator did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use elastic_numa::prelude::*;

fn main() {
    // 1. A tiny TPC-H database (raise sf for realistic cache pressure).
    let data = TpchData::generate(TpchScale { sf: 0.02, seed: 42 });
    println!(
        "generated {} MB of TPC-H data ({} lineitem rows)",
        data.raw_bytes() / 1_000_000,
        data.scale.lineitem_rows()
    );

    // 2. Run the same Q6 workload under the OS baseline and under the
    //    adaptive elastic mechanism.
    let workload = Workload::Repeat {
        spec: QuerySpec::Q6 { variant: 0 },
        iterations: 4,
    };
    for alloc in [Alloc::OsAll, Alloc::Adaptive] {
        let out = run(
            RunConfig::new(alloc, 8, workload.clone()).with_scale(data.scale),
            &data,
        );
        println!(
            "\n[{alloc:?}] {} queries in {} ({:.1} q/s)",
            out.results.len(),
            out.wall,
            out.throughput_qps()
        );
        println!(
            "  HT traffic: {:.2} GB, minor faults: {}, migrations: {}",
            out.ht_bytes() as f64 / 1e9,
            out.minor_faults(),
            out.sched.migrations
        );
        if !out.transitions.is_empty() {
            println!("  mechanism transitions (first 5):");
            for e in out.transitions.iter().take(5) {
                println!("    {} {} u={} -> {} cores", e.at, e.label, e.u, e.nalloc);
            }
        }
        // The revenue is a real query result, identical in every mode.
        if let Some(first) = out.results.first() {
            println!("  Q6 revenue: {:.2}", first.result.as_scalar());
        }
    }
}
