//! Compare all four allocation policies on a concurrent OLAP mix —
//! the experiment at the heart of the paper's §V.
//!
//! ```sh
//! cargo run --release --example adaptive_vs_os
//! ```

use elastic_numa::prelude::*;
use emca_metrics::table::{fnum, Table};

fn main() {
    let data = TpchData::generate(TpchScale { sf: 0.05, seed: 42 });
    let specs: Vec<QuerySpec> = [1u8, 3, 6, 9, 14, 19]
        .into_iter()
        .map(|n| QuerySpec::Tpch {
            number: n,
            variant: 0,
        })
        .collect();
    let workload = Workload::Mixed {
        specs,
        iterations: 4,
        seed: 7,
    };

    let mut t = Table::new(
        "allocation policies on a mixed OLAP workload (16 clients)",
        &[
            "policy",
            "qps",
            "mean_resp_ms",
            "ht_GB",
            "faults",
            "steals",
            "cores_mean",
        ],
    );
    for alloc in Alloc::all() {
        let out = run(
            RunConfig::new(alloc, 16, workload.clone()).with_scale(data.scale),
            &data,
        );
        t.row(vec![
            format!("{alloc:?}"),
            fnum(out.throughput_qps(), 2),
            fnum(out.mean_response().as_millis_f64(), 2),
            fnum(out.ht_bytes() as f64 / 1e9, 3),
            out.minor_faults().to_string(),
            out.sched.steals.to_string(),
            fnum(out.cores_series.mean().unwrap_or(16.0), 1),
        ]);
    }
    println!("{}", t.render());
}
