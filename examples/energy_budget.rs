//! Estimate the energy cost of a workload under different allocation
//! policies using the paper's ACP + energy-per-bit methodology (Fig. 20).
//!
//! ```sh
//! cargo run --release --example energy_budget
//! ```

use elastic_numa::prelude::*;
use emca_metrics::table::{fnum, Table};
use numa_sim::EnergyModel;

fn main() {
    let data = TpchData::generate(TpchScale { sf: 0.05, seed: 42 });
    let model = EnergyModel::opteron_8387();
    let workload = Workload::Repeat {
        spec: QuerySpec::Q6 { variant: 0 },
        iterations: 6,
    };

    let mut t = Table::new(
        "energy estimate (Opteron 8387 ACP model, 16 clients)",
        &["policy", "wall_s", "cpu_J", "ht_J", "total_J"],
    );
    for alloc in [Alloc::OsAll, Alloc::Dense, Alloc::Adaptive] {
        let out = run(
            RunConfig::new(alloc, 16, workload.clone()).with_scale(data.scale),
            &data,
        );
        let e = model.estimate(out.wall, &out.busy_ns(), 4, out.ht_bytes());
        t.row(vec![
            format!("{alloc:?}"),
            fnum(out.wall.as_secs_f64(), 3),
            fnum(e.cpu_j, 1),
            fnum(e.ht_j, 2),
            fnum(e.total(), 1),
        ]);
    }
    println!("{}", t.render());
    println!("(the paper reports 26.05% total energy savings for adaptive vs OS)");
}
