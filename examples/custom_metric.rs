//! Drive the PetriNet with the HT/IMC interconnect-traffic strategy of
//! §V-B instead of CPU load, and inspect the net itself: the abstract
//! model is metric-agnostic.
//!
//! ```sh
//! cargo run --release --example custom_metric
//! ```

use elastic_numa::prelude::*;
use prt_petrinet::{ElasticNet, Thresholds};

fn main() {
    // The generic PrT net is usable standalone: here is the incidence
    // matrix A^T = Post - Pre of the paper's Fig. 8, printed
    // symbolically.
    let net = ElasticNet::new(Thresholds::ht_imc_default(), 16, 1);
    println!("{}", net.net().incidence_text());

    // And the full mechanism, driven by the interconnect-traffic ratio.
    let data = TpchData::generate(TpchScale { sf: 0.05, seed: 42 });
    let workload = Workload::Repeat {
        spec: QuerySpec::Q6 { variant: 0 },
        iterations: 4,
    };
    for metric in [MetricKind::CpuLoad, MetricKind::HtImcRatio] {
        let out = run(
            RunConfig::new(Alloc::Adaptive, 8, workload.clone())
                .with_scale(data.scale)
                .with_metric(metric),
            &data,
        );
        println!(
            "[{metric:?}] {} queries, {} transitions, final allocation {} cores, HT {:.2} GB",
            out.results.len(),
            out.transitions.len(),
            out.cores_series.last().map(|(_, v)| v).unwrap_or(0.0),
            out.ht_bytes() as f64 / 1e9,
        );
    }
}
