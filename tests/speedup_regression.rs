//! Headline-claim regression: the adaptive mechanism must beat the OS
//! baseline on the paper's mixed TPC-H workload. This is the same
//! comparison `tab_summary` tabulates (and the CI fidelity job
//! enforces), pinned at the default scale the acceptance criteria
//! name: `EMCA_SF=0.25`, 64 users. Release-only — roughly half a
//! minute of deterministic simulation.

use emca_harness::{report, run, Alloc, RunConfig};
use emca_metrics::stats;
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::{QuerySpec, TpchData, TpchScale};

fn mixed(iters: u32) -> Workload {
    let specs: Vec<QuerySpec> = (1..=22)
        .flat_map(|n| {
            (0..4).map(move |v| QuerySpec::Tpch {
                number: n,
                variant: v,
            })
        })
        .collect();
    Workload::Mixed {
        specs,
        iterations: iters,
        seed: 7,
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "default-scale run is release-only; CI's fidelity job gates it"
)]
fn adaptive_beats_os_on_mixed_workload() {
    let data = TpchData::generate(TpchScale { sf: 0.25, seed: 42 });
    for flavor in [Flavor::MonetDb, Flavor::SqlServer] {
        let os = run(
            RunConfig::new(Alloc::OsAll, 64, mixed(6))
                .with_scale(data.scale)
                .with_flavor(flavor),
            &data,
        );
        let ad = run(
            RunConfig::new(Alloc::Adaptive, 64, mixed(6))
                .with_scale(data.scale)
                .with_flavor(flavor),
            &data,
        );
        let speedups: Vec<f64> = report::speedup_by_tag(&os.results, &ad.results)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        let max = stats::max(&speedups).expect("speedups measured");
        let avg = stats::mean(&speedups).expect("speedups measured");
        assert!(
            max > 1.0,
            "{flavor:?}: adaptive max speedup {max:.2} must exceed 1.0"
        );
        assert!(
            avg > 1.0,
            "{flavor:?}: adaptive avg speedup {avg:.2} must exceed 1.0"
        );
    }
}
