//! Smoke tests for the documented `examples/` entry points.
//!
//! `cargo test` always compiles examples, so the binaries are present
//! next to the test executable (`target/<profile>/examples/`). Running
//! them here keeps the README's entry points from silently rotting: an
//! example that panics, deadlocks the simulated kernel, or stops
//! printing its report fails the suite.

use std::path::PathBuf;
use std::process::Command;

/// Directory holding compiled example binaries for the active profile.
fn examples_dir() -> PathBuf {
    // target/<profile>/deps/examples_smoke-<hash> -> target/<profile>/examples
    let mut dir = std::env::current_exe().expect("current_exe");
    dir.pop(); // deps/
    dir.pop(); // <profile>/
    dir.join("examples")
}

fn run_example(name: &str) -> String {
    let exe = examples_dir().join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    assert!(
        exe.is_file(),
        "example binary missing: {} (examples are built by `cargo test`)",
        exe.display()
    );
    let out = Command::new(&exe)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", exe.display()));
    assert!(
        out.status.success(),
        "{name} exited with {:?}\n--- stdout\n{}\n--- stderr\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("example output must be UTF-8")
}

#[test]
fn quickstart_runs() {
    let out = run_example("quickstart");
    assert!(out.contains("generated"), "missing data-gen line:\n{out}");
}

#[test]
fn adaptive_vs_os_runs() {
    let out = run_example("adaptive_vs_os");
    assert!(!out.trim().is_empty(), "no output");
}

#[test]
fn custom_metric_runs() {
    let out = run_example("custom_metric");
    assert!(!out.trim().is_empty(), "no output");
}

#[test]
fn energy_budget_runs() {
    let out = run_example("energy_budget");
    assert!(!out.trim().is_empty(), "no output");
}

#[test]
fn selectivity_sweep_runs() {
    let out = run_example("selectivity_sweep");
    assert!(!out.trim().is_empty(), "no output");
}

#[test]
fn custom_policy_runs() {
    let out = run_example("custom_policy");
    assert!(
        out.contains("widest-first"),
        "custom policy must appear in the report:\n{out}"
    );
}
