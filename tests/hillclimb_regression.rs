//! Hill-climbing LONC regression (ROADMAP item): on the paper's mixed
//! TPC-H workload at the pinned default scale, the throughput-feedback
//! climber must not starve the workload relative to the tuned Eq. 1
//! guard — its steady-state allocation stays at or above the
//! guard-driven adaptive mode's, and its throughput keeps pace. The
//! climber replaces the guard's fixed `mc_pressure ≥ 0.9` threshold
//! with probe-and-revert evidence, so "never under-allocate versus the
//! guard" is exactly the property that makes it a drop-in.
//!
//! Release-only, like `speedup_regression`: a pair of default-scale
//! mixed-workload runs.

use emca_harness::{run, Alloc, RunConfig, RunOutput};
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData, TpchScale};

fn mixed(iters: u32) -> Workload {
    let specs: Vec<QuerySpec> = (1..=22)
        .flat_map(|n| {
            (0..4).map(move |v| QuerySpec::Tpch {
                number: n,
                variant: v,
            })
        })
        .collect();
    Workload::Mixed {
        specs,
        iterations: iters,
        seed: 7,
    }
}

/// The allocation the run settled on: the mean of the sampled
/// cores-over-time series. (The climber probes periodically, so the
/// longest-stable-streak view under-reports it; the mean is what the
/// workload actually ran on.)
fn steady_cores(out: &RunOutput) -> f64 {
    out.cores_series
        .mean()
        .expect("default-scale runs outlive the sampling interval")
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "default-scale run is release-only; CI's fidelity job covers the scale"
)]
fn hillclimb_never_ends_below_the_guard_steady_state() {
    let data = TpchData::generate(TpchScale { sf: 0.25, seed: 42 });
    let guard = run(
        RunConfig::new(Alloc::Adaptive, 64, mixed(2)).with_scale(data.scale),
        &data,
    );
    let climber = run(
        RunConfig::new(Alloc::HillClimb, 64, mixed(2)).with_scale(data.scale),
        &data,
    );
    let guard_cores = steady_cores(&guard);
    let climber_cores = steady_cores(&climber);
    assert!(
        climber_cores >= guard_cores - 0.5,
        "hill climber settled at {climber_cores:.2} cores, below the Eq. 1 \
         guard's steady state of {guard_cores:.2}"
    );
    // Not starving also means not slower: the climber must keep pace
    // with the guard-driven adaptive mode on the same workload.
    assert!(
        climber.throughput_qps() >= 0.95 * guard.throughput_qps(),
        "hill climber throughput {:.2} qps fell behind the guard's {:.2} qps",
        climber.throughput_qps(),
        guard.throughput_qps()
    );
    // And the guard comparison is meaningful: both trajectories grew
    // beyond their single starting core.
    assert!(guard_cores > 1.0 && climber_cores > 1.0);
}
