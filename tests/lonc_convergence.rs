//! LONC convergence properties (§IV-A): across scale factors and user
//! counts, the elastic allocation must reach a *fixed point* — ramp up,
//! settle, and (once clients drain) release — without oscillating
//! between allocate and release on successive control ticks. PR 1's
//! first runs showed exactly that oscillation at small scale factors;
//! the windowed-demand metric plus release hysteresis pin it down.
//!
//! The property is checked over the whole grid
//! `EMCA_SF ∈ {0.002, 0.02, 0.25} × users ∈ {4, 16, 64}`; the expensive
//! sf=0.25 column only runs in release builds (the CI fidelity job
//! covers that scale too).

use emca_harness::{run, Alloc, RunConfig, RunOutput};
use prt_petrinet::AllocAction;
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData, TpchScale};

fn q6(iters: u32) -> Workload {
    Workload::Repeat {
        spec: QuerySpec::Q6 { variant: 0 },
        iterations: iters,
    }
}

/// Number of allocate↔release direction flips in the transition log.
/// A healthy trajectory is ramp-up (allocates), a long hold, then the
/// end-of-run drain (releases): at most one flip. Oscillation — shedding
/// a core that the very next tick re-allocates — shows up as many flips.
fn direction_flips(out: &RunOutput) -> usize {
    let mut flips = 0;
    let mut last: Option<AllocAction> = None;
    for e in &out.transitions {
        match e.action {
            AllocAction::Hold => {}
            a => {
                if let Some(prev) = last {
                    if prev != a {
                        flips += 1;
                    }
                }
                last = Some(a);
            }
        }
    }
    flips
}

/// The longest run of control steps holding one allocation, as a
/// fraction of all control steps.
fn longest_hold_fraction(out: &RunOutput) -> f64 {
    let n = out.transitions.len();
    if n == 0 {
        return 1.0;
    }
    let mut best = 0usize;
    let mut cur = 0usize;
    let mut nalloc = u32::MAX;
    for e in &out.transitions {
        if e.nalloc == nalloc {
            cur += 1;
        } else {
            nalloc = e.nalloc;
            cur = 1;
        }
        best = best.max(cur);
    }
    best as f64 / n as f64
}

fn check_grid(alloc: Alloc, min_hold: f64, sfs: &[f64], users: &[usize]) {
    for &sf in sfs {
        let data = TpchData::generate(TpchScale { sf, seed: 42 });
        for &n in users {
            let out = run(
                RunConfig::new(alloc, n, q6(2)).with_scale(data.scale),
                &data,
            );
            let flips = direction_flips(&out);
            assert!(
                flips <= 3,
                "sf={sf} users={n}: allocation oscillates \
                 ({flips} allocate/release direction flips over {} steps)",
                out.transitions.len(),
            );
            // A fixed point exists: some allocation is held for a
            // meaningful share of the control steps. Runs short enough
            // to be all ramp (a handful of control steps before the
            // clients drain) have no settling phase to measure.
            let hold = longest_hold_fraction(&out);
            if out.transitions.len() >= 48 {
                assert!(
                    hold >= min_hold,
                    "sf={sf} users={n}: no stable allocation (longest hold \
                     {hold:.2} of {} steps)",
                    out.transitions.len(),
                );
            }
            // And the bounds always hold.
            for e in &out.transitions {
                assert!((1..=16).contains(&e.nalloc), "nalloc out of range: {e:?}");
            }
        }
    }
}

#[test]
fn lonc_converges_at_small_scale() {
    check_grid(Alloc::Adaptive, 0.25, &[0.002, 0.02], &[4, 16, 64]);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "sf=0.25 grid is release-only; CI's fidelity job covers it"
)]
fn lonc_converges_at_default_scale() {
    check_grid(Alloc::Adaptive, 0.25, &[0.25], &[4, 16, 64]);
}

// The hill climber must satisfy the same fixed-point property as the
// guard-driven adaptive mode over the same grid: its probe/revert cycle
// may not oscillate the allocation (a revert immediately re-grown, a
// growth immediately reverted and retried every tick). Its hold bound
// is looser: a climber *probes* its way up, so short Q6 runs spend a
// larger share of their control steps visiting candidate sizes — the
// flip count above is the real oscillation guard.

#[test]
fn hillclimb_converges_at_small_scale() {
    check_grid(Alloc::HillClimb, 0.15, &[0.002, 0.02], &[4, 16, 64]);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "sf=0.25 grid is release-only; CI's fidelity job covers it"
)]
fn hillclimb_converges_at_default_scale() {
    check_grid(Alloc::HillClimb, 0.15, &[0.25], &[4, 16, 64]);
}
