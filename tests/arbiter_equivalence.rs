//! Decision-equivalence property suite: the indexed [`TenantArbiter`]
//! against the retained O(tenants × cores) scan oracle
//! ([`ReferenceArbiter`]). A random churn trace — register, deregister,
//! demand notes, claims, releases and yield checks — is interpreted
//! against both implementations in lock-step; after every operation the
//! full observable surface must agree (slot assignment, ownership
//! masks, guarantees, free-core count, yield predicates and the
//! denial/yield counters), and the indexed arbiter's internal indexes
//! must survive a full cross-check against its slab.
//!
//! Seeds are pinned by construction: the vendored proptest derives each
//! test's case stream from the FNV hash of the test name, so a CI
//! failure always reproduces locally.

use elastic_core::tenant::reference::ReferenceArbiter;
use elastic_core::{ArbiterMode, TenantArbiter, TenantId};
use numa_sim::CoreId;
use proptest::prelude::*;

/// One step of the interpreted trace: an op selector plus generic
/// operands (tenant pick, core pick, weight/budget material). What an
/// operand means depends on the op and the live-tenant set at that
/// point, so every generated trace is valid by construction.
type RawOp = (u8, u32, u32, u32);

/// Interprets `trace` against both arbiters and asserts the observable
/// surfaces stay identical after every operation.
fn run_trace(
    mode: ArbiterMode,
    ntotal: u32,
    trace: &[RawOp],
) -> Result<(), proptest::TestCaseError> {
    let mut indexed = TenantArbiter::new(mode, ntotal);
    let mut oracle = ReferenceArbiter::new(mode, ntotal);
    let mut live: Vec<TenantId> = Vec::new();
    let mut births = 0u32;

    for &(op, a, b, c) in trace {
        match op % 6 {
            // Register (when a slot is free) and seed the lowest free
            // core, as the churn runners do at admission.
            0 => {
                if live.len() < ntotal as usize {
                    let weight = 1 + c % 4;
                    let budget = (b % 3 == 0).then_some(1 + b % ntotal);
                    let name = format!("t{births}");
                    let ti = indexed.register(name.clone(), weight, budget);
                    let to = oracle.register(name, weight, budget);
                    prop_assert_eq!(ti, to, "slot reuse diverged");
                    let seed = (0..ntotal)
                        .map(|k| CoreId(k as u16))
                        .find(|&k| !indexed.foreign_mask(ti).contains(k));
                    if let Some(core) = seed {
                        indexed.claim_initial(ti, core);
                        oracle.claim_initial(to, core);
                    }
                    live.push(ti);
                    births += 1;
                }
            }
            // Deregister a random live tenant; reclaimed masks agree.
            1 => {
                if !live.is_empty() {
                    let t = live.remove(a as usize % live.len());
                    prop_assert_eq!(indexed.deregister(t), oracle.deregister(t));
                }
            }
            // Demand note (grow or cool-down).
            2 => {
                if !live.is_empty() {
                    let t = live[a as usize % live.len()];
                    indexed.note(t, b % 2 == 0);
                    oracle.note(t, b % 2 == 0);
                }
            }
            // Claim attempt on an arbitrary core — owned, foreign and
            // free targets all arise; grant/deny must agree.
            3 => {
                if !live.is_empty() {
                    let t = live[a as usize % live.len()];
                    let core = CoreId((b % ntotal) as u16);
                    prop_assert_eq!(
                        indexed.try_claim(t, core),
                        oracle.try_claim(t, core),
                        "claim decision diverged"
                    );
                }
            }
            // Release one of the tenant's cores (when it has any).
            4 => {
                if !live.is_empty() {
                    let t = live[a as usize % live.len()];
                    let owned: Vec<CoreId> = indexed.owned(t).iter().collect();
                    if !owned.is_empty() {
                        let core = owned[b as usize % owned.len()];
                        indexed.release(t, core);
                        oracle.release(t, core);
                    }
                }
            }
            // Yield check (pure predicate).
            _ => {
                if !live.is_empty() {
                    let t = live[a as usize % live.len()];
                    prop_assert_eq!(
                        indexed.must_yield(t),
                        oracle.must_yield(t),
                        "yield decision diverged"
                    );
                }
            }
        }

        // Full observable surface after every op.
        indexed.check_index_invariants();
        prop_assert_eq!(indexed.free_cores(), oracle.free_cores());
        prop_assert_eq!(indexed.n_tenants(), oracle.n_tenants());
        prop_assert_eq!(indexed.denials, oracle.denials, "denial counters diverged");
        prop_assert_eq!(indexed.yields, oracle.yields);
        for &t in &live {
            prop_assert!(indexed.is_active(t) && oracle.is_active(t));
            prop_assert_eq!(indexed.owned(t), oracle.owned(t), "ownership diverged");
            prop_assert_eq!(indexed.foreign_mask(t), oracle.foreign_mask(t));
            prop_assert_eq!(indexed.guarantee(t), oracle.guarantee(t));
            prop_assert_eq!(indexed.must_yield(t), oracle.must_yield(t));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Strict-priority arbitration: indexed decisions equal the scan
    /// oracle's over any churn trace.
    #[test]
    fn priority_mode_matches_reference(
        ops in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64, 0u32..8), 1..250),
        ntotal in 2u32..24,
    ) {
        run_trace(ArbiterMode::Priority, ntotal, &ops)?;
    }

    /// Weighted fair-share arbitration: indexed decisions equal the
    /// scan oracle's over any churn trace.
    #[test]
    fn fairshare_mode_matches_reference(
        ops in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64, 0u32..8), 1..250),
        ntotal in 2u32..24,
    ) {
        run_trace(ArbiterMode::FairShare, ntotal, &ops)?;
    }

    /// Budget-capped arbitration: indexed decisions equal the scan
    /// oracle's over any churn trace.
    #[test]
    fn budget_mode_matches_reference(
        ops in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64, 0u32..8), 1..250),
        ntotal in 2u32..24,
    ) {
        run_trace(ArbiterMode::BudgetCapped, ntotal, &ops)?;
    }
}

/// A deterministic serverless-shaped soak: 256 tenants churned through
/// a 64-core arbiter at a 16-tenant resident cap, indexed vs oracle in
/// lock-step — the same shape the `tab_arbiter` benchmark times.
#[test]
fn soak_256_tenants_through_64_cores() {
    let mut indexed = TenantArbiter::new(ArbiterMode::FairShare, 64);
    let mut oracle = ReferenceArbiter::new(ArbiterMode::FairShare, 64);
    let mut live: std::collections::VecDeque<TenantId> = std::collections::VecDeque::new();
    let mut births = 0u32;
    while births < 256 || !live.is_empty() {
        while births < 256 && live.len() < 16 {
            let ti = indexed.register(format!("t{births}"), 1 + births % 5, None);
            let to = oracle.register(format!("t{births}"), 1 + births % 5, None);
            assert_eq!(ti, to);
            if let Some(core) = (0..64)
                .map(CoreId)
                .find(|&c| !indexed.foreign_mask(ti).contains(c))
            {
                indexed.claim_initial(ti, core);
                oracle.claim_initial(to, core);
            }
            live.push_back(ti);
            births += 1;
        }
        for &t in &live {
            indexed.note(t, true);
            oracle.note(t, true);
            let candidate = (0..64)
                .map(CoreId)
                .find(|&c| !indexed.owned(t).contains(c) && !indexed.foreign_mask(t).contains(c));
            if let Some(c) = candidate {
                assert_eq!(indexed.try_claim(t, c), oracle.try_claim(t, c));
            }
            assert_eq!(indexed.must_yield(t), oracle.must_yield(t));
            if indexed.must_yield(t) {
                if let Some(v) = indexed.owned(t).iter().last() {
                    indexed.release(t, v);
                    oracle.release(t, v);
                }
            }
        }
        indexed.check_index_invariants();
        if let Some(t) = live.pop_front() {
            assert_eq!(indexed.deregister(t), oracle.deregister(t));
        }
    }
    assert_eq!(indexed.denials, oracle.denials);
    assert_eq!(indexed.free_cores(), 64);
    assert_eq!(oracle.free_cores(), 64);
}
