//! Cross-crate integration tests: the paper's qualitative claims at tiny
//! scale, through the whole stack.

use elastic_numa::prelude::*;
use emca_harness::{run, Alloc, RunConfig};
use volcano_db::tpch::{QuerySpec, TpchData, TpchScale};

fn tiny() -> TpchData {
    TpchData::generate(TpchScale::test_tiny())
}

fn q6(iters: u32) -> Workload {
    Workload::Repeat {
        spec: QuerySpec::Q6 { variant: 0 },
        iterations: iters,
    }
}

#[test]
fn results_identical_across_policies() {
    // The allocation policy must never change query answers.
    let data = tiny();
    let mut revenues = Vec::new();
    for alloc in Alloc::all() {
        let out = run(
            RunConfig::new(alloc, 2, q6(1)).with_scale(data.scale),
            &data,
        );
        revenues.push(out.results[0].result.as_scalar());
    }
    for w in revenues.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-6,
            "policy changed a result: {revenues:?}"
        );
    }
}

#[test]
fn adaptive_reduces_interconnect_traffic() {
    // The headline locality claim: with node-0-homed data, the adaptive
    // mode's traffic is far below the OS baseline's. Needs a workload
    // big enough to raise real memory pressure (the Eq. 1 guard is what
    // keeps the allocation concentrated); test_tiny fits in cache and
    // lets the allocation spread freely.
    let data = TpchData::generate(TpchScale { sf: 0.02, seed: 42 });
    let os = run(
        RunConfig::new(Alloc::OsAll, 8, q6(3)).with_scale(data.scale),
        &data,
    );
    let ad = run(
        RunConfig::new(Alloc::Adaptive, 8, q6(3)).with_scale(data.scale),
        &data,
    );
    assert!(
        (ad.ht_bytes() as f64) < 0.5 * os.ht_bytes() as f64,
        "adaptive HT {} vs OS {}",
        ad.ht_bytes(),
        os.ht_bytes()
    );
    assert!(
        ad.minor_faults() < os.minor_faults(),
        "adaptive faults {} vs OS {}",
        ad.minor_faults(),
        os.minor_faults()
    );
}

#[test]
fn mechanism_respects_core_bounds() {
    let data = tiny();
    let out = run(
        RunConfig::new(Alloc::Adaptive, 8, q6(3))
            .with_scale(data.scale)
            .with_mech_interval(SimDuration::from_millis(2)),
        &data,
    );
    for e in &out.transitions {
        assert!((1..=16).contains(&e.nalloc), "nalloc out of range: {e:?}");
    }
    for &(_, v) in out.cores_series.samples() {
        assert!((1.0..=16.0).contains(&v), "cores series out of range: {v}");
    }
}

#[test]
fn sqlserver_flavor_runs_all_policies() {
    let data = tiny();
    for alloc in [Alloc::OsAll, Alloc::Adaptive] {
        let out = run(
            RunConfig::new(alloc, 2, q6(1))
                .with_scale(data.scale)
                .with_flavor(Flavor::SqlServer),
            &data,
        );
        assert_eq!(out.results.len(), 2);
    }
}

#[test]
fn stable_phases_complete_all_22_queries() {
    let data = tiny();
    let specs: Vec<QuerySpec> = (1..=22)
        .map(|n| QuerySpec::Tpch {
            number: n,
            variant: 0,
        })
        .collect();
    let out = run(
        RunConfig::new(Alloc::Adaptive, 2, Workload::StablePhases { specs }).with_scale(data.scale),
        &data,
    );
    assert_eq!(out.results.len(), 44, "2 clients x 22 phases");
    let mut tags: Vec<u32> = out.results.iter().map(|r| r.spec_tag).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(tags.len(), 22, "every query number must appear");
}

#[test]
fn energy_estimation_favors_restriction() {
    // Fewer allocated cores at similar utilisation => lower CPU energy.
    let data = tiny();
    let model = numa_sim::EnergyModel::opteron_8387();
    let os = run(
        RunConfig::new(Alloc::OsAll, 4, q6(3)).with_scale(data.scale),
        &data,
    );
    let ad = run(
        RunConfig::new(Alloc::Adaptive, 4, q6(3)).with_scale(data.scale),
        &data,
    );
    let e_os = model.estimate(os.wall, &os.busy_ns(), 4, os.ht_bytes());
    let e_ad = model.estimate(ad.wall, &ad.busy_ns(), 4, ad.ht_bytes());
    assert!(
        e_ad.ht_j <= e_os.ht_j,
        "HT energy must not grow under adaptive"
    );
    assert!(e_os.total() > 0.0 && e_ad.total() > 0.0);
}

#[test]
fn deterministic_replay() {
    // The whole stack is deterministic: identical configs give identical
    // measurements.
    let data = tiny();
    let out1 = run(
        RunConfig::new(Alloc::Adaptive, 3, q6(2)).with_scale(data.scale),
        &data,
    );
    let out2 = run(
        RunConfig::new(Alloc::Adaptive, 3, q6(2)).with_scale(data.scale),
        &data,
    );
    assert_eq!(out1.wall, out2.wall);
    assert_eq!(out1.ht_bytes(), out2.ht_bytes());
    assert_eq!(out1.minor_faults(), out2.minor_faults());
    assert_eq!(out1.sched.migrations, out2.sched.migrations);
    assert_eq!(out1.transitions.len(), out2.transitions.len());
}

#[test]
fn handcoded_dense_beats_sparse_on_locality() {
    let data = tiny();
    let dense = emca_harness::run_handcoded(
        &data,
        volcano_db::handcoded::CAffinity::Dense,
        2,
        4,
        2,
        SimDuration::from_secs(120),
    );
    let sparse = emca_harness::run_handcoded(
        &data,
        volcano_db::handcoded::CAffinity::Sparse,
        2,
        4,
        2,
        SimDuration::from_secs(120),
    );
    assert!(dense.ht_bytes() < sparse.ht_bytes());
    // Both compute the same revenue.
    assert!((dense.runs[0].1 - sparse.runs[0].1).abs() < 1e-6);
}
