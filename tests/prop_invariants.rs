//! Property-based tests (proptest) over the core invariants of every
//! layer: PrT net safety, cache model bounds, mask algebra, allocation
//! mode orderings, operator correctness vs naive references, and
//! scheduler confinement.

use proptest::prelude::*;

// ---------- PrT net safety --------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any sequence of load samples, the net keeps 1 <= nalloc <=
    /// ntotal and its structural invariants.
    #[test]
    fn prt_net_is_safe(us in proptest::collection::vec(-20i64..140, 1..200),
                       ntotal in 1u32..64,
                       n0 in 1u32..64) {
        let n0 = n0.min(ntotal);
        let mut net = prt_petrinet::ElasticNet::new(
            prt_petrinet::Thresholds::cpu_load_default(), ntotal, n0);
        for u in us {
            let report = net.step(u);
            prop_assert!((1..=ntotal).contains(&report.nalloc));
            net.check_invariants();
            // Classification must be exhaustive and exclusive.
            let th = net.thresholds();
            let expected = if u <= th.thmin {
                prt_petrinet::StateKind::Idle
            } else if u >= th.thmax {
                prt_petrinet::StateKind::Overload
            } else {
                prt_petrinet::StateKind::Stable
            };
            prop_assert_eq!(report.state, expected);
        }
    }

    /// Allocate/Release actions exactly track the nalloc delta.
    #[test]
    fn prt_actions_match_deltas(us in proptest::collection::vec(0i64..100, 1..100)) {
        let mut net = prt_petrinet::ElasticNet::new(
            prt_petrinet::Thresholds::cpu_load_default(), 16, 8);
        let mut prev = net.nalloc();
        for u in us {
            let report = net.step(u);
            let expected = match report.action {
                prt_petrinet::AllocAction::Allocate => prev + 1,
                prt_petrinet::AllocAction::Release => prev - 1,
                prt_petrinet::AllocAction::Hold => prev,
            };
            prop_assert_eq!(report.nalloc, expected);
            prev = report.nalloc;
        }
    }
}

// ---------- Cache model ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The LRU never exceeds capacity and a just-inserted entry always
    /// hits at its version.
    #[test]
    fn lru_capacity_and_hit(ops in proptest::collection::vec((0u64..50, 0u32..3), 1..300),
                            cap in 1usize..16) {
        let mut cache = numa_sim::LruCache::new(cap);
        for (seg, version) in ops {
            let seg = numa_sim::SegId(seg);
            cache.insert(seg, version);
            prop_assert!(cache.len() <= cap);
            prop_assert!(cache.contains_current(seg, version));
            prop_assert!(!cache.contains_current(seg, version.wrapping_add(1)));
        }
    }
}

// ---------- Core masks -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Mask algebra is consistent with set semantics.
    #[test]
    fn mask_set_semantics(a in proptest::collection::btree_set(0u16..16, 0..16),
                          b in proptest::collection::btree_set(0u16..16, 0..16)) {
        use os_sim::CoreMask;
        use numa_sim::CoreId;
        let ma = CoreMask::from_cores(a.iter().map(|&c| CoreId(c)));
        let mb = CoreMask::from_cores(b.iter().map(|&c| CoreId(c)));
        prop_assert_eq!(ma.count(), a.len());
        let inter: Vec<u16> = a.intersection(&b).copied().collect();
        prop_assert_eq!(ma.and(mb).count(), inter.len());
        let union: Vec<u16> = a.union(&b).copied().collect();
        prop_assert_eq!(ma.or(mb).count(), union.len());
        for &c in &a {
            prop_assert!(ma.contains(CoreId(c)));
        }
        // Iteration is sorted and complete.
        let listed: Vec<u16> = ma.iter().map(|c| c.0).collect();
        let sorted: Vec<u16> = a.iter().copied().collect();
        prop_assert_eq!(listed, sorted);
    }
}

// ---------- Allocation modes -------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// From any starting mask, repeatedly asking a mode for the next core
    /// fills the machine with no duplicates; releasing never drops the
    /// last core.
    #[test]
    fn modes_fill_without_duplicates(start in proptest::collection::btree_set(0u16..16, 0..8),
                                     pages in proptest::collection::vec(0u64..1000, 4),
                                     which in 0usize..3) {
        use elastic_core::{AllocationMode, DenseMode, SparseMode, AdaptiveMode, ModeCtx};
        use os_sim::CoreMask;
        use numa_sim::{CoreId, Topology};
        let topo = Topology::opteron_4x4();
        let mut mode: Box<dyn AllocationMode> = match which {
            0 => Box::new(DenseMode),
            1 => Box::new(SparseMode),
            _ => Box::new(AdaptiveMode::default()),
        };
        let mut mask = CoreMask::from_cores(start.iter().map(|&c| CoreId(c)));
        let mut added = 0;
        while let Some(core) = mode.next_core(&ModeCtx {
            topology: &topo,
            current: mask,
            barred: CoreMask::EMPTY,
            pages_per_node: &pages,
            mc_util_per_node: &[],
        }) {
            prop_assert!(!mask.contains(core), "duplicate allocation of {core:?}");
            mask.insert(core);
            added += 1;
            prop_assert!(added <= 16);
        }
        prop_assert_eq!(mask.count(), 16, "machine must end full");
        // Now release everything down to one core.
        while let Some(core) = mode.release_core(&ModeCtx {
            topology: &topo,
            current: mask,
            barred: CoreMask::EMPTY,
            pages_per_node: &pages,
            mc_util_per_node: &[],
        }) {
            prop_assert!(mask.contains(core));
            mask.remove(core);
        }
        prop_assert_eq!(mask.count(), 1, "release must stop at one core");
    }
}

// ---------- Operator correctness ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// scan_select over any partition split equals the naive filter.
    #[test]
    fn scan_select_partition_invariant(values in proptest::collection::vec(0.0f64..100.0, 1..500),
                                       threshold in 0.0f64..100.0,
                                       n_parts in 1u32..8) {
        use volcano_db::exec::eval::scan_select;
        use volcano_db::exec::plan::{CmpOp, ScalarPred};
        use volcano_db::exec::task::part_range;
        use volcano_db::storage::ColData;
        use std::sync::Arc;
        let col = ColData::F64(Arc::new(values.clone()));
        let pred = ScalarPred::Cmp(CmpOp::Lt, threshold);
        let mut split: Vec<u32> = Vec::new();
        for p in 0..n_parts {
            let (s, e) = part_range(values.len(), p, n_parts);
            split.extend(scan_select(&col, s, e, &pred));
        }
        let naive: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v < threshold)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(split, naive);
    }

    /// group_agg merged over any partition split equals a single pass.
    #[test]
    fn group_agg_partition_invariant(rows in proptest::collection::vec((0i64..10, 0.0f64..10.0), 1..300),
                                     n_parts in 1u32..6) {
        use volcano_db::exec::eval::{group_agg, merge_groups};
        use volcano_db::exec::plan::AggKind;
        use volcano_db::exec::task::part_range;
        use volcano_db::storage::ColData;
        use std::sync::Arc;
        let keys = ColData::I64(Arc::new(rows.iter().map(|r| r.0).collect()));
        let vals = ColData::F64(Arc::new(rows.iter().map(|r| r.1).collect()));
        let parts = (0..n_parts).map(|p| {
            let (s, e) = part_range(rows.len(), p, n_parts);
            group_agg(&keys, Some(&vals), AggKind::Sum, s, e)
        });
        let merged = merge_groups(parts);
        let single = merge_groups([group_agg(&keys, Some(&vals), AggKind::Sum, 0, rows.len())]);
        prop_assert_eq!(merged.len(), single.len());
        for (a, b) in merged.iter().zip(&single) {
            prop_assert_eq!(a.0, b.0);
            prop_assert!((a.1 - b.1).abs() < 1e-9);
        }
    }
}

// ---------- Scheduler confinement ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Work only ever runs on cores the group mask allows, for any mask.
    #[test]
    fn scheduler_confines_to_mask(cores in proptest::collection::btree_set(0u16..16, 1..16),
                                  n_threads in 1usize..8) {
        use os_sim::{Kernel, CoreMask, SpinWork};
        use emca_metrics::{SimDuration, SimTime};
        use numa_sim::CoreId;
        let mut kernel = Kernel::opteron_4x4();
        let mask = CoreMask::from_cores(cores.iter().map(|&c| CoreId(c)));
        let group = kernel.create_group(mask);
        for i in 0..n_threads {
            kernel.spawn(
                format!("w{i}"),
                group,
                None,
                Box::new(SpinWork::new(SimDuration::from_millis(3))),
            );
        }
        kernel.run_until(SimTime::from_millis(50));
        let busy = kernel.machine().counters().busy_ns.snapshot();
        for (idx, &b) in busy.iter().enumerate() {
            if !cores.contains(&(idx as u16)) {
                prop_assert_eq!(b, 0, "core {} ran masked work", idx);
            }
        }
        prop_assert_eq!(kernel.n_live_threads(), 0);
    }
}
