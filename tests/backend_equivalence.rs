//! Sim/threads backend equivalence: the simulated engine is the
//! deterministic-fidelity twin of the real-thread executor. With the
//! thread pool at the simulated machine's width (16), both backends
//! partition every operator identically and merge partials in strict
//! partition order, so each query's result is *bitwise* identical —
//! allocation and scheduling may only change timing.

use elastic_core::ArbiterMode;
use emca_harness::{
    run, run_tenants, Alloc, Backend, ChurnSpec, MultiTenantConfig, RunConfig, TenantRunConfig,
};
use volcano_db::client::Workload;
use volcano_db::exec::engine::QueryResult;
use volcano_db::tpch::{QuerySpec, TpchData, TpchScale};

/// A mixed workload exercising per-client RNG sequencing, joins,
/// group-bys and scalar aggregates.
fn mixed(iters: u32) -> Workload {
    Workload::Mixed {
        specs: vec![
            QuerySpec::Q6 { variant: 0 },
            QuerySpec::Tpch {
                number: 1,
                variant: 0,
            },
            QuerySpec::Tpch {
                number: 4,
                variant: 1,
            },
            QuerySpec::Tpch {
                number: 14,
                variant: 0,
            },
        ],
        iterations: iters,
        seed: 11,
    }
}

/// Sorted multiset of (label, full result debug) digests — submission
/// order differs across backends, so compare as a set of result values.
fn digests(results: &[QueryResult]) -> Vec<String> {
    let mut d: Vec<String> = results
        .iter()
        .map(|r| format!("{}:{:?}", r.label, r.result))
        .collect();
    d.sort();
    d
}

/// The equivalence argument needs the pool at machine width; a capped
/// pool (CI smoke) partitions differently by design.
fn pool_is_capped() -> bool {
    std::env::var("EMCA_THREADS").is_ok()
}

#[test]
fn sim_and_threads_agree_on_every_query_result() {
    if pool_is_capped() {
        eprintln!("EMCA_THREADS caps the pool; skipping width-sensitive equivalence check");
        return;
    }
    let data = TpchData::generate(TpchScale::test_tiny());
    let cfg = |backend| {
        RunConfig::new(Alloc::Adaptive, 3, mixed(2))
            .with_scale(data.scale)
            .with_backend(backend)
    };
    let sim = run(cfg(Backend::Sim), &data);
    let thr = run(cfg(Backend::Threads), &data);
    assert_eq!(sim.results.len(), thr.results.len());
    assert_eq!(
        digests(&sim.results),
        digests(&thr.results),
        "same queries must produce bitwise-identical results on both backends"
    );
    assert!(thr.wall > emca_metrics::SimDuration::ZERO);
    assert_eq!(thr.engine.queries_completed, sim.engine.queries_completed);
}

#[test]
fn threads_baseline_matches_mechanism_results() {
    if pool_is_capped() {
        eprintln!("EMCA_THREADS caps the pool; skipping width-sensitive equivalence check");
        return;
    }
    // Within the threads backend, the OS baseline (thread-per-client)
    // and the elastic pool must also agree on values.
    let data = TpchData::generate(TpchScale::test_tiny());
    let cfg = |alloc| {
        RunConfig::new(alloc, 2, mixed(2))
            .with_scale(data.scale)
            .with_backend(Backend::Threads)
    };
    let os = run(cfg(Alloc::OsAll), &data);
    let sparse = run(cfg(Alloc::Sparse), &data);
    assert_eq!(digests(&os.results), digests(&sparse.results));
    assert!(os.transitions.is_empty(), "no mechanism on the baseline");
    assert!(
        !sparse.cores_series.is_empty(),
        "mechanism samples the pool size"
    );
}

#[test]
fn multi_tenant_threads_run_matches_sim_results() {
    if pool_is_capped() {
        eprintln!("EMCA_THREADS caps the pool; skipping width-sensitive equivalence check");
        return;
    }
    let data = TpchData::generate(TpchScale::test_tiny());
    let cfg = |backend| {
        MultiTenantConfig::new(
            ArbiterMode::FairShare,
            vec![
                TenantRunConfig::new(
                    "a",
                    Workload::Repeat {
                        spec: QuerySpec::Q6 { variant: 0 },
                        iterations: 2,
                    },
                    2,
                ),
                TenantRunConfig::new("b", mixed(1), 2),
            ],
        )
        .with_scale(data.scale)
        .with_backend(backend)
    };
    let sim = run_tenants(cfg(Backend::Sim), &data);
    let thr = run_tenants(cfg(Backend::Threads), &data);
    assert_eq!(thr.tenants.len(), 2);
    for (s, t) in sim.tenants.iter().zip(&thr.tenants) {
        assert_eq!(s.config.name, t.config.name);
        assert_eq!(
            digests(&s.results),
            digests(&t.results),
            "tenant {} diverged across backends",
            s.config.name
        );
        assert!(t.control_steps > 0, "pool controller must run");
    }
}

/// The shared 16-tenant churn plan of the churn-equivalence tests:
/// admissions queue behind a 5-slot resident cap, demand is
/// Zipf-skewed, and arrivals scatter over half a second.
fn churn_16_config(data: &TpchData, backend: Backend) -> MultiTenantConfig {
    let mut churn = ChurnSpec::new(16);
    churn.resident = Some(5);
    churn.spread = Some(0.5);
    let plan = churn.plan(7, 2, 2);
    MultiTenantConfig::new(ArbiterMode::FairShare, plan.tenant_configs())
        .with_scale(data.scale)
        .with_resident_cap(plan.resident)
        .with_backend(backend)
}

#[test]
fn churn_sim_runs_are_byte_identical_across_repeats() {
    // Determinism of the sim churn lifecycle: two runs of the same
    // seeded plan must agree byte-for-byte — results, admission times,
    // every metric series.
    let data = TpchData::generate(TpchScale::test_tiny());
    let a = run_tenants(churn_16_config(&data, Backend::Sim), &data);
    let b = run_tenants(churn_16_config(&data, Backend::Sim), &data);
    assert_eq!(a.wall, b.wall);
    assert_eq!(a.arbiter_denials, b.arbiter_denials);
    assert_eq!(a.arbiter_yields, b.arbiter_yields);
    assert_eq!(a.tenants.len(), b.tenants.len());
    for (s, t) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(s.config.name, t.config.name);
        assert_eq!(
            s.started_at, t.started_at,
            "{} admission moved",
            s.config.name
        );
        assert_eq!(s.finished_at, t.finished_at);
        assert_eq!(
            format!("{:?}", s.results),
            format!("{:?}", t.results),
            "tenant {} results diverged across repeats",
            s.config.name
        );
        assert_eq!(
            format!("{:?}{:?}{:?}", s.cores_series, s.load_series, s.qps_series),
            format!("{:?}{:?}{:?}", t.cores_series, t.load_series, t.qps_series),
            "tenant {} series diverged across repeats",
            s.config.name
        );
    }
}

#[test]
fn churn_threads_run_loses_nothing_and_matches_sim_values() {
    if pool_is_capped() {
        eprintln!("EMCA_THREADS caps the pool; skipping width-sensitive equivalence check");
        return;
    }
    // The same 16-tenant plan on both backends: exact accounting (no
    // query lost across any departure) and bitwise-identical per-query
    // values; only timing may differ.
    let data = TpchData::generate(TpchScale::test_tiny());
    let mut churn = ChurnSpec::new(16);
    churn.resident = Some(5);
    churn.spread = Some(0.5);
    let plan = churn.plan(7, 2, 2);
    let expected = plan.expected_completions();

    let sim = run_tenants(churn_16_config(&data, Backend::Sim), &data);
    let thr = run_tenants(churn_16_config(&data, Backend::Threads), &data);
    for out in [&sim, &thr] {
        let total: u64 = out.tenants.iter().map(|t| t.results.len() as u64).sum();
        assert_eq!(total, expected, "lost queries across departures");
        assert!(out.errors.is_empty());
    }
    assert_eq!(sim.tenants.len(), thr.tenants.len());
    for (s, t) in sim.tenants.iter().zip(&thr.tenants) {
        assert_eq!(s.config.name, t.config.name);
        assert_eq!(
            digests(&s.results),
            digests(&t.results),
            "tenant {} diverged across backends",
            s.config.name
        );
    }
}
