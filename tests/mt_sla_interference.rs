//! `SlaCappedPolicy` budget composition under interference: a tenant
//! carrying SLA budgets must keep them while an *uncapped* antagonist
//! ramps on the same machine. The core budget is a hard invariant (the
//! governor's cap plus the arbiter's budget-capped ceiling both bind —
//! never a single sample above it); the power budget is a rolling cap
//! (violations ratchet the ceiling down), so it is asserted as a
//! steady-state property.

use elastic_core::{ArbiterMode, SlaPolicy};
use emca_harness::{run_tenants, MultiTenantConfig, MultiTenantOutput, TenantRunConfig};
use emca_metrics::SimDuration;
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData, TpchScale};

fn q6(iters: u32) -> Workload {
    Workload::Repeat {
        spec: QuerySpec::Q6 { variant: 0 },
        iterations: iters,
    }
}

/// A heavier antagonist mix so its mechanism genuinely ramps.
fn olap(iters: u32) -> Workload {
    Workload::Mixed {
        specs: vec![
            QuerySpec::Tpch {
                number: 3,
                variant: 0,
            },
            QuerySpec::Tpch {
                number: 6,
                variant: 0,
            },
            QuerySpec::Tpch {
                number: 18,
                variant: 0,
            },
        ],
        iterations: iters,
        seed: 7,
    }
}

fn run(mode: ArbiterMode, capped_sla: SlaPolicy, scale: TpchScale) -> MultiTenantOutput {
    let data = TpchData::generate(scale);
    let mut cfg = MultiTenantConfig::new(
        mode,
        vec![
            TenantRunConfig::new("capped", q6(6), 4).with_sla(capped_sla),
            TenantRunConfig::new("antagonist", olap(4), 8)
                .with_start_after(SimDuration::from_millis(5)),
        ],
    )
    .with_scale(data.scale)
    .with_mech_interval(SimDuration::from_millis(1));
    // Small-scale runs finish in tens of milliseconds; the default
    // 100 ms sampling would miss them entirely.
    cfg.sample_every = SimDuration::from_millis(1);
    run_tenants(cfg, &data)
}

#[test]
fn core_budget_holds_while_antagonist_ramps() {
    let cap = 3u32;
    let out = run(
        ArbiterMode::BudgetCapped,
        SlaPolicy::cores(cap),
        TpchScale::test_tiny(),
    );
    let capped = out.tenant("capped").unwrap();
    let antagonist = out.tenant("antagonist").unwrap();
    // The invariant: not one sample of the capped tenant's allocation
    // above its budget, from install to drain.
    assert!(
        capped.cores_max() <= cap as f64,
        "capped tenant exceeded its core budget: {} > {cap}",
        capped.cores_max()
    );
    // The antagonist must actually have ramped past the victim's cap —
    // otherwise the run never exercised the contention.
    assert!(
        antagonist.cores_max() > cap as f64,
        "antagonist never ramped ({} cores max): the scenario is vacuous",
        antagonist.cores_max()
    );
    // The budget must not starve the tenant outright.
    assert!(capped.results.len() == 6 * 4, "capped tenant must finish");
    assert!(capped.throughput_qps() > 0.0);
}

/// Steady-state allocation: mean cores over the second half of the
/// tenant's active window (the first half is the ramp).
fn steady_cores(out: &MultiTenantOutput, name: &str) -> f64 {
    let t = out.tenant(name).unwrap();
    let mid = t.started_at + t.finished_at.since(t.started_at) / 2;
    t.cores_between(mid, t.finished_at)
        .expect("steady-state samples")
}

#[test]
fn power_budget_caps_steady_state_allocation() {
    // Machine power model: 4 sockets x (25 W idle .. 75 W busy) =
    // 100 W idle .. 300 W flat out, i.e. ~12.5 W per *busy* core. The
    // budget binds on busy power, not on allocation — a half-loaded
    // allocation counts half, and this small closed loop keeps under
    // one core busy on average — so the budget must sit just above
    // idle (110 W ≈ 0.8 busy cores) to bind, and the claim is
    // relative: the same tenant, same antagonist, same machine must
    // settle measurably lower than its unconstrained twin, with the
    // budget observed violating along the way.
    let budget_w = 110.0;
    let scale = TpchScale { sf: 0.01, seed: 42 };
    let capped_run = run(
        ArbiterMode::FairShare,
        SlaPolicy {
            max_power_w: Some(budget_w),
            ..SlaPolicy::unconstrained()
        },
        scale,
    );
    let free_run = run(ArbiterMode::FairShare, SlaPolicy::unconstrained(), scale);
    let capped_steady = steady_cores(&capped_run, "capped");
    let free_steady = steady_cores(&free_run, "capped");
    assert!(
        capped_steady < free_steady,
        "a {budget_w} W budget must depress the steady-state allocation: \
         capped {capped_steady:.2} vs unconstrained {free_steady:.2} cores"
    );
    assert!(
        capped_run.tenant("capped").unwrap().sla_violations > 0,
        "the budget never bound — the workload must be heavy enough to violate"
    );
}
