//! Wall-clock headline check on the real-thread backend: elastic
//! allocation must beat the static OS baseline for a mixed concurrent
//! workload, *in actual elapsed time*, not simulated time.
//!
//! The baseline models what the paper argues against: a thread-per-
//! client server with no pool management — here `max(16, clients)`
//! always-active workers, oversubscribing the host and contending on
//! the scheduler state while the elastic pool holds its allocation at
//! what the measured load justifies. Release-only: it runs dozens of
//! real queries per configuration and timing assertions under an
//! unoptimised build are meaningless.

use emca_harness::{run, Alloc, Backend, RunConfig};
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData, TpchScale};

fn mixed(iters: u32) -> Workload {
    Workload::Mixed {
        specs: vec![
            QuerySpec::Q6 { variant: 0 },
            QuerySpec::Q6 { variant: 1 },
            QuerySpec::Tpch {
                number: 1,
                variant: 0,
            },
            QuerySpec::Tpch {
                number: 14,
                variant: 0,
            },
            QuerySpec::Tpch {
                number: 4,
                variant: 0,
            },
        ],
        iterations: iters,
        seed: 3,
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "wall-clock comparison is release-only; debug timing is not meaningful"
)]
fn adaptive_pool_beats_static_thread_explosion_on_wall_clock() {
    let data = TpchData::generate(TpchScale { sf: 0.1, seed: 42 });
    let clients = 96;
    let cfg = |alloc| {
        RunConfig::new(alloc, clients, mixed(2))
            .with_scale(data.scale)
            .with_backend(Backend::Threads)
    };
    let qps = |alloc| {
        let out = run(cfg(alloc), &data);
        assert_eq!(out.results.len(), clients * 2);
        out.results.len() as f64 / out.wall.as_secs_f64()
    };
    // Paired samples, median ratio: background load on a shared CI host
    // drifts over seconds, slowing both configurations together. Running
    // the baseline and the elastic pool back-to-back and comparing their
    // per-pair ratio cancels that drift; the median over five pairs then
    // shrugs off a single scheduler hiccup without rewarding a lucky run.
    let mut ratios: Vec<f64> = (0..5)
        .map(|_| {
            let os = qps(Alloc::OsAll);
            let adaptive = qps(Alloc::Adaptive);
            eprintln!("threads wall-clock qps: os={os:.1} adaptive={adaptive:.1}");
            adaptive / os
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    let median = ratios[2];
    assert!(
        median > 1.0,
        "elastic pool must out-run the static thread-per-client baseline \
         (median adaptive/os wall-clock ratio {median:.3} over {ratios:?})"
    );
}
