//! # elastic-numa — an elastic multi-core allocation mechanism for
//! database systems on NUMA
//!
//! A full from-scratch Rust reproduction of *"An Elastic Multi-Core
//! Allocation Mechanism for Database Systems"* (Dominico, de Almeida,
//! Meira, Alves — ICDE 2018), including every substrate the paper's
//! evaluation depends on:
//!
//! - [`numa_sim`] — a deterministic simulator of the paper's 4-socket
//!   AMD Opteron 8387 machine (first-touch page homing, L2/L3 cache
//!   models, HyperTransport + memory-controller bandwidth with hard
//!   capacity caps, hardware counters, ACP energy model);
//! - [`os_sim`] — a CFS-like OS scheduler with cpusets, per-thread
//!   affinity, load balancing / task stealing, and migration tracing;
//! - [`volcano_db`] — a Volcano-style columnar DBMS (BATs, the 22 TPC-H
//!   plans, genuine operator evaluation, MonetDB- and SQL Server-flavored
//!   worker placement, concurrent closed-loop clients);
//! - [`prt_petrinet`] — the Predicate/Transition net formalism of §III;
//! - [`elastic_core`] — **the paper's contribution**: monitors, the
//!   node-priority queue, the dense/sparse/adaptive allocation modes and
//!   the rule-condition-action mechanism;
//! - [`emca_harness`] — experiment configs and runners regenerating
//!   every figure and table (see the `emca-bench` binaries).
//!
//! Start with [`prelude`] and the `examples/` directory.

pub use elastic_core;
pub use emca_harness;
pub use emca_metrics;
pub use numa_sim;
pub use os_sim;
pub use prt_petrinet;
pub use volcano_db;

/// Convenient re-exports for examples and downstream users.
pub mod prelude {
    pub use elastic_core::{
        AdaptiveMode, AllocationMode, DenseMode, ElasticMechanism, MechanismConfig, MetricKind,
        SparseMode,
    };
    pub use emca_harness::{run, run_all_allocs, run_handcoded, Alloc, RunConfig, RunOutput};
    pub use emca_metrics::{SimDuration, SimTime};
    pub use numa_sim::{Machine, MachineConfig, Topology};
    pub use os_sim::{CoreMask, Kernel, KernelConfig};
    pub use prt_petrinet::{AllocAction, StateKind, Thresholds};
    pub use volcano_db::client::Workload;
    pub use volcano_db::exec::engine::{Engine, EngineConfig, Flavor};
    pub use volcano_db::tpch::{QuerySpec, TpchData, TpchScale};
}
