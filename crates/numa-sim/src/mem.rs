//! Simulated virtual memory: regions, pages and first-touch homing.
//!
//! Mirrors the Linux behaviour the paper leans on (§II-A): on the first
//! touch of a page the OS homes it on the toucher's NUMA node; later
//! touches from other sockets are *remote accesses*, which the paper
//! observes as additional minor page faults. The map also maintains the
//! `numa_maps`-style pages-per-node statistics per address space that feed
//! the adaptive mode's priority queue.

use crate::cache::SegId;
use crate::config::{PAGES_PER_SEG, PAGE_BYTES, SEG_BYTES};
use crate::topology::NodeId;
use emca_metrics::FxHashMap;

/// Identifier of an address space (one per simulated process /
/// thread-group — e.g. the whole DBMS is one space).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpaceId(pub u32);

/// A contiguous, segment-aligned run of virtual pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// Owning address space.
    pub space: SpaceId,
    /// First page number (multiple of [`PAGES_PER_SEG`]).
    pub first_page: u64,
    /// Page count (rounded up to whole segments at allocation).
    pub n_pages: u64,
}

impl Region {
    /// Region length in bytes.
    pub fn bytes(&self) -> u64 {
        self.n_pages * PAGE_BYTES
    }

    /// Number of whole segments spanned.
    pub fn n_segments(&self) -> u64 {
        self.n_pages.div_ceil(PAGES_PER_SEG)
    }

    /// The `i`-th segment of the region.
    pub fn segment(&self, i: u64) -> SegId {
        debug_assert!(i < self.n_segments(), "segment index out of region");
        SegId(self.first_page / PAGES_PER_SEG + i)
    }

    /// All segments of the region.
    pub fn segments(&self) -> impl Iterator<Item = SegId> + '_ {
        let base = self.first_page / PAGES_PER_SEG;
        (0..self.n_segments()).map(move |i| SegId(base + i))
    }
}

/// Per-segment placement record. All 16 pages of a segment are homed
/// together (a sequential first-touch scan homes them identically anyway).
#[derive(Clone, Copy, Debug)]
struct SegInfo {
    space: SpaceId,
    home: Option<NodeId>,
    /// Bitmask of sockets that have mapped/touched this segment.
    touched_by: u16,
    /// Bumped on every write; caches compare against it.
    version: u32,
}

/// Outcome of touching a segment, as seen by the fault accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TouchKind {
    /// First touch machine-wide: the page is homed here; one minor fault.
    FirstTouch,
    /// First touch from this socket, data homed elsewhere: minor fault +
    /// remote access.
    RemoteFirst,
    /// Already mapped by this socket; no fault.
    Mapped,
}

/// The machine-wide memory map.
#[derive(Clone, Debug)]
pub struct MemoryMap {
    n_nodes: usize,
    segs: FxHashMap<u64, SegInfo>,
    next_page: u64,
    /// pages-per-node per space (the `numa_maps` analogue).
    pages_per_node: FxHashMap<SpaceId, Vec<u64>>,
    next_space: u32,
}

impl MemoryMap {
    /// Creates an empty map for a machine with `n_nodes` NUMA nodes.
    pub fn new(n_nodes: usize) -> Self {
        assert!(
            (1..=16).contains(&n_nodes),
            "node count must fit the touch mask"
        );
        MemoryMap {
            n_nodes,
            segs: FxHashMap::default(),
            next_page: 0,
            pages_per_node: FxHashMap::default(),
            next_space: 0,
        }
    }

    /// Creates a fresh address space.
    pub fn create_space(&mut self) -> SpaceId {
        let id = SpaceId(self.next_space);
        self.next_space += 1;
        self.pages_per_node.insert(id, vec![0; self.n_nodes]);
        id
    }

    /// Allocates `bytes` of virtual memory in `space`, rounded up to whole
    /// segments. Pages are *not* homed until first touch.
    pub fn alloc(&mut self, space: SpaceId, bytes: u64) -> Region {
        assert!(bytes > 0, "zero-byte allocation");
        assert!(
            self.pages_per_node.contains_key(&space),
            "allocation in unknown space"
        );
        let n_segs = bytes.div_ceil(SEG_BYTES);
        let first_page = self.next_page;
        let n_pages = n_segs * PAGES_PER_SEG;
        self.next_page += n_pages;
        let region = Region {
            space,
            first_page,
            n_pages,
        };
        let base = first_page / PAGES_PER_SEG;
        for s in 0..n_segs {
            self.segs.insert(
                base + s,
                SegInfo {
                    space,
                    home: None,
                    touched_by: 0,
                    version: 0,
                },
            );
        }
        region
    }

    /// Releases a region: removes its segments and page accounting.
    /// Virtual page numbers are never reused (bump allocation), which keeps
    /// cache keys globally unique for the lifetime of the simulation.
    pub fn free(&mut self, region: &Region) {
        let base = region.first_page / PAGES_PER_SEG;
        for s in 0..region.n_segments() {
            if let Some(info) = self.segs.remove(&(base + s)) {
                if let Some(home) = info.home {
                    if let Some(per_node) = self.pages_per_node.get_mut(&info.space) {
                        per_node[home.idx()] = per_node[home.idx()].saturating_sub(PAGES_PER_SEG);
                    }
                }
            }
        }
    }

    /// Registers a touch of `seg` from socket `node`. Homes the segment on
    /// first touch and classifies the access for fault accounting.
    /// Returns the touch kind and the segment's home node.
    pub fn touch(&mut self, seg: SegId, node: NodeId) -> (TouchKind, NodeId) {
        let info = self
            .segs
            .get_mut(&seg.0)
            .unwrap_or_else(|| panic!("touch of unmapped segment {seg:?}"));
        let bit = 1u16 << node.idx();
        match info.home {
            None => {
                info.home = Some(node);
                info.touched_by = bit;
                let per_node = self
                    .pages_per_node
                    .get_mut(&info.space)
                    .expect("space accounting missing");
                per_node[node.idx()] += PAGES_PER_SEG;
                (TouchKind::FirstTouch, node)
            }
            Some(home) => {
                if info.touched_by & bit == 0 {
                    info.touched_by |= bit;
                    (TouchKind::RemoteFirst, home)
                } else {
                    (TouchKind::Mapped, home)
                }
            }
        }
    }

    /// The home node of a segment, if it has been touched.
    pub fn home_of(&self, seg: SegId) -> Option<NodeId> {
        self.segs.get(&seg.0).and_then(|i| i.home)
    }

    /// Current write-version of a segment (0 if unmapped — unmapped probes
    /// never hit because touch panics first in debug flows).
    pub fn version_of(&self, seg: SegId) -> u32 {
        self.segs.get(&seg.0).map_or(0, |i| i.version)
    }

    /// Bumps the write-version of a segment (invalidating cached copies
    /// lazily) and returns the new version.
    pub fn bump_version(&mut self, seg: SegId) -> u32 {
        let info = self
            .segs
            .get_mut(&seg.0)
            .unwrap_or_else(|| panic!("write to unmapped segment {seg:?}"));
        info.version = info.version.wrapping_add(1);
        info.version
    }

    /// The owning space of a segment.
    pub fn space_of(&self, seg: SegId) -> Option<SpaceId> {
        self.segs.get(&seg.0).map(|i| i.space)
    }

    /// `numa_maps`-style statistic: resident pages per node for a space.
    pub fn pages_per_node(&self, space: SpaceId) -> &[u64] {
        self.pages_per_node
            .get(&space)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total resident (touched) pages of a space.
    pub fn resident_pages(&self, space: SpaceId) -> u64 {
        self.pages_per_node(space).iter().sum()
    }

    /// Number of mapped segments machine-wide (for diagnostics).
    pub fn n_segments(&self) -> usize {
        self.segs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map2() -> (MemoryMap, SpaceId) {
        let mut m = MemoryMap::new(2);
        let s = m.create_space();
        (m, s)
    }

    #[test]
    fn alloc_rounds_to_segments() {
        let (mut m, s) = map2();
        let r = m.alloc(s, 1); // 1 byte -> 1 segment -> 16 pages
        assert_eq!(r.n_pages, PAGES_PER_SEG);
        assert_eq!(r.n_segments(), 1);
        let r2 = m.alloc(s, SEG_BYTES + 1);
        assert_eq!(r2.n_segments(), 2);
        assert_eq!(r2.first_page, PAGES_PER_SEG); // bump allocated after r
        assert_eq!(r2.bytes(), 2 * SEG_BYTES);
    }

    #[test]
    fn first_touch_homes_and_counts() {
        let (mut m, s) = map2();
        let r = m.alloc(s, SEG_BYTES);
        let seg = r.segment(0);
        let (kind, home) = m.touch(seg, NodeId(1));
        assert_eq!(kind, TouchKind::FirstTouch);
        assert_eq!(home, NodeId(1));
        assert_eq!(m.pages_per_node(s), &[0, PAGES_PER_SEG]);
        assert_eq!(m.home_of(seg), Some(NodeId(1)));
    }

    #[test]
    fn remote_first_then_mapped() {
        let (mut m, s) = map2();
        let r = m.alloc(s, SEG_BYTES);
        let seg = r.segment(0);
        m.touch(seg, NodeId(0));
        let (kind, home) = m.touch(seg, NodeId(1));
        assert_eq!(kind, TouchKind::RemoteFirst);
        assert_eq!(home, NodeId(0));
        let (kind, _) = m.touch(seg, NodeId(1));
        assert_eq!(kind, TouchKind::Mapped);
        // home never moves; accounting stays on the first-touch node
        assert_eq!(m.pages_per_node(s), &[PAGES_PER_SEG, 0]);
    }

    #[test]
    fn versions_bump_on_write() {
        let (mut m, s) = map2();
        let r = m.alloc(s, SEG_BYTES);
        let seg = r.segment(0);
        m.touch(seg, NodeId(0));
        assert_eq!(m.version_of(seg), 0);
        assert_eq!(m.bump_version(seg), 1);
        assert_eq!(m.version_of(seg), 1);
    }

    #[test]
    fn free_removes_accounting() {
        let (mut m, s) = map2();
        let r = m.alloc(s, 2 * SEG_BYTES);
        m.touch(r.segment(0), NodeId(0));
        m.touch(r.segment(1), NodeId(1));
        assert_eq!(m.resident_pages(s), 2 * PAGES_PER_SEG);
        m.free(&r);
        assert_eq!(m.resident_pages(s), 0);
        assert_eq!(m.n_segments(), 0);
        assert_eq!(m.home_of(r.segment(0)), None);
    }

    #[test]
    fn region_segment_iteration() {
        let (mut m, s) = map2();
        let _pad = m.alloc(s, SEG_BYTES); // shift base
        let r = m.alloc(s, 3 * SEG_BYTES);
        let segs: Vec<_> = r.segments().collect();
        assert_eq!(segs, vec![SegId(1), SegId(2), SegId(3)]);
        assert_eq!(r.segment(2), SegId(3));
    }

    #[test]
    fn spaces_are_isolated() {
        let mut m = MemoryMap::new(2);
        let s1 = m.create_space();
        let s2 = m.create_space();
        let r1 = m.alloc(s1, SEG_BYTES);
        let r2 = m.alloc(s2, SEG_BYTES);
        m.touch(r1.segment(0), NodeId(0));
        m.touch(r2.segment(0), NodeId(1));
        assert_eq!(m.pages_per_node(s1), &[PAGES_PER_SEG, 0]);
        assert_eq!(m.pages_per_node(s2), &[0, PAGES_PER_SEG]);
        assert_eq!(m.space_of(r1.segment(0)), Some(s1));
    }

    #[test]
    #[should_panic(expected = "unmapped segment")]
    fn touch_unmapped_panics() {
        let (mut m, _s) = map2();
        m.touch(SegId(99), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_alloc_panics() {
        let (mut m, s) = map2();
        m.alloc(s, 0);
    }
}
