//! Segment-granular LRU cache model.
//!
//! The paper's cache effects (L3 conflicts under dense placement, misses
//! under scattered sharing, invalidation storms on materialisation) are
//! reproduced with per-socket shared L3 and per-core L2 models that track
//! *which 64 KiB segments* are resident, not individual lines. Entries are
//! versioned: a write to a segment bumps its global version, so stale
//! copies in other caches miss on their next probe (lazy invalidation).

use emca_metrics::FxHashMap;
use std::collections::BTreeMap;

/// Global identity of a 64 KiB segment (page number / pages-per-segment).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SegId(pub u64);

/// An LRU set of versioned segments with fixed capacity.
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity: usize,
    /// seg -> (lru stamp, cached version)
    entries: FxHashMap<SegId, (u64, u32)>,
    /// stamp -> seg, ordered: first entry is the LRU victim.
    order: BTreeMap<u64, SegId>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    stale_invalidations: u64,
}

/// Result of probing the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// Segment resident with a current version.
    Hit,
    /// Segment absent.
    Miss,
    /// Segment resident but its version was stale (it was written by
    /// another core/socket since being cached) — counts as an
    /// invalidation followed by a miss.
    Stale,
}

impl LruCache {
    /// Creates an empty cache holding up to `capacity` segments.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        LruCache {
            capacity,
            entries: FxHashMap::default(),
            order: BTreeMap::new(),
            next_stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            stale_invalidations: 0,
        }
    }

    /// Number of resident segments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity in segments.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Probes for `seg` expecting `version`. On [`Probe::Hit`] the entry is
    /// refreshed to most-recently-used. On [`Probe::Stale`] the stale entry
    /// is dropped. The caller decides whether to [`LruCache::insert`]
    /// afterwards (it does so once the fetch completes).
    pub fn probe(&mut self, seg: SegId, version: u32) -> Probe {
        match self.entries.get(&seg).copied() {
            Some((stamp, cached_version)) if cached_version == version => {
                self.order.remove(&stamp);
                let new_stamp = self.bump_stamp();
                self.order.insert(new_stamp, seg);
                self.entries.insert(seg, (new_stamp, version));
                self.hits += 1;
                Probe::Hit
            }
            Some((stamp, _stale)) => {
                self.order.remove(&stamp);
                self.entries.remove(&seg);
                self.stale_invalidations += 1;
                self.misses += 1;
                Probe::Stale
            }
            None => {
                self.misses += 1;
                Probe::Miss
            }
        }
    }

    /// Non-mutating residency check (no LRU refresh, no counter updates).
    pub fn contains_current(&self, seg: SegId, version: u32) -> bool {
        matches!(self.entries.get(&seg), Some(&(_, v)) if v == version)
    }

    /// Inserts (or refreshes) `seg` at `version`, evicting the LRU entry
    /// if the cache is full. Returns the evicted segment, if any.
    pub fn insert(&mut self, seg: SegId, version: u32) -> Option<SegId> {
        if let Some((stamp, _)) = self.entries.remove(&seg) {
            self.order.remove(&stamp);
        }
        let mut evicted = None;
        if self.entries.len() >= self.capacity {
            if let Some((&victim_stamp, &victim)) = self.order.iter().next() {
                self.order.remove(&victim_stamp);
                self.entries.remove(&victim);
                self.evictions += 1;
                evicted = Some(victim);
            }
        }
        let stamp = self.bump_stamp();
        self.order.insert(stamp, seg);
        self.entries.insert(seg, (stamp, version));
        evicted
    }

    /// Removes `seg` if resident (explicit invalidation, e.g. on region
    /// free). Returns true if it was resident.
    pub fn invalidate(&mut self, seg: SegId) -> bool {
        if let Some((stamp, _)) = self.entries.remove(&seg) {
            self.order.remove(&stamp);
            true
        } else {
            false
        }
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// Cumulative hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative miss count (includes stale probes).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cumulative capacity evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Cumulative stale-version invalidations observed at probe time.
    pub fn stale_invalidations(&self) -> u64 {
        self.stale_invalidations
    }

    fn bump_stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(n: u64) -> SegId {
        SegId(n)
    }

    #[test]
    fn hit_after_insert() {
        let mut c = LruCache::new(2);
        assert_eq!(c.probe(seg(1), 0), Probe::Miss);
        c.insert(seg(1), 0);
        assert_eq!(c.probe(seg(1), 0), Probe::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.insert(seg(1), 0);
        c.insert(seg(2), 0);
        // refresh seg 1 so seg 2 becomes LRU
        assert_eq!(c.probe(seg(1), 0), Probe::Hit);
        let evicted = c.insert(seg(3), 0);
        assert_eq!(evicted, Some(seg(2)));
        assert!(c.contains_current(seg(1), 0));
        assert!(c.contains_current(seg(3), 0));
        assert!(!c.contains_current(seg(2), 0));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn stale_version_misses_and_invalidates() {
        let mut c = LruCache::new(4);
        c.insert(seg(7), 0);
        assert_eq!(c.probe(seg(7), 1), Probe::Stale);
        assert_eq!(c.stale_invalidations(), 1);
        assert!(!c.contains_current(seg(7), 0));
        // A later probe at the new version is a plain miss.
        assert_eq!(c.probe(seg(7), 1), Probe::Miss);
    }

    #[test]
    fn reinsert_same_seg_does_not_grow() {
        let mut c = LruCache::new(2);
        c.insert(seg(1), 0);
        c.insert(seg(1), 1);
        assert_eq!(c.len(), 1);
        assert!(c.contains_current(seg(1), 1));
        assert!(!c.contains_current(seg(1), 0));
    }

    #[test]
    fn explicit_invalidate() {
        let mut c = LruCache::new(2);
        c.insert(seg(1), 0);
        assert!(c.invalidate(seg(1)));
        assert!(!c.invalidate(seg(1)));
        assert!(c.is_empty());
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = LruCache::new(3);
        for i in 0..100 {
            c.insert(seg(i), 0);
            assert!(c.len() <= 3);
        }
        assert_eq!(c.evictions(), 97);
    }

    #[test]
    fn clear_resets_contents_not_counters() {
        let mut c = LruCache::new(2);
        c.insert(seg(1), 0);
        c.probe(seg(1), 0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        let _ = LruCache::new(0);
    }
}
