//! NUMA machine topology: sockets, cores and interconnect links.
//!
//! The default preset models the paper's evaluation machine (Fig. 2):
//! four sockets of Quad-Core AMD Opteron 8387 at 2.8 GHz, fully connected
//! by HyperTransport 3.x links, one DDR-2 memory bank per socket.

use std::fmt;

/// Dense identifier of a hardware core (`0..n_cores`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u16);

/// Dense identifier of a NUMA node / socket (`0..n_nodes`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

/// Dense identifier of an interconnect link (undirected; each link carries
/// two directed channels).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u16);

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl CoreId {
    /// The core id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The node id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The link id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An undirected interconnect link between two nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Link {
    /// Lower endpoint.
    pub a: NodeId,
    /// Higher endpoint.
    pub b: NodeId,
}

/// Immutable machine shape: which cores live on which nodes and how nodes
/// are wired together. Routing is precomputed (shortest path, lowest link
/// id as tiebreak) so that per-access path lookups are slice reads.
#[derive(Clone, Debug)]
pub struct Topology {
    cores_per_node: u16,
    n_nodes: u16,
    links: Vec<Link>,
    /// `routes[from][to]` = ordered directed link path.
    routes: Vec<Vec<Vec<LinkId>>>,
    /// `hops[from][to]` = path length in links.
    hops: Vec<Vec<u8>>,
}

impl Topology {
    /// The paper's 4-node × 4-core AMD Opteron 8000 machine, fully
    /// connected (every socket pair joined by one HT link).
    pub fn opteron_4x4() -> Self {
        Self::fully_connected(4, 4)
    }

    /// A fully connected machine of `n_nodes` sockets with
    /// `cores_per_node` cores each.
    pub fn fully_connected(n_nodes: u16, cores_per_node: u16) -> Self {
        assert!(n_nodes >= 1, "need at least one node");
        assert!(cores_per_node >= 1, "need at least one core per node");
        let mut links = Vec::new();
        for a in 0..n_nodes {
            for b in (a + 1)..n_nodes {
                links.push(Link {
                    a: NodeId(a),
                    b: NodeId(b),
                });
            }
        }
        Self::with_links(n_nodes, cores_per_node, links)
    }

    /// A ring of `n_nodes` sockets (used in tests to exercise multi-hop
    /// routing, and available for modelling larger glueless systems).
    pub fn ring(n_nodes: u16, cores_per_node: u16) -> Self {
        assert!(n_nodes >= 2, "a ring needs at least two nodes");
        let mut links = Vec::new();
        for a in 0..n_nodes {
            let b = (a + 1) % n_nodes;
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let link = Link {
                a: NodeId(lo),
                b: NodeId(hi),
            };
            if !links.contains(&link) {
                links.push(link);
            }
        }
        Self::with_links(n_nodes, cores_per_node, links)
    }

    /// Builds a topology from an explicit link list. Panics if the graph
    /// does not connect all nodes.
    pub fn with_links(n_nodes: u16, cores_per_node: u16, links: Vec<Link>) -> Self {
        let n = n_nodes as usize;
        // BFS from every source to build shortest link paths.
        let mut adj: Vec<Vec<(usize, LinkId)>> = vec![Vec::new(); n];
        for (i, l) in links.iter().enumerate() {
            assert!(l.a.idx() < n && l.b.idx() < n, "link endpoint out of range");
            assert_ne!(l.a, l.b, "self-link");
            adj[l.a.idx()].push((l.b.idx(), LinkId(i as u16)));
            adj[l.b.idx()].push((l.a.idx(), LinkId(i as u16)));
        }
        // Deterministic tie-break: neighbours in (node, link) order.
        for nbrs in &mut adj {
            nbrs.sort_by_key(|&(node, link)| (node, link.0));
        }
        let mut routes = vec![vec![Vec::new(); n]; n];
        let mut hops = vec![vec![0u8; n]; n];
        for src in 0..n {
            let mut prev: Vec<Option<(usize, LinkId)>> = vec![None; n];
            let mut seen = vec![false; n];
            let mut queue = std::collections::VecDeque::new();
            seen[src] = true;
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                for &(v, link) in &adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        prev[v] = Some((u, link));
                        queue.push_back(v);
                    }
                }
            }
            for dst in 0..n {
                assert!(
                    seen[dst],
                    "topology is disconnected: node {dst} unreachable"
                );
                let mut path = Vec::new();
                let mut cur = dst;
                while let Some((p, link)) = prev[cur] {
                    path.push(link);
                    cur = p;
                }
                path.reverse();
                hops[src][dst] = path.len() as u8;
                routes[src][dst] = path;
            }
        }
        Topology {
            cores_per_node,
            n_nodes,
            links,
            routes,
            hops,
        }
    }

    /// Total number of cores.
    pub fn n_cores(&self) -> usize {
        self.n_nodes as usize * self.cores_per_node as usize
    }

    /// Number of NUMA nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes as usize
    }

    /// Cores per node (`d` in the paper's `core(i, j) = d·i + j`).
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node as usize
    }

    /// Number of undirected links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// The undirected links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The node a core belongs to. Cores are numbered node-major exactly
    /// like the paper's function `core(i, j) = d·i + j`.
    #[inline]
    pub fn node_of(&self, core: CoreId) -> NodeId {
        debug_assert!(core.idx() < self.n_cores());
        NodeId(core.0 / self.cores_per_node)
    }

    /// The `j`-th core of node `i` (the paper's `core(i, j)`).
    #[inline]
    pub fn core(&self, node: NodeId, j: usize) -> CoreId {
        assert!(j < self.cores_per_node as usize, "core index out of node");
        CoreId(node.0 * self.cores_per_node + j as u16)
    }

    /// All cores of a node, in id order.
    pub fn cores_of(&self, node: NodeId) -> impl Iterator<Item = CoreId> + '_ {
        let base = node.0 * self.cores_per_node;
        (0..self.cores_per_node).map(move |j| CoreId(base + j))
    }

    /// All cores of the machine, in id order.
    pub fn all_cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.n_cores() as u16).map(CoreId)
    }

    /// All nodes, in id order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n_nodes).map(NodeId)
    }

    /// The precomputed link path from `from` to `to` (empty for local).
    #[inline]
    pub fn route(&self, from: NodeId, to: NodeId) -> &[LinkId] {
        &self.routes[from.idx()][to.idx()]
    }

    /// Hop distance between nodes (0 for local).
    #[inline]
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        self.hops[from.idx()][to.idx()] as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opteron_shape() {
        let t = Topology::opteron_4x4();
        assert_eq!(t.n_cores(), 16);
        assert_eq!(t.n_nodes(), 4);
        assert_eq!(t.cores_per_node(), 4);
        assert_eq!(t.n_links(), 6); // fully connected K4
    }

    #[test]
    fn core_numbering_matches_paper_formula() {
        let t = Topology::opteron_4x4();
        // core(i, j) = d*i + j with d = 4
        assert_eq!(t.core(NodeId(0), 0), CoreId(0));
        assert_eq!(t.core(NodeId(1), 2), CoreId(6));
        assert_eq!(t.core(NodeId(3), 3), CoreId(15));
        assert_eq!(t.node_of(CoreId(6)), NodeId(1));
        assert_eq!(t.node_of(CoreId(15)), NodeId(3));
        let node2: Vec<_> = t.cores_of(NodeId(2)).collect();
        assert_eq!(node2, vec![CoreId(8), CoreId(9), CoreId(10), CoreId(11)]);
    }

    #[test]
    fn fully_connected_routes_are_single_hop() {
        let t = Topology::opteron_4x4();
        for a in t.all_nodes() {
            for b in t.all_nodes() {
                if a == b {
                    assert!(t.route(a, b).is_empty());
                    assert_eq!(t.hops(a, b), 0);
                } else {
                    assert_eq!(t.route(a, b).len(), 1);
                    assert_eq!(t.hops(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn ring_routes_multi_hop() {
        let t = Topology::ring(4, 2);
        assert_eq!(t.n_links(), 4);
        assert_eq!(t.hops(NodeId(0), NodeId(2)), 2);
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(t.route(NodeId(0), NodeId(2)).len(), 2);
    }

    #[test]
    fn route_symmetry_in_length() {
        let t = Topology::ring(5, 1);
        for a in t.all_nodes() {
            for b in t.all_nodes() {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_graph_panics() {
        let _ = Topology::with_links(
            3,
            1,
            vec![Link {
                a: NodeId(0),
                b: NodeId(1),
            }],
        );
    }

    #[test]
    #[should_panic(expected = "out of node")]
    fn core_index_bounds() {
        let t = Topology::opteron_4x4();
        let _ = t.core(NodeId(0), 4);
    }
}
