//! The simulated NUMA machine.
//!
//! [`Machine`] combines the topology, memory map, cache models, counters
//! and a fluid bandwidth-contention model. Work items (driven by the
//! simulated OS) call [`Machine::access_segment`] for every 64 KiB segment
//! they stream and [`Machine::compute`] for pure CPU work; both return the
//! simulated time consumed, which the scheduler charges against the
//! thread's timeslice.
//!
//! ### Contention model
//!
//! Per scheduler tick, the machine accumulates *demand* on each memory
//! controller and each directed link channel. Demand is the achieved
//! bytes scaled by the slowdown factor that was applied to them — i.e.
//! the unthrottled bandwidth the requesters would have consumed. At
//! `end_tick` the demand utilisation (`demand / (bandwidth × tick)`)
//! feeds an EWMA; during the next tick every access along a path is
//! slowed by the maximum smoothed utilisation over the path's resources
//! (clamped to `[1, max_congestion]`).
//!
//! Scaling by the applied factor is what makes the feedback converge to
//! a *hard* capacity cap: at equilibrium `achieved × factor = capacity ×
//! factor`, so achieved throughput equals capacity regardless of how
//! oversubscribed the resource is. (Accumulating raw achieved bytes
//! instead would under-report demand and let throughput overshoot
//! capacity by the square root of the oversubscription.) This reproduces
//! the saturation behaviour of Fig. 4(c): HT traffic plateaus as
//! concurrency grows.

use crate::cache::{LruCache, Probe, SegId};
use crate::config::{MachineConfig, SEG_BYTES};
use crate::counters::{HwCounters, StreamId};
use crate::mem::{MemoryMap, Region, SpaceId, TouchKind};
use crate::topology::{CoreId, NodeId};
use emca_metrics::{Ewma, SimDuration};

/// Kind of segment access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Streaming read of the segment.
    Read,
    /// Streaming write (materialisation). Writes are modelled as
    /// streaming stores: no read-for-ownership fetch is charged, the
    /// write-back bytes hit the home node's memory controller.
    Write,
}

/// Where a read was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// Private L2 of the accessing core.
    L2,
    /// Shared L3 of the accessing socket.
    L3,
    /// Local DRAM (home node == accessing socket).
    DramLocal,
    /// Remote DRAM, `hops` links away.
    DramRemote(u32),
}

/// Outcome of one segment access.
#[derive(Clone, Copy, Debug)]
pub struct AccessResult {
    /// Simulated time consumed by the access.
    pub time: SimDuration,
    /// Satisfaction level (for writes: the level the store targeted —
    /// always DRAM in this model).
    pub level: HitLevel,
    /// Whether a minor page fault was taken.
    pub fault: bool,
}

/// Per-tick congestion bookkeeping.
#[derive(Clone, Debug)]
struct Congestion {
    tick: SimDuration,
    mc_bytes: Vec<u64>,
    chan_bytes: Vec<u64>,
    mc_util: Vec<Ewma>,
    chan_util: Vec<Ewma>,
    /// Bitmask of cores that issued DRAM requests to each node this tick
    /// (row-buffer interference input; fits because CoreMask caps at 64
    /// cores machine-wide but one node sees at most 64 requesters too).
    mc_requesters: Vec<u64>,
    /// Smoothed distinct-requester count per node.
    mc_streams: Vec<Ewma>,
}

impl Congestion {
    fn new(n_nodes: usize, n_chans: usize, alpha: f64, tick: SimDuration) -> Self {
        Congestion {
            tick,
            mc_bytes: vec![0; n_nodes],
            chan_bytes: vec![0; n_chans],
            mc_util: vec![Ewma::new(alpha); n_nodes],
            chan_util: vec![Ewma::new(alpha); n_chans],
            mc_requesters: vec![0; n_nodes],
            mc_streams: vec![Ewma::new(alpha); n_nodes],
        }
    }

    fn end_tick(&mut self, mc_bw: f64, link_bw: f64) {
        let secs = self.tick.as_secs_f64();
        if secs <= 0.0 {
            return;
        }
        for (bytes, util) in self.mc_bytes.iter_mut().zip(&mut self.mc_util) {
            util.observe(*bytes as f64 / (mc_bw * secs));
            *bytes = 0;
        }
        for (bytes, util) in self.chan_bytes.iter_mut().zip(&mut self.chan_util) {
            util.observe(*bytes as f64 / (link_bw * secs));
            *bytes = 0;
        }
        for (mask, streams) in self.mc_requesters.iter_mut().zip(&mut self.mc_streams) {
            // Only ticks with traffic update the stream estimate; idle
            // ticks would otherwise decay it and let a bursty scatter
            // pattern look like a single sequential stream.
            if *mask != 0 {
                streams.observe(mask.count_ones() as f64);
            }
            *mask = 0;
        }
    }
}

/// The simulated machine. See module docs.
pub struct Machine {
    cfg: MachineConfig,
    mem: MemoryMap,
    l2: Vec<LruCache>,
    l3: Vec<LruCache>,
    counters: HwCounters,
    congestion: Congestion,
    /// Cost of servicing a minor page fault (kernel time).
    fault_latency: SimDuration,
}

impl Machine {
    /// Builds a machine from a validated configuration, with the given
    /// scheduler tick length for the contention model.
    pub fn new(cfg: MachineConfig, tick: SimDuration) -> Self {
        cfg.validate();
        assert!(!tick.is_zero(), "tick must be positive");
        let n_nodes = cfg.topology.n_nodes();
        let n_cores = cfg.topology.n_cores();
        let n_links = cfg.topology.n_links();
        Machine {
            mem: MemoryMap::new(n_nodes),
            l2: (0..n_cores)
                .map(|_| LruCache::new(cfg.l2_segments))
                .collect(),
            l3: (0..n_nodes)
                .map(|_| LruCache::new(cfg.l3_segments))
                .collect(),
            counters: HwCounters::new(n_nodes, n_cores, n_links),
            congestion: Congestion::new(n_nodes, n_links * 2, cfg.congestion_alpha, tick),
            fault_latency: SimDuration::from_micros(1),
            cfg,
        }
    }

    /// The paper's machine with a 100 µs scheduler tick.
    pub fn opteron_4x4() -> Self {
        Self::new(MachineConfig::opteron_4x4(), SimDuration::from_micros(100))
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The topology (shorthand for `config().topology`).
    pub fn topology(&self) -> &crate::topology::Topology {
        &self.cfg.topology
    }

    /// Immutable view of the memory map (for `numa_maps`-style stats).
    pub fn mem(&self) -> &MemoryMap {
        &self.mem
    }

    /// Immutable view of the hardware counters.
    pub fn counters(&self) -> &HwCounters {
        &self.counters
    }

    /// Mutable counter access (the scheduler charges `busy_ns`; tests
    /// inject values).
    pub fn counters_mut(&mut self) -> &mut HwCounters {
        &mut self.counters
    }

    /// Creates a fresh address space.
    pub fn create_space(&mut self) -> SpaceId {
        self.mem.create_space()
    }

    /// Allocates `bytes` (rounded to segments) in `space`.
    pub fn alloc(&mut self, space: SpaceId, bytes: u64) -> Region {
        self.mem.alloc(space, bytes)
    }

    /// Frees a region and drops any cached copies of its segments.
    pub fn free(&mut self, region: &Region) {
        for seg in region.segments() {
            for l2 in &mut self.l2 {
                l2.invalidate(seg);
            }
            for l3 in &mut self.l3 {
                l3.invalidate(seg);
            }
        }
        self.mem.free(region);
    }

    /// Pure CPU work: converts cycles to time.
    #[inline]
    pub fn compute(&self, cycles: u64) -> SimDuration {
        self.cfg.cycles_to_time(cycles)
    }

    /// Must be called by the driver once per scheduler tick *after* all
    /// cores have executed, to roll the contention window.
    pub fn end_tick(&mut self) {
        self.congestion
            .end_tick(self.cfg.mc_bandwidth, self.cfg.link_bandwidth);
    }

    /// Streams one segment from `core`. See [`AccessKind`] for semantics.
    /// Traffic is attributed to `stream` (pass `StreamId::default()` for
    /// untagged system activity).
    pub fn access_segment(
        &mut self,
        core: CoreId,
        seg: SegId,
        kind: AccessKind,
        stream: StreamId,
    ) -> AccessResult {
        let socket = self.cfg.topology.node_of(core);
        let (touch, home) = self.mem.touch(seg, socket);
        let fresh = touch == TouchKind::FirstTouch;
        let fault = match touch {
            TouchKind::FirstTouch => {
                self.counters.minor_faults.inc(socket.idx());
                true
            }
            TouchKind::RemoteFirst => {
                self.counters.minor_faults.inc(socket.idx());
                self.counters.remote_faults.inc(socket.idx());
                true
            }
            TouchKind::Mapped => false,
        };
        let fault_time = if fault {
            self.fault_latency
        } else {
            SimDuration::ZERO
        };

        let result = match kind {
            AccessKind::Read => self.read_segment(core, socket, seg, home, stream),
            AccessKind::Write => self.write_segment(core, socket, seg, home, fresh, stream),
        };
        AccessResult {
            time: result.time + fault_time,
            level: result.level,
            fault,
        }
    }

    fn read_segment(
        &mut self,
        core: CoreId,
        socket: NodeId,
        seg: SegId,
        home: NodeId,
        stream: StreamId,
    ) -> AccessResult {
        let version = self.mem.version_of(seg);
        match self.l2[core.idx()].probe(seg, version) {
            Probe::Hit => {
                return AccessResult {
                    time: self.cfg.l2_seg_time,
                    level: HitLevel::L2,
                    fault: false,
                };
            }
            Probe::Stale => {
                self.counters.invalidations.inc(socket.idx());
            }
            Probe::Miss => {}
        }
        match self.l3[socket.idx()].probe(seg, version) {
            Probe::Hit => {
                self.counters.l3_hits.inc(socket.idx());
                self.l2[core.idx()].insert(seg, version);
                return AccessResult {
                    time: self.cfg.l3_seg_time,
                    level: HitLevel::L3,
                    fault: false,
                };
            }
            Probe::Stale => {
                self.counters.invalidations.inc(socket.idx());
            }
            Probe::Miss => {}
        }
        // DRAM fetch from the home node.
        self.counters.l3_misses.inc(socket.idx());
        let time = self.charge_transfer(core, socket, home, stream, 1);
        self.l3[socket.idx()].insert(seg, version);
        self.l2[core.idx()].insert(seg, version);
        let level = if home == socket {
            HitLevel::DramLocal
        } else {
            HitLevel::DramRemote(self.cfg.topology.hops(socket, home))
        };
        AccessResult {
            time,
            level,
            fault: false,
        }
    }

    fn write_segment(
        &mut self,
        core: CoreId,
        socket: NodeId,
        seg: SegId,
        home: NodeId,
        _fresh: bool,
        stream: StreamId,
    ) -> AccessResult {
        // Streaming store: bump the version (lazily invalidating stale
        // copies everywhere), push write-back bytes to the home MC.
        let version = self.mem.bump_version(seg);
        let time = self.charge_transfer(core, socket, home, stream, 0);
        self.l3[socket.idx()].insert(seg, version);
        self.l2[core.idx()].insert(seg, version);
        let level = if home == socket {
            HitLevel::DramLocal
        } else {
            HitLevel::DramRemote(self.cfg.topology.hops(socket, home))
        };
        AccessResult {
            time,
            level,
            fault: false,
        }
    }

    /// Charges one segment of traffic between `socket` and `home`:
    /// IMC bytes at `home`, link bytes along the route, stream
    /// attribution, congestion-scaled timing. `l3_miss` is 1 for demand
    /// read misses (attributed to the stream), 0 for writes.
    ///
    /// The resources along the path are *serial queues*: the transfer
    /// waits at the home memory controller, then on every link channel it
    /// crosses, and each stage's delay scales with that stage's own
    /// smoothed utilisation. (An earlier model took the max utilisation
    /// over the path, which let a saturated MC completely mask link
    /// congestion — the scattered OS baseline never paid for crossing
    /// the interconnect, inflating its throughput well above what the
    /// paper's Fig. 4(c) HT saturation allows.)
    fn charge_transfer(
        &mut self,
        core: CoreId,
        socket: NodeId,
        home: NodeId,
        stream: StreamId,
        l3_miss: u64,
    ) -> SimDuration {
        let bytes = SEG_BYTES;
        // Resolve per-resource slowdown factors from the previous window
        // first...
        //
        // Row-buffer interference: the effective MC service time inflates
        // with the number of distinct request streams it interleaves (see
        // [`MachineConfig::mc_interleave_penalty`]). The inflated demand
        // also feeds the utilisation EWMA, so the capacity cap tightens
        // to the *effective* bandwidth.
        let streams = self.congestion.mc_streams[home.idx()].value_or(1.0);
        let interleave = 1.0
            + self.cfg.mc_interleave_penalty
                * (streams - self.cfg.mc_interleave_free as f64).max(0.0);
        let mc_factor = self.congestion.mc_util[home.idx()]
            .value_or(0.0)
            .clamp(1.0, self.cfg.max_congestion);
        let route: Vec<_> = self.cfg.topology.route(home, socket).to_vec();
        let hops = route.len() as u32;
        let mut chans = [(0usize, 1.0f64); 8];
        let mut n_chans = 0;
        let mut cur = home;
        for link_id in &route {
            let link = self.cfg.topology.links()[link_id.idx()];
            // Channel 0 carries a->b, channel 1 carries b->a.
            let (chan, next) = if cur == link.a {
                (link_id.idx() * 2, link.b)
            } else {
                (link_id.idx() * 2 + 1, link.a)
            };
            cur = next;
            debug_assert!(n_chans < chans.len(), "route longer than 8 hops");
            let factor = self.congestion.chan_util[chan]
                .value_or(0.0)
                .clamp(1.0, self.cfg.max_congestion);
            chans[n_chans] = (chan, factor);
            n_chans += 1;
        }
        debug_assert_eq!(cur, socket, "route did not terminate at requester");

        // ...then account the *demand* (achieved × factor) per resource so
        // next-window feedback sees the unthrottled pressure (hard
        // capacity cap at every stage independently).
        // The queueing feedback (`mc_factor`) is clamped by
        // `max_congestion` for stability; the row-buffer interference
        // multiplier composes *outside* that clamp because it is not
        // feedback — it is a physically bounded efficiency factor
        // (≤ 1 + penalty × (n_cores − free)), so the product stays
        // finite without re-clamping and the effective-capacity demand
        // accounting below stays consistent with the charged time.
        let mc_slowdown = mc_factor * interleave;
        self.counters.imc_bytes.add(home.idx(), bytes);
        self.congestion.mc_bytes[home.idx()] += (bytes as f64 * mc_slowdown) as u64;
        self.congestion.mc_requesters[home.idx()] |= 1u64 << (core.idx() & 63);
        for &(chan, factor) in &chans[..n_chans] {
            self.counters.link_bytes.add(chan, bytes);
            self.congestion.chan_bytes[chan] += (bytes as f64 * factor) as u64;
        }

        let ht_bytes = if hops > 0 { bytes } else { 0 };
        self.counters.stream_add(stream, ht_bytes, bytes, l3_miss);

        // Serial delays: fixed latency, the MC stage, then each link
        // stage. The per-hop transfer penalty models the request/response
        // inefficiency of coherent remote streams (plus the broadcast
        // coherence probes of the probe-filter-less Opteron 8387).
        //
        // Link stages respond *superlinearly* to oversubscription: a
        // saturated HyperTransport link is a queueing system whose delay
        // blows up past the knee, not a fluid pipe that shares capacity
        // gracefully. This is what makes the OS baseline's throughput
        // plateau (and then sag) once its scattered traffic saturates the
        // interconnect — Fig. 4(a)/(c) of the paper — while NUMA-local
        // traffic is unaffected.
        let mut time = self.cfg.dram_latency
            + SimDuration::from_nanos(self.cfg.hop_latency.as_nanos() * hops as u64)
            + self.cfg.dram_seg_transfer().mul_f64(mc_slowdown);
        let link_transfer = self
            .cfg
            .link_seg_transfer()
            .mul_f64(1.0 + self.cfg.remote_transfer_penalty);
        for &(_, factor) in &chans[..n_chans] {
            let queueing = (factor * factor).clamp(1.0, self.cfg.max_congestion);
            time += link_transfer.mul_f64(queueing);
        }
        time
    }

    /// Current smoothed utilisation of a node's memory controller
    /// (diagnostics and tests).
    pub fn mc_utilisation(&self, node: NodeId) -> f64 {
        self.congestion.mc_util[node.idx()].value_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny_2x2(), SimDuration::from_micros(100))
    }

    #[test]
    fn first_read_faults_and_fetches_local() {
        let mut m = machine();
        let sp = m.create_space();
        let r = m.alloc(sp, SEG_BYTES);
        let seg = r.segment(0);
        let res = m.access_segment(CoreId(0), seg, AccessKind::Read, StreamId(1));
        assert!(res.fault);
        assert_eq!(res.level, HitLevel::DramLocal);
        assert_eq!(m.counters().minor_faults.get(0), 1);
        assert_eq!(m.counters().l3_misses.get(0), 1);
        assert_eq!(m.counters().imc_bytes.get(0), SEG_BYTES);
        // No link traffic for a local fetch.
        assert_eq!(m.counters().total_link_bytes(), 0);
        assert_eq!(m.counters().stream(StreamId(1)).ht_bytes, 0);
        assert_eq!(m.counters().stream(StreamId(1)).imc_bytes, SEG_BYTES);
    }

    #[test]
    fn second_read_hits_l2() {
        let mut m = machine();
        let sp = m.create_space();
        let r = m.alloc(sp, SEG_BYTES);
        let seg = r.segment(0);
        m.access_segment(CoreId(0), seg, AccessKind::Read, StreamId(1));
        let res = m.access_segment(CoreId(0), seg, AccessKind::Read, StreamId(1));
        assert!(!res.fault);
        assert_eq!(res.level, HitLevel::L2);
        assert_eq!(res.time, m.config().l2_seg_time);
    }

    #[test]
    fn sibling_core_hits_shared_l3() {
        let mut m = machine();
        let sp = m.create_space();
        let r = m.alloc(sp, SEG_BYTES);
        let seg = r.segment(0);
        m.access_segment(CoreId(0), seg, AccessKind::Read, StreamId(1));
        // Core 1 is on the same socket (2 cores per node).
        let res = m.access_segment(CoreId(1), seg, AccessKind::Read, StreamId(1));
        assert_eq!(res.level, HitLevel::L3);
        assert_eq!(m.counters().l3_hits.get(0), 1);
    }

    #[test]
    fn remote_read_crosses_link_and_faults() {
        let mut m = machine();
        let sp = m.create_space();
        let r = m.alloc(sp, SEG_BYTES);
        let seg = r.segment(0);
        // Homed on node 0 by core 0.
        m.access_segment(CoreId(0), seg, AccessKind::Read, StreamId(1));
        // Core 2 lives on node 1: remote fetch.
        let res = m.access_segment(CoreId(2), seg, AccessKind::Read, StreamId(2));
        assert!(res.fault, "remote first map is a minor fault");
        assert_eq!(res.level, HitLevel::DramRemote(1));
        assert_eq!(m.counters().remote_faults.get(1), 1);
        assert_eq!(m.counters().total_link_bytes(), SEG_BYTES);
        let t = m.counters().stream(StreamId(2));
        assert_eq!(t.ht_bytes, SEG_BYTES);
        assert!(t.ht_imc_ratio().unwrap() > 0.99);
    }

    #[test]
    fn remote_read_slower_than_local() {
        let mut m = machine();
        let sp = m.create_space();
        let r = m.alloc(sp, 2 * SEG_BYTES);
        let local = m.access_segment(CoreId(0), r.segment(0), AccessKind::Read, StreamId(0));
        // Home seg 1 on node 1 first, then read remotely from node 0.
        m.access_segment(CoreId(2), r.segment(1), AccessKind::Read, StreamId(0));
        let remote = m.access_segment(CoreId(0), r.segment(1), AccessKind::Read, StreamId(0));
        assert!(remote.time > local.time);
    }

    #[test]
    fn write_bumps_version_and_invalidates_reader() {
        let mut m = machine();
        let sp = m.create_space();
        let r = m.alloc(sp, SEG_BYTES);
        let seg = r.segment(0);
        m.access_segment(CoreId(0), seg, AccessKind::Read, StreamId(0));
        // A write from core 2 (other socket) bumps the version.
        m.access_segment(CoreId(2), seg, AccessKind::Write, StreamId(0));
        // Core 0's cached copy is now stale: the next read re-fetches.
        let res = m.access_segment(CoreId(0), seg, AccessKind::Read, StreamId(0));
        assert_ne!(res.level, HitLevel::L2);
        assert!(m.counters().invalidations.get(0) >= 1);
    }

    #[test]
    fn congestion_feedback_slows_transfers() {
        let mut m = machine();
        let sp = m.create_space();
        // Enough segments to blow out caches.
        let r = m.alloc(sp, 64 * SEG_BYTES);
        let baseline = m.access_segment(CoreId(0), r.segment(0), AccessKind::Read, StreamId(0));
        // Saturate node 0's MC within one tick (100us * 6.4GB/s = 640KB;
        // stream 60 segments ≈ 3.9 MB >> capacity).
        for i in 1..60 {
            m.access_segment(CoreId(0), r.segment(i), AccessKind::Read, StreamId(0));
        }
        m.end_tick();
        assert!(m.mc_utilisation(NodeId(0)) > 1.0);
        // Fresh (uncached) segment now costs more than the baseline.
        let r2 = m.alloc(sp, SEG_BYTES);
        let congested = m.access_segment(CoreId(0), r2.segment(0), AccessKind::Read, StreamId(0));
        assert!(congested.time > baseline.time);
    }

    #[test]
    fn free_drops_cached_copies() {
        let mut m = machine();
        let sp = m.create_space();
        let r = m.alloc(sp, SEG_BYTES);
        let seg = r.segment(0);
        m.access_segment(CoreId(0), seg, AccessKind::Read, StreamId(0));
        m.free(&r);
        // Reallocate: the new region reuses no page numbers, so nothing to
        // assert on seg identity, but the old seg must be gone from caches.
        assert_eq!(m.mem().n_segments(), 0);
    }

    #[test]
    fn compute_charges_cycles() {
        let m = machine();
        assert_eq!(m.compute(2_800).as_nanos(), 1_000);
    }
}
