//! # numa-sim — a deterministic NUMA machine simulator
//!
//! This crate is the hardware substrate for the ICDE'18 "Elastic
//! Multi-Core Allocation" reproduction. It models the paper's evaluation
//! machine — four Quad-Core AMD Opteron 8387 sockets joined by
//! HyperTransport links — at the granularity the paper's experiments
//! need: 4 KiB pages homed by first touch, 64 KiB cache segments in
//! per-core L2 / per-socket shared L3 LRU models, per-direction link and
//! per-node memory-controller bandwidth with congestion feedback, the full
//! likwid/mpstat counter set, and the ACP + energy-per-bit energy model.
//!
//! The simulation is single-threaded and fully deterministic: simulated
//! threads are cooperative work items driven by the `os-sim` crate, which
//! charges every memory access and compute burst against simulated time.
//!
//! ```
//! use numa_sim::{Machine, AccessKind, StreamId, CoreId};
//!
//! let mut machine = Machine::opteron_4x4();
//! let space = machine.create_space();
//! let region = machine.alloc(space, 1 << 20); // 1 MiB
//! let r = machine.access_segment(CoreId(0), region.segment(0), AccessKind::Read, StreamId(1));
//! assert!(r.fault); // first touch homes the page on core 0's socket
//! ```

pub mod cache;
pub mod config;
pub mod counters;
pub mod energy;
pub mod machine;
pub mod mem;
pub mod topology;

pub use cache::{LruCache, Probe, SegId};
pub use config::{MachineConfig, PAGES_PER_SEG, PAGE_BYTES, SEG_BYTES};
pub use counters::{
    HtImcReduction, HwCounters, HwSnapshot, StreamId, StreamTraffic, HT_IMC_NOISE_FLOOR,
};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use machine::{AccessKind, AccessResult, HitLevel, Machine};
pub use mem::{MemoryMap, Region, SpaceId, TouchKind};
pub use topology::{CoreId, Link, LinkId, NodeId, Topology};
