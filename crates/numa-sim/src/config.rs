//! Machine configuration: latencies, bandwidths, cache geometry.
//!
//! The default constants are calibrated against the paper's machine —
//! a 4-socket Quad-Core AMD Opteron 8387 @ 2.8 GHz, per-core L1 64 KiB /
//! L2 512 KiB, shared 6 MiB L3 per socket, DDR-2 memory, HT 3.x links
//! (10.4 GB/s per direction sustained; the superlinear queueing response
//! in `Machine::charge_transfer` plus the per-hop request/response
//! penalty is what produces the ~8 GB/s machine-wide HT saturation of
//! Fig. 4(c) under scattered access patterns). Absolute values need only
//! be plausible: the reproduction targets the paper's *shapes* (who
//! wins, crossovers, ratios).

use crate::topology::Topology;
use emca_metrics::SimDuration;

/// Size of a simulated virtual memory page.
pub const PAGE_BYTES: u64 = 4096;

/// Size of a cache-model segment (granularity of the L2/L3 LRU models and
/// of DRAM transfers). 16 pages.
pub const SEG_BYTES: u64 = 65_536;

/// Pages per cache segment.
pub const PAGES_PER_SEG: u64 = SEG_BYTES / PAGE_BYTES;

/// Full machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Socket/core/link shape.
    pub topology: Topology,
    /// Core clock frequency in Hz.
    pub freq_hz: u64,
    /// Per-core L2 capacity in segments (512 KiB / 64 KiB = 8).
    pub l2_segments: usize,
    /// Per-socket shared L3 capacity in segments (6 MiB / 64 KiB = 96).
    pub l3_segments: usize,
    /// L2 hit: time to stream one segment through the core.
    pub l2_seg_time: SimDuration,
    /// L3 hit: time to stream one segment from the socket L3.
    pub l3_seg_time: SimDuration,
    /// DRAM access latency for a local fetch (row activation etc.).
    pub dram_latency: SimDuration,
    /// Additional latency per interconnect hop.
    pub hop_latency: SimDuration,
    /// Per-node memory controller bandwidth, bytes/second.
    pub mc_bandwidth: f64,
    /// Per-direction link bandwidth, bytes/second.
    pub link_bandwidth: f64,
    /// EWMA smoothing for the congestion feedback (utilisation of the
    /// previous tick drives this tick's latency multiplier).
    pub congestion_alpha: f64,
    /// Cap on the *queueing-feedback* slowdown multiplier (keeps the
    /// fluid model stable under extreme overload; must exceed the worst
    /// realistic oversubscription — 16 cores on one controller — for
    /// the capacity cap to hold). The row-buffer interference factor is
    /// a separately bounded efficiency multiplier, not feedback, and
    /// composes outside this clamp.
    pub max_congestion: f64,
    /// Per-hop stretch of the transfer time for remote accesses.
    /// Coherent NUMA reads are request/response per line, so a remote
    /// stream achieves only a fraction of local bandwidth (measured
    /// ≈ 2/3 on the Opteron 8000 generation ⇒ penalty 0.5 per hop).
    pub remote_transfer_penalty: f64,
    /// Row-buffer/bank-interference degradation of a memory controller's
    /// effective bandwidth per concurrent request stream beyond
    /// [`MachineConfig::mc_interleave_free`]. Few sequential streams keep
    /// DDR2 row buffers open and reach the sustained rate; many
    /// interleaved streams (the scattered OS baseline: every core plus
    /// coherent remote requesters hitting one home node) thrash the row
    /// buffers and lose 30–50 % of effective bandwidth.
    pub mc_interleave_penalty: f64,
    /// Number of concurrent request streams an MC serves at full
    /// efficiency (one per memory channel/rank pair before interleaving
    /// degrades row-buffer locality).
    pub mc_interleave_free: u32,
}

impl MachineConfig {
    /// The paper's evaluation machine.
    pub fn opteron_4x4() -> Self {
        MachineConfig {
            topology: Topology::opteron_4x4(),
            freq_hz: 2_800_000_000,
            l2_segments: 8,
            l3_segments: 96,
            // 64 KiB at ~64 GB/s effective L2 stream rate.
            l2_seg_time: SimDuration::from_nanos(1_000),
            // 64 KiB at ~26 GB/s effective L3 stream rate.
            l3_seg_time: SimDuration::from_nanos(2_500),
            dram_latency: SimDuration::from_nanos(120),
            hop_latency: SimDuration::from_nanos(60),
            // DDR2-800 dual channel, sustained.
            mc_bandwidth: 6.4e9,
            // HT 3.x link, per direction, sustained.
            link_bandwidth: 10.4e9,
            congestion_alpha: 0.5,
            max_congestion: 64.0,
            remote_transfer_penalty: 0.5,
            mc_interleave_penalty: 0.30,
            mc_interleave_free: 4,
        }
    }

    /// A deliberately tiny machine for fast unit tests (2 nodes × 2 cores,
    /// 4-segment caches).
    pub fn tiny_2x2() -> Self {
        let mut cfg = Self::opteron_4x4();
        cfg.topology = Topology::fully_connected(2, 2);
        cfg.l2_segments = 2;
        cfg.l3_segments = 4;
        cfg
    }

    /// Time to stream one segment from DRAM at full (uncontended)
    /// memory-controller bandwidth.
    pub fn dram_seg_transfer(&self) -> SimDuration {
        SimDuration::from_secs_f64(SEG_BYTES as f64 / self.mc_bandwidth)
    }

    /// Time to push one segment across one link at full bandwidth.
    pub fn link_seg_transfer(&self) -> SimDuration {
        SimDuration::from_secs_f64(SEG_BYTES as f64 / self.link_bandwidth)
    }

    /// Converts CPU cycles to simulated time at the configured frequency.
    pub fn cycles_to_time(&self, cycles: u64) -> SimDuration {
        SimDuration::from_nanos((cycles as u128 * 1_000_000_000 / self.freq_hz as u128) as u64)
    }

    /// Sanity-checks the configuration, panicking on nonsense values.
    /// Called by `Machine::new`.
    pub fn validate(&self) {
        assert!(self.freq_hz > 0, "zero frequency");
        assert!(self.l2_segments >= 1, "L2 must hold at least one segment");
        assert!(self.l3_segments >= self.l2_segments, "L3 smaller than L2");
        assert!(self.mc_bandwidth > 0.0, "zero memory bandwidth");
        assert!(self.link_bandwidth > 0.0, "zero link bandwidth");
        assert!(
            self.congestion_alpha > 0.0 && self.congestion_alpha <= 1.0,
            "congestion alpha out of range"
        );
        assert!(self.max_congestion >= 1.0, "max congestion below 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opteron_defaults_are_consistent() {
        let cfg = MachineConfig::opteron_4x4();
        cfg.validate();
        assert_eq!(cfg.topology.n_cores(), 16);
        assert_eq!(cfg.l3_segments * SEG_BYTES as usize, 6 * 1024 * 1024);
        assert_eq!(cfg.l2_segments as u64 * SEG_BYTES, 512 * 1024);
    }

    #[test]
    fn transfer_times_match_bandwidth() {
        let cfg = MachineConfig::opteron_4x4();
        // 64 KiB at 6.4 GB/s = 10.24 us
        let t = cfg.dram_seg_transfer();
        assert!((t.as_secs_f64() - 65_536.0 / 6.4e9).abs() < 1e-12);
        // 64 KiB at 10.4 GB/s ≈ 6.3 us
        let l = cfg.link_seg_transfer();
        assert!(l < t);
    }

    #[test]
    fn cycles_conversion() {
        let cfg = MachineConfig::opteron_4x4();
        // 2.8 cycles per ns
        assert_eq!(cfg.cycles_to_time(2_800_000_000).as_nanos(), 1_000_000_000);
        assert_eq!(cfg.cycles_to_time(28).as_nanos(), 10);
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn validate_catches_bad_freq() {
        let mut cfg = MachineConfig::tiny_2x2();
        cfg.freq_hz = 0;
        cfg.validate();
    }

    #[test]
    fn page_seg_relation() {
        assert_eq!(PAGES_PER_SEG, 16);
        assert_eq!(PAGES_PER_SEG * PAGE_BYTES, SEG_BYTES);
    }
}
