//! Energy estimation (Fig. 20 methodology).
//!
//! The paper estimates energy from hardware counters: CPU energy from the
//! processor's Average CPU Power (ACP) over the execution time, and
//! interconnect energy from the average energy per transferred bit
//! (Wang & Lee, HotPower'15). We reproduce exactly that methodology.
//!
//! Calibration: the AMD Opteron 8387 has an ACP of 75 W per socket; we
//! model idle draw at 25 W. The per-byte HT energy is set to 8 nJ/byte
//! (1 nJ/bit), an *effective* figure that folds in link PHY, controller
//! and remote-memory-subsystem overheads, chosen so that the HT share of
//! total energy matches the visible HT slice of Fig. 20 (roughly 10–30 %
//! per query under the OS scheduler).

use emca_metrics::SimDuration;

/// Socket power / link energy constants.
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    /// Idle power per socket, watts.
    pub socket_idle_w: f64,
    /// Average CPU Power per socket at full utilisation, watts.
    pub socket_acp_w: f64,
    /// Effective interconnect energy per byte moved, joules.
    pub ht_j_per_byte: f64,
}

/// CPU/HT energy split, in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Energy attributed to the CPU sockets.
    pub cpu_j: f64,
    /// Energy attributed to interconnect transfers.
    pub ht_j: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.cpu_j + self.ht_j
    }

    /// Element-wise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            cpu_j: self.cpu_j + other.cpu_j,
            ht_j: self.ht_j + other.ht_j,
        }
    }
}

impl EnergyModel {
    /// Constants for the paper's AMD Opteron 8387 machine.
    pub fn opteron_8387() -> Self {
        EnergyModel {
            socket_idle_w: 25.0,
            socket_acp_w: 75.0,
            ht_j_per_byte: 8e-9,
        }
    }

    /// Estimates energy over a window.
    ///
    /// * `wall` — window length;
    /// * `busy_ns_per_core` — busy time per core within the window
    ///   (a [`crate::counters::HwCounters::busy_ns`] delta);
    /// * `cores_per_socket` — topology constant;
    /// * `ht_bytes` — interconnect bytes moved within the window.
    ///
    /// Socket power scales linearly from idle to ACP with the average
    /// utilisation of its cores.
    pub fn estimate(
        &self,
        wall: SimDuration,
        busy_ns_per_core: &[u64],
        cores_per_socket: usize,
        ht_bytes: u64,
    ) -> EnergyBreakdown {
        assert!(cores_per_socket >= 1, "cores_per_socket must be positive");
        assert!(
            busy_ns_per_core.len() % cores_per_socket == 0,
            "core count not a multiple of socket width"
        );
        let wall_s = wall.as_secs_f64();
        let mut cpu_j = 0.0;
        if wall_s > 0.0 {
            for socket_cores in busy_ns_per_core.chunks_exact(cores_per_socket) {
                let busy_s: f64 = socket_cores.iter().map(|&ns| ns as f64 / 1e9).sum();
                let util = (busy_s / (cores_per_socket as f64 * wall_s)).clamp(0.0, 1.0);
                let power = self.socket_idle_w + (self.socket_acp_w - self.socket_idle_w) * util;
                cpu_j += power * wall_s;
            }
        }
        EnergyBreakdown {
            cpu_j,
            ht_j: ht_bytes as f64 * self.ht_j_per_byte,
        }
    }

    /// Per-query estimation used for Fig. 20: the query's share of CPU
    /// energy is its measured busy time at ACP delta plus its share of the
    /// idle floor over its response time, and its HT energy is its
    /// attributed bytes.
    pub fn per_query(
        &self,
        response_time: SimDuration,
        busy_time: SimDuration,
        n_sockets: usize,
        ht_bytes: u64,
    ) -> EnergyBreakdown {
        let dynamic = (self.socket_acp_w - self.socket_idle_w) * busy_time.as_secs_f64();
        let idle_floor = self.socket_idle_w * n_sockets as f64 * response_time.as_secs_f64();
        EnergyBreakdown {
            cpu_j: dynamic + idle_floor,
            ht_j: ht_bytes as f64 * self.ht_j_per_byte,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_machine_draws_idle_power() {
        let m = EnergyModel::opteron_8387();
        let e = m.estimate(SimDuration::from_secs(10), &[0, 0, 0, 0], 2, 0);
        // Two sockets idle for 10s at 25W = 500 J.
        assert!((e.cpu_j - 500.0).abs() < 1e-9);
        assert_eq!(e.ht_j, 0.0);
    }

    #[test]
    fn fully_busy_machine_draws_acp() {
        let m = EnergyModel::opteron_8387();
        let ns = 10_000_000_000u64; // 10 s busy
        let e = m.estimate(SimDuration::from_secs(10), &[ns, ns], 2, 0);
        // One socket fully busy for 10s at 75W = 750 J.
        assert!((e.cpu_j - 750.0).abs() < 1e-9);
    }

    #[test]
    fn ht_energy_scales_with_bytes() {
        let m = EnergyModel::opteron_8387();
        let e = m.estimate(SimDuration::from_secs(1), &[0], 1, 1_000_000_000);
        assert!((e.ht_j - 8.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = EnergyBreakdown {
            cpu_j: 1.0,
            ht_j: 2.0,
        };
        let b = EnergyBreakdown {
            cpu_j: 3.0,
            ht_j: 4.0,
        };
        let s = a.add(&b);
        assert_eq!(s.total(), 10.0);
    }

    #[test]
    fn per_query_combines_dynamic_and_floor() {
        let m = EnergyModel::opteron_8387();
        let e = m.per_query(SimDuration::from_secs(2), SimDuration::from_secs(1), 4, 0);
        // dynamic: 50 W * 1 s; floor: 25 W * 4 sockets * 2 s.
        assert!((e.cpu_j - (50.0 + 200.0)).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_is_zero_cpu() {
        let m = EnergyModel::opteron_8387();
        let e = m.estimate(SimDuration::ZERO, &[5, 5], 2, 10);
        assert_eq!(e.cpu_j, 0.0);
        assert!(e.ht_j > 0.0);
    }

    #[test]
    #[should_panic(expected = "multiple of socket width")]
    fn mismatched_core_count_panics() {
        let m = EnergyModel::opteron_8387();
        m.estimate(SimDuration::from_secs(1), &[1, 2, 3], 2, 0);
    }
}
