//! Hardware performance counters (the likwid analogue).
//!
//! Everything the paper measures with likwid/mpstat flows through this
//! registry: per-socket L3 hits/misses and IMC bytes, per-link-direction
//! HyperTransport bytes, per-node minor page faults, and per-core busy
//! time. Counters are monotonic; monitors consume window deltas via
//! [`HwSnapshot`].
//!
//! Traffic can additionally be *attributed* to a caller-chosen stream id
//! (the DBMS tags each query execution), which yields the per-query
//! HT/IMC ratios of Fig. 19 without any global/after-the-fact averaging.

use emca_metrics::{CounterVec, FxHashMap};

/// Attribution tag for traffic (e.g. one per query execution). Stream 0 is
/// conventionally "untagged".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct StreamId(pub u64);

/// Per-stream traffic tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamTraffic {
    /// Bytes that crossed at least one HT link (counted once per access,
    /// not per hop, matching how a per-PID likwid HT group attributes).
    pub ht_bytes: u64,
    /// Bytes through any integrated memory controller.
    pub imc_bytes: u64,
    /// L3 load misses attributed to the stream.
    pub l3_misses: u64,
}

impl StreamTraffic {
    /// The HT/IMC ratio (paper §V-B): how NUMA-friendly the stream is —
    /// the smaller, the better. `None` when no memory traffic occurred.
    pub fn ht_imc_ratio(&self) -> Option<f64> {
        if self.imc_bytes == 0 {
            None
        } else {
            Some(self.ht_bytes as f64 / self.imc_bytes as f64)
        }
    }
}

/// Noise floor for HT/IMC ratios: a ratio below this is indistinguishable
/// from residual coherence chatter, so reductions against it are reported
/// as [`HtImcReduction::BelowNoise`] instead of a meaningless huge
/// quotient (the repo previously clamped these to a magic `999.0`).
pub const HT_IMC_NOISE_FLOOR: f64 = 1e-3;

/// A baseline-vs-improved HT/IMC ratio comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HtImcReduction {
    /// Both ratios above the noise floor: an honest quotient.
    Finite(f64),
    /// The improved flavor's remote traffic is below the noise floor —
    /// the reduction is unbounded ("∞") and rendered as `inf`.
    BelowNoise,
}

impl HtImcReduction {
    /// Compares two mean HT/IMC ratios. `None` when the baseline itself
    /// is below noise (no reduction to speak of).
    pub fn compare(baseline: f64, improved: f64) -> Option<Self> {
        if baseline <= HT_IMC_NOISE_FLOOR {
            None
        } else if improved <= HT_IMC_NOISE_FLOOR {
            Some(HtImcReduction::BelowNoise)
        } else {
            Some(HtImcReduction::Finite(baseline / improved))
        }
    }

    /// The finite value, if any.
    pub fn finite(&self) -> Option<f64> {
        match self {
            HtImcReduction::Finite(v) => Some(*v),
            HtImcReduction::BelowNoise => None,
        }
    }
}

impl std::fmt::Display for HtImcReduction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HtImcReduction::Finite(v) => write!(f, "{v:.2}"),
            HtImcReduction::BelowNoise => write!(f, "inf"),
        }
    }
}

/// The machine-wide counter registry.
#[derive(Clone, Debug)]
pub struct HwCounters {
    /// Per-socket L3 hits.
    pub l3_hits: CounterVec,
    /// Per-socket L3 load misses (Fig. 14(a), Fig. 15, Fig. 17).
    pub l3_misses: CounterVec,
    /// Per-socket bytes moved through the IMC (Fig. 14(b), Fig. 18).
    pub imc_bytes: CounterVec,
    /// Per-directed-link bytes (2 channels per undirected link) —
    /// Fig. 4(c), Fig. 14(c), Fig. 17(b).
    pub link_bytes: CounterVec,
    /// Per-node minor page faults (first touch + remote first-map),
    /// Fig. 4(b).
    pub minor_faults: CounterVec,
    /// Per-node remote-access minor faults (subset of `minor_faults`).
    pub remote_faults: CounterVec,
    /// Per-core busy nanoseconds (integrated by the scheduler; feeds the
    /// energy model and mpstat).
    pub busy_ns: CounterVec,
    /// Per-socket stale-copy invalidations observed.
    pub invalidations: CounterVec,
    streams: FxHashMap<StreamId, StreamTraffic>,
}

/// A point-in-time copy of all counters, for window deltas.
#[derive(Clone, Debug)]
pub struct HwSnapshot {
    /// Snapshot of [`HwCounters::l3_hits`].
    pub l3_hits: Vec<u64>,
    /// Snapshot of [`HwCounters::l3_misses`].
    pub l3_misses: Vec<u64>,
    /// Snapshot of [`HwCounters::imc_bytes`].
    pub imc_bytes: Vec<u64>,
    /// Snapshot of [`HwCounters::link_bytes`].
    pub link_bytes: Vec<u64>,
    /// Snapshot of [`HwCounters::minor_faults`].
    pub minor_faults: Vec<u64>,
    /// Snapshot of [`HwCounters::remote_faults`].
    pub remote_faults: Vec<u64>,
    /// Snapshot of [`HwCounters::busy_ns`].
    pub busy_ns: Vec<u64>,
    /// Snapshot of [`HwCounters::invalidations`].
    pub invalidations: Vec<u64>,
}

impl HwCounters {
    /// Creates zeroed counters for a machine shape.
    pub fn new(n_nodes: usize, n_cores: usize, n_links: usize) -> Self {
        HwCounters {
            l3_hits: CounterVec::new(n_nodes),
            l3_misses: CounterVec::new(n_nodes),
            imc_bytes: CounterVec::new(n_nodes),
            link_bytes: CounterVec::new(n_links * 2),
            minor_faults: CounterVec::new(n_nodes),
            remote_faults: CounterVec::new(n_nodes),
            busy_ns: CounterVec::new(n_cores),
            invalidations: CounterVec::new(n_nodes),
            streams: FxHashMap::default(),
        }
    }

    /// Attributes traffic to a stream.
    pub fn stream_add(&mut self, stream: StreamId, ht_bytes: u64, imc_bytes: u64, l3_misses: u64) {
        let t = self.streams.entry(stream).or_default();
        t.ht_bytes += ht_bytes;
        t.imc_bytes += imc_bytes;
        t.l3_misses += l3_misses;
    }

    /// The cumulative traffic of a stream (zero if never seen).
    pub fn stream(&self, stream: StreamId) -> StreamTraffic {
        self.streams.get(&stream).copied().unwrap_or_default()
    }

    /// Drops a stream's tallies (call when its query completes and has
    /// been reported, to keep the map bounded).
    pub fn retire_stream(&mut self, stream: StreamId) -> StreamTraffic {
        self.streams.remove(&stream).unwrap_or_default()
    }

    /// Number of live attribution streams (diagnostics).
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    /// Copies all counter families.
    pub fn snapshot(&self) -> HwSnapshot {
        HwSnapshot {
            l3_hits: self.l3_hits.snapshot(),
            l3_misses: self.l3_misses.snapshot(),
            imc_bytes: self.imc_bytes.snapshot(),
            link_bytes: self.link_bytes.snapshot(),
            minor_faults: self.minor_faults.snapshot(),
            remote_faults: self.remote_faults.snapshot(),
            busy_ns: self.busy_ns.snapshot(),
            invalidations: self.invalidations.snapshot(),
        }
    }

    /// Machine-wide HT bytes (sum over both directions of all links).
    pub fn total_link_bytes(&self) -> u64 {
        self.link_bytes.total()
    }

    /// Machine-wide IMC bytes.
    pub fn total_imc_bytes(&self) -> u64 {
        self.imc_bytes.total()
    }

    /// Machine-wide minor faults.
    pub fn total_minor_faults(&self) -> u64 {
        self.minor_faults.total()
    }

    /// Machine-wide L3 misses.
    pub fn total_l3_misses(&self) -> u64 {
        self.l3_misses.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_machine() {
        let c = HwCounters::new(4, 16, 6);
        assert_eq!(c.l3_misses.len(), 4);
        assert_eq!(c.busy_ns.len(), 16);
        assert_eq!(c.link_bytes.len(), 12);
    }

    #[test]
    fn stream_attribution_and_ratio() {
        let mut c = HwCounters::new(2, 4, 1);
        let q = StreamId(7);
        c.stream_add(q, 100, 400, 3);
        c.stream_add(q, 50, 100, 1);
        let t = c.stream(q);
        assert_eq!(t.ht_bytes, 150);
        assert_eq!(t.imc_bytes, 500);
        assert_eq!(t.l3_misses, 4);
        assert_eq!(t.ht_imc_ratio(), Some(0.3));
        assert_eq!(c.stream(StreamId(9)).ht_imc_ratio(), None);
    }

    #[test]
    fn retire_stream_removes() {
        let mut c = HwCounters::new(2, 4, 1);
        c.stream_add(StreamId(1), 10, 10, 0);
        assert_eq!(c.n_streams(), 1);
        let t = c.retire_stream(StreamId(1));
        assert_eq!(t.ht_bytes, 10);
        assert_eq!(c.n_streams(), 0);
        assert_eq!(c.retire_stream(StreamId(1)), StreamTraffic::default());
    }

    #[test]
    fn snapshot_deltas() {
        let mut c = HwCounters::new(2, 2, 1);
        c.l3_misses.add(0, 5);
        let snap = c.snapshot();
        c.l3_misses.add(0, 3);
        c.l3_misses.add(1, 2);
        let d = c.l3_misses.delta_since(&snap.l3_misses);
        assert_eq!(d, vec![3, 2]);
    }

    #[test]
    fn totals() {
        let mut c = HwCounters::new(2, 2, 2);
        c.link_bytes.add(0, 10);
        c.link_bytes.add(3, 5);
        c.imc_bytes.add(1, 7);
        c.minor_faults.inc(0);
        assert_eq!(c.total_link_bytes(), 15);
        assert_eq!(c.total_imc_bytes(), 7);
        assert_eq!(c.total_minor_faults(), 1);
    }
}
