//! The fluid contention model must enforce a *hard* capacity cap: no
//! matter how many concurrent streams hammer one memory controller, the
//! achieved throughput may not materially exceed the configured
//! bandwidth. PR 1 observed the OS baseline pushing ~1.7× the nominal
//! MC bandwidth through one socket, which silently inflated the
//! baseline's throughput in every figure; these tests pin the cap.

use emca_metrics::SimDuration;
use numa_sim::{AccessKind, CoreId, Machine, MachineConfig, StreamId};

/// Drives `cores` as closed-loop streaming readers over `region_segs`
/// fresh segments homed on node 0, for `ticks` scheduler ticks, and
/// returns the achieved node-0 IMC rate in bytes/second.
fn achieved_mc_rate(cores: &[u16], ticks: u64, l3_bypass: bool) -> f64 {
    let tick = SimDuration::from_micros(100);
    let mut m = Machine::new(MachineConfig::opteron_4x4(), tick);
    let space = m.create_space();
    // Enough segments that LRU caches never hit when cycling (l3_bypass),
    // or a single large ring otherwise.
    let n_segs: u64 = if l3_bypass { 4096 } else { 64 };
    let region = m.alloc(space, n_segs * numa_sim::SEG_BYTES);
    // Home everything on node 0.
    for seg in region.segments() {
        m.access_segment(CoreId(0), seg, AccessKind::Write, StreamId(0));
    }
    m.end_tick();
    let before = m.counters().snapshot();
    let mut cursors: Vec<u64> = cores.iter().map(|&c| c as u64).collect();
    // Per-stream debt carried across ticks, mirroring the kernel: an
    // access longer than the tick keeps the thread busy in later ticks
    // instead of letting it issue again immediately.
    let mut debt: Vec<SimDuration> = vec![SimDuration::ZERO; cores.len()];
    for _ in 0..ticks {
        for (i, &core) in cores.iter().enumerate() {
            let mut used = debt[i].min(tick);
            debt[i] = debt[i].saturating_sub(tick);
            while used < tick {
                let seg = region.segment(cursors[i] % n_segs);
                cursors[i] = cursors[i].wrapping_add(cores.len() as u64 + 7);
                let res = m.access_segment(CoreId(core), seg, AccessKind::Read, StreamId(0));
                used += res.time;
            }
            debt[i] += used.saturating_sub(tick);
        }
        m.end_tick();
    }
    let after = m.counters().snapshot();
    let bytes = after.imc_bytes[0] - before.imc_bytes[0];
    bytes as f64 / (ticks as f64 * tick.as_secs_f64())
}

#[test]
fn single_local_stream_is_uncapped() {
    // One local reader cannot exceed (or be throttled far below) the
    // configured bandwidth.
    let rate = achieved_mc_rate(&[0], 500, true);
    let cap = MachineConfig::opteron_4x4().mc_bandwidth;
    assert!(rate < 1.15 * cap, "single stream above cap: {rate:.3e}");
    assert!(rate > 0.5 * cap, "single stream far below cap: {rate:.3e}");
}

#[test]
fn oversubscribed_mc_is_capped_local() {
    // 4 local cores on node 0.
    let rate = achieved_mc_rate(&[0, 1, 2, 3], 500, true);
    let cap = MachineConfig::opteron_4x4().mc_bandwidth;
    assert!(
        rate < 1.2 * cap,
        "4 local streams exceed the MC cap: {rate:.3e} vs {cap:.3e}"
    );
}

#[test]
fn oversubscribed_mc_is_capped_remote() {
    // 16 cores over all sockets, all reading node-0-homed data: the
    // scattered OS pattern. The cap must still hold.
    let cores: Vec<u16> = (0..16).collect();
    let rate = achieved_mc_rate(&cores, 500, true);
    let cap = MachineConfig::opteron_4x4().mc_bandwidth;
    assert!(
        rate < 1.2 * cap,
        "16 scattered streams exceed the MC cap: {rate:.3e} vs {cap:.3e}"
    );
}

#[test]
fn print_rates_for_diagnosis() {
    let cap = MachineConfig::opteron_4x4().mc_bandwidth;
    for n in [1usize, 2, 4, 8, 16] {
        let cores: Vec<u16> = (0..n as u16).collect();
        let rate = achieved_mc_rate(&cores, 300, true);
        eprintln!(
            "streams={n:>2} rate={:>6.2} GB/s (cap {:.1})",
            rate / 1e9,
            cap / 1e9
        );
    }
}
