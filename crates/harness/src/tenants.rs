//! The multi-tenant experiment runner: N DBMS tenants — each with its
//! own engine, cpuset group, workload and elastic mechanism — co-located
//! on one simulated machine, arbitrated by a shared
//! [`TenantArbiter`].
//!
//! This is the harness half of the ROADMAP's *SAM* / *OLTP on Hardware
//! Islands* direction: every tenant runs the paper's control loop
//! unmodified, but placement skips cores other tenants own, growth is
//! arbitrated ([`ArbiterMode`]), and each tenant may carry its own
//! [`SlaPolicy`] budgets through an [`SlaCappedPolicy`] wrap. The
//! output keeps per-tenant series so interference, fairness and reclaim
//! latency are measurable (the `mt_*` scenarios in `emca-bench`).

use crate::backend::Backend;
use crate::config::Warmup;
use elastic_core::{
    ArbiterMode, ElasticMechanism, MechanismConfig, Policy, PolicyId, SlaCappedPolicy, SlaPolicy,
    TenantArbiter, TenantBinding,
};
use emca_metrics::{SimDuration, SimTime, TimeSeries};
use numa_sim::{Machine, MachineConfig};
use os_sim::{CoreMask, Kernel, KernelConfig, ThreadState, Tid};
use std::cell::Cell;
use std::rc::Rc;
use volcano_db::client::{spawn_clients, SharedLog, Workload};
use volcano_db::exec::engine::{Engine, EngineConfig, Flavor, QueryResult};
use volcano_db::exec::FaultPlan;
use volcano_db::tpch::TpchData;

/// One tenant's slice of a multi-tenant run.
#[derive(Clone, Debug)]
pub struct TenantRunConfig {
    /// Display name (also the arbiter registration name).
    pub name: String,
    /// The workload every client of this tenant runs.
    pub workload: Workload,
    /// Concurrent clients.
    pub clients: usize,
    /// Placement policy of the tenant's mechanism.
    pub policy: PolicyId,
    /// SLA budgets; [`SlaPolicy::unconstrained`] runs the bare policy.
    pub sla: SlaPolicy,
    /// Fair-share weight / priority rank for the arbiter.
    pub weight: u32,
    /// Simulated delay before this tenant's clients arrive (burst
    /// scenarios); the engine and mechanism are installed at start
    /// regardless.
    pub start_after: SimDuration,
}

impl TenantRunConfig {
    /// An unconstrained tenant with weight 1 starting immediately.
    pub fn new(name: impl Into<String>, workload: Workload, clients: usize) -> Self {
        TenantRunConfig {
            name: name.into(),
            workload,
            clients,
            policy: PolicyId::Adaptive,
            sla: SlaPolicy::unconstrained(),
            weight: 1,
            start_after: SimDuration::ZERO,
        }
    }

    /// Sets the placement policy.
    pub fn with_policy(mut self, policy: PolicyId) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches SLA budgets (enforced by an [`SlaCappedPolicy`] wrap).
    pub fn with_sla(mut self, sla: SlaPolicy) -> Self {
        self.sla = sla;
        self
    }

    /// Sets the arbiter weight / priority rank.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Delays this tenant's client arrival.
    pub fn with_start_after(mut self, delay: SimDuration) -> Self {
        self.start_after = delay;
        self
    }

    fn constrained(&self) -> bool {
        self.sla.max_power_w.is_some()
            || self.sla.max_ht_rate.is_some()
            || self.sla.max_cores.is_some()
    }
}

/// Full description of one multi-tenant run.
#[derive(Clone, Debug)]
pub struct MultiTenantConfig {
    /// Engine flavor (shared by every tenant).
    pub flavor: Flavor,
    /// How the arbiter resolves contention.
    pub arbiter: ArbiterMode,
    /// The tenants.
    pub tenants: Vec<TenantRunConfig>,
    /// Database scale (each tenant loads its own copy).
    pub scale: volcano_db::tpch::TpchScale,
    /// Safety cap on simulated time.
    pub deadline: SimDuration,
    /// Time-series sampling interval.
    pub sample_every: SimDuration,
    /// Pinned mechanism control interval (`None` = adaptive).
    pub mech_interval: Option<SimDuration>,
    /// Base-data placement (identical for every tenant).
    pub warmup: Warmup,
    /// How long the simulation keeps ticking after the last client
    /// finishes. The mechanisms keep polling during the drain, so
    /// post-completion core release (reclaim latency) stays observable
    /// even for the tenant that finishes last.
    pub drain: SimDuration,
    /// Execution backend (simulated workers vs real OS threads).
    pub backend: Backend,
    /// Deterministic fault-injection plan, applied identically to every
    /// tenant's engine. `None` (the default) keeps the fault plane
    /// inert.
    pub faults: Option<FaultPlan>,
    /// Serverless churn: cap on *simultaneously resident* tenants.
    /// `Some(_)` switches to the churn runner — tenants are admitted at
    /// their `start_after` arrival (queueing when the machine is full),
    /// installed cold (data load + first allocation at admit time), and
    /// depart when their clients finish (cores reclaimed and
    /// redistributed). `None` installs every tenant up front (the
    /// classic `mt_*` shape).
    pub resident_cap: Option<usize>,
    /// Static-partitioner baseline for the churn runner: each resident
    /// slot owns a fixed slice of the machine and no elastic mechanism
    /// runs — the strawman the adaptive arbiter is gated against.
    pub static_partition: bool,
}

impl MultiTenantConfig {
    /// A config over the given tenants with runner defaults.
    pub fn new(arbiter: ArbiterMode, tenants: Vec<TenantRunConfig>) -> Self {
        assert!(!tenants.is_empty(), "need at least one tenant");
        MultiTenantConfig {
            flavor: Flavor::MonetDb,
            arbiter,
            tenants,
            scale: volcano_db::tpch::TpchScale::harness_default(),
            deadline: SimDuration::from_secs(600),
            sample_every: SimDuration::from_millis(100),
            mech_interval: None,
            warmup: Warmup::default(),
            drain: SimDuration::ZERO,
            backend: Backend::default(),
            faults: None,
            resident_cap: None,
            static_partition: false,
        }
    }

    /// Caps simultaneously resident tenants, switching to the churn
    /// runner (admit-on-arrival / depart-on-completion lifecycle).
    pub fn with_resident_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "resident cap must admit at least one tenant");
        self.resident_cap = Some(cap);
        self
    }

    /// Runs the static-partitioner baseline instead of elastic
    /// arbitration (churn runner only).
    pub fn with_static_partition(mut self) -> Self {
        self.static_partition = true;
        self
    }

    /// Changes the metric sampling interval (default 100 ms). Churn
    /// scenarios sample finer: short-lived tenants would otherwise
    /// depart before their first cores/load/qps sample.
    pub fn with_sample_every(mut self, every: SimDuration) -> Self {
        assert!(
            every > SimDuration::ZERO,
            "sample interval must be positive"
        );
        self.sample_every = every;
        self
    }

    /// Keeps the simulation ticking for `drain` after the last client
    /// finishes (reclaim-latency measurements).
    pub fn with_drain(mut self, drain: SimDuration) -> Self {
        self.drain = drain;
        self
    }

    /// Switches the database scale.
    pub fn with_scale(mut self, scale: volcano_db::tpch::TpchScale) -> Self {
        self.scale = scale;
        self
    }

    /// Pins the mechanism control interval.
    pub fn with_mech_interval(mut self, interval: SimDuration) -> Self {
        self.mech_interval = Some(interval);
        self
    }

    /// Switches the engine flavor.
    pub fn with_flavor(mut self, flavor: Flavor) -> Self {
        self.flavor = flavor;
        self
    }

    /// Switches the execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Arms a deterministic fault-injection plan on every tenant's
    /// engine. Empty plans are kept as `None` so the fault plane stays
    /// inert.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = (!plan.is_empty()).then_some(plan);
        self
    }
}

/// Everything measured for one tenant.
pub struct TenantOutput {
    /// The tenant's configuration.
    pub config: TenantRunConfig,
    /// Every completed query of this tenant.
    pub results: Vec<QueryResult>,
    /// Allocated cores over time.
    pub cores_series: TimeSeries,
    /// DBMS-group CPU load (%).
    pub load_series: TimeSeries,
    /// Completions per second per sample window.
    pub qps_series: TimeSeries,
    /// When the tenant's clients arrived.
    pub started_at: SimTime,
    /// When the tenant's last client finished.
    pub finished_at: SimTime,
    /// SLA budget violations observed by the tenant's governor.
    pub sla_violations: u64,
    /// Mechanism control steps executed.
    pub control_steps: u64,
}

impl TenantOutput {
    /// Wall time from client arrival to the last completion.
    pub fn wall(&self) -> SimDuration {
        self.finished_at.since(self.started_at)
    }

    /// Queries per second over the tenant's active window.
    pub fn throughput_qps(&self) -> f64 {
        let wall = self.wall();
        if wall.is_zero() {
            0.0
        } else {
            self.results.len() as f64 / wall.as_secs_f64()
        }
    }

    /// Mean response time across the tenant's queries.
    pub fn mean_response(&self) -> SimDuration {
        self.mean_response_between(SimTime::ZERO, SimTime::MAX)
    }

    /// Mean response time over completions inside `[from, to]` (zero
    /// when none fall in the window).
    pub fn mean_response_between(&self, from: SimTime, to: SimTime) -> SimDuration {
        let mut n = 0u64;
        let total: SimDuration = self
            .results
            .iter()
            .filter(|r| r.finished >= from && r.finished <= to)
            .map(|r| {
                n += 1;
                r.response()
            })
            .sum();
        if n == 0 {
            SimDuration::ZERO
        } else {
            total / n
        }
    }

    /// Response-time percentile over completions inside `[from, to]`.
    /// `percentile` orders with `f64::total_cmp` internally, so no
    /// pre-sort (and no ad-hoc NaN comparator) is needed here.
    pub fn response_percentile_between(&self, q: f64, from: SimTime, to: SimTime) -> SimDuration {
        let secs: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.finished >= from && r.finished <= to)
            .map(|r| r.response().as_secs_f64())
            .collect();
        match emca_metrics::stats::percentile(&secs, q) {
            Some(s) => SimDuration::from_secs_f64(s),
            None => SimDuration::ZERO,
        }
    }

    /// Response-time percentile (e.g. `0.95`).
    pub fn response_percentile(&self, q: f64) -> SimDuration {
        self.response_percentile_between(q, SimTime::ZERO, SimTime::MAX)
    }

    /// Mean allocated cores over the tenant's active window.
    pub fn cores_mean(&self) -> f64 {
        self.cores_between(self.started_at, self.finished_at)
            .unwrap_or(0.0)
    }

    /// Maximum allocated cores over the whole run.
    pub fn cores_max(&self) -> f64 {
        self.cores_series.max().unwrap_or(0.0)
    }

    /// Mean of the cores series restricted to `[from, to]`.
    pub fn cores_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .cores_series
            .samples()
            .iter()
            .filter(|(t, _)| *t >= from && *t <= to)
            .map(|&(_, v)| v)
            .collect();
        emca_metrics::stats::mean(&vals)
    }

    /// Coefficient of variation (σ/μ) of the per-window completion rate
    /// over `[from, to]` — the throughput-stability measure of the
    /// `mt_*` scenarios (0 = perfectly steady). `None` when fewer than
    /// two windows fall in range or the mean rate is zero.
    pub fn qps_cov_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        // Non-finite samples are dropped rather than poisoning the
        // mean/stddev into a NaN "stability" figure (same policy as
        // `stats::percentile` rejecting NaN input).
        let vals: Vec<f64> = self
            .qps_series
            .samples()
            .iter()
            .filter(|(t, v)| *t >= from && *t <= to && v.is_finite())
            .map(|&(_, v)| v)
            .collect();
        if vals.len() < 2 {
            return None;
        }
        let mean = emca_metrics::stats::mean(&vals)?;
        if mean <= 0.0 {
            return None;
        }
        Some(emca_metrics::stats::stddev(&vals)? / mean)
    }

    /// Throughput (completions/s) restricted to `[from, to]`, counted
    /// from the per-query completion stamps.
    pub fn qps_between(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.since(from).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let n = self
            .results
            .iter()
            .filter(|r| r.finished >= from && r.finished <= to)
            .count();
        n as f64 / span
    }
}

/// The combined outcome of a multi-tenant run.
pub struct MultiTenantOutput {
    /// Per-tenant measurements, in configuration order.
    pub tenants: Vec<TenantOutput>,
    /// Simulated time from start to the last tenant finishing.
    pub wall: SimDuration,
    /// Total cores of the simulated machine (what the arbiter split).
    pub ntotal: u32,
    /// Arbiter growth denials over the run.
    pub arbiter_denials: u64,
    /// Arbiter forced yields (cores actually shed toward a starved
    /// peer) over the run.
    pub arbiter_yields: u64,
    /// Control ticks whose arbitration cost was measured (churn runner
    /// only; zero elsewhere).
    pub arbiter_ticks: u64,
    /// Total host-clock nanoseconds spent inside measured control
    /// ticks — `arbiter_ns / arbiter_ticks` is the mean decision cost
    /// the `mt_churn` gate holds below the control interval.
    pub arbiter_ns: u64,
    /// Query failures surfaced by the engines (`"<tenant>: <error>"` on
    /// the sim backend, `"client <n>: <error>"` on threads, where the
    /// shared error sink loses tenant attribution). Empty on fault-free
    /// runs — a failed query never silently aliases an unfinished one.
    pub errors: Vec<String>,
}

impl MultiTenantOutput {
    /// Looks a tenant up by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantOutput> {
        self.tenants.iter().find(|t| t.config.name == name)
    }
}

/// An [`SlaCappedPolicy`] that mirrors its governor's violation count
/// into a shared cell, so the runner can report it after the mechanism
/// (which owns the boxed policy) is gone.
struct SlaProbePolicy {
    inner: SlaCappedPolicy,
    violations: Rc<Cell<u64>>,
}

impl Policy for SlaProbePolicy {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_core(&mut self, ctx: &elastic_core::ModeCtx<'_>) -> Option<numa_sim::CoreId> {
        self.inner.next_core(ctx)
    }

    fn release_core(&mut self, ctx: &elastic_core::ModeCtx<'_>) -> Option<numa_sim::CoreId> {
        self.inner.release_core(ctx)
    }

    fn observe(&mut self, obs: &elastic_core::Observation<'_>) {
        self.inner.observe(obs);
        self.violations.set(self.inner.violations());
    }

    fn shape(&mut self, u: i64, nalloc: u32, thresholds: prt_petrinet::Thresholds) -> i64 {
        self.inner.shape(u, nalloc, thresholds)
    }

    fn grow_denied(&mut self, core: numa_sim::CoreId) {
        self.inner.grow_denied(core);
    }

    fn decide(&mut self, ctx: &elastic_core::PolicyCtx<'_>) -> elastic_core::Decision {
        self.inner.decide(ctx)
    }
}

/// Per-tenant live state inside the run loop.
struct TenantLive {
    group: os_sim::GroupId,
    engine: Engine,
    mechanism: ElasticMechanism,
    logs: Vec<SharedLog>,
    client_tids: Vec<Tid>,
    load_sampler: os_sim::LoadSampler,
    cores_series: TimeSeries,
    load_series: TimeSeries,
    qps_series: TimeSeries,
    /// Per-log cursors for `note_response` feeding.
    seen: Vec<usize>,
    /// Completions counted since the last sample window.
    window_completions: u64,
    violations: Rc<Cell<u64>>,
    started_at: Option<SimTime>,
    finished_at: Option<SimTime>,
}

/// Runs a multi-tenant experiment. `data` is shared across tenants and
/// runs; each tenant loads its own copy into its own address space (the
/// *OLTP on Hardware Islands* co-location shape: instances share the
/// machine, not the buffer pool).
pub fn run_tenants(config: MultiTenantConfig, data: &TpchData) -> MultiTenantOutput {
    if config.resident_cap.is_some() || config.static_partition {
        return crate::churn::run_tenants_churn(config, data);
    }
    if config.backend == Backend::Threads {
        return crate::runner_threads::run_tenants_threads(config, data);
    }
    let kernel_cfg = KernelConfig::default();
    let machine = Machine::new(MachineConfig::opteron_4x4(), kernel_cfg.tick);
    let mut kernel = Kernel::new(machine, kernel_cfg);
    let topo = kernel.machine().topology().clone();
    let ntotal = topo.n_cores() as u32;
    let cores_per_socket = (ntotal / topo.n_nodes() as u32).max(1);

    let arbiter = TenantArbiter::shared(config.arbiter, ntotal);
    for t in &config.tenants {
        let budget = t.sla.max_cores;
        arbiter
            .borrow_mut()
            .register(t.name.clone(), t.weight, budget);
    }

    let mut live: Vec<TenantLive> = Vec::with_capacity(config.tenants.len());
    for (i, tcfg) in config.tenants.iter().enumerate() {
        let group = kernel.create_group(CoreMask::all(&topo));
        let engine = Engine::new(
            EngineConfig {
                flavor: config.flavor,
                memo_capacity: 4096,
                faults: config.faults.clone(),
                fault_seed: config.scale.seed,
                ..EngineConfig::default()
            },
            topo.n_nodes(),
        );
        let loader = match config.warmup {
            Warmup::Loader => Some(numa_sim::CoreId(0)),
            Warmup::Interleave | Warmup::None => None,
        };
        engine.load(kernel.machine_mut(), data, loader);
        if config.warmup == Warmup::Interleave {
            engine.interleave_base(kernel.machine_mut());
        }
        engine.start_workers(&mut kernel, group);

        let violations = Rc::new(Cell::new(0u64));
        let placement = tcfg.policy.build();
        let policy: Box<dyn Policy> = if tcfg.constrained() {
            Box::new(SlaProbePolicy {
                inner: SlaCappedPolicy::new(placement, tcfg.sla, ntotal, cores_per_socket),
                violations: Rc::clone(&violations),
            })
        } else {
            placement
        };
        let mut mech_cfg = MechanismConfig::cpu_load().with_mode_latency(tcfg.policy.name());
        if let Some(interval) = config.mech_interval {
            mech_cfg.interval = interval;
            mech_cfg.min_interval = interval;
            mech_cfg.actuation_latency = mech_cfg.actuation_latency.min(interval / 2);
        }
        if tcfg.policy == PolicyId::HillClimb {
            mech_cfg.saturation_guard = None;
        }
        let binding = TenantBinding::new(Rc::clone(&arbiter), elastic_core::TenantId(i as u32));
        let mechanism = ElasticMechanism::install_tenant(
            &mut kernel,
            group,
            engine.space(),
            policy,
            mech_cfg,
            binding,
        );
        let load_sampler = os_sim::LoadSampler::new(&kernel, group);
        live.push(TenantLive {
            group,
            engine,
            mechanism,
            logs: Vec::new(),
            client_tids: Vec::new(),
            load_sampler,
            cores_series: TimeSeries::new(format!("{}_cores", tcfg.name)),
            load_series: TimeSeries::new(format!("{}_load", tcfg.name)),
            qps_series: TimeSeries::new(format!("{}_qps", tcfg.name)),
            seen: Vec::new(),
            window_completions: 0,
            violations,
            started_at: None,
            finished_at: None,
        });
    }

    let start = kernel.now();
    let deadline = start + config.deadline;
    let mut next_sample = start + config.sample_every;
    let mut drained_from: Option<SimTime> = None;

    loop {
        let now = kernel.now();
        if now >= deadline {
            break;
        }
        // Late arrivals: spawn a tenant's clients once its delay passed.
        for (tcfg, t) in config.tenants.iter().zip(&mut live) {
            if t.started_at.is_none() && now.since(start) >= tcfg.start_after {
                let before = kernel.n_threads();
                t.logs = spawn_clients(
                    &mut kernel,
                    &t.engine,
                    t.group,
                    tcfg.clients,
                    tcfg.workload.clone(),
                );
                t.client_tids = (before as u32..kernel.n_threads() as u32)
                    .map(Tid)
                    .collect();
                t.seen = vec![0; t.logs.len()];
                t.started_at = Some(now);
            }
        }
        // Finish detection per tenant, and overall.
        let mut all_done = true;
        for t in &mut live {
            match t.started_at {
                None => all_done = false,
                Some(_) => {
                    if t.finished_at.is_none() {
                        let done = t
                            .client_tids
                            .iter()
                            .all(|&tid| kernel.thread_state(tid) == ThreadState::Finished);
                        if done {
                            t.finished_at = Some(now);
                        } else {
                            all_done = false;
                        }
                    }
                }
            }
        }
        if all_done {
            let from = *drained_from.get_or_insert(now);
            if now.since(from) >= config.drain {
                break;
            }
        }
        kernel.run_tick();
        for t in &mut live {
            t.mechanism.poll(&mut kernel);
            for (log, cursor) in t.logs.iter().zip(&mut t.seen) {
                let log = log.borrow();
                for r in &log.results[*cursor..] {
                    t.mechanism.note_response(r.response());
                    t.window_completions += 1;
                }
                *cursor = log.results.len();
            }
        }
        if kernel.now() >= next_sample {
            let now = kernel.now();
            let dt = config.sample_every.as_secs_f64();
            for t in &mut live {
                t.cores_series
                    .push(now, kernel.group_mask(t.group).count() as f64);
                let sample = t.load_sampler.sample(&kernel);
                t.load_series.push(now, sample.group_load_pct());
                t.qps_series.push(now, t.window_completions as f64 / dt);
                t.window_completions = 0;
            }
            next_sample = now + config.sample_every;
        }
    }
    let end = kernel.now();
    assert!(
        live.iter().all(|t| t.finished_at.is_some()),
        "multi-tenant run hit the deadline ({:?}) with clients unfinished — raise \
         MultiTenantConfig::deadline",
        config.deadline
    );

    let (denials, yields) = {
        let arb = arbiter.borrow();
        (arb.denials, arb.yields)
    };
    let mut errors = Vec::new();
    let tenants = config
        .tenants
        .iter()
        .zip(live)
        .map(|(tcfg, t)| {
            let results = volcano_db::client::drain_results(&t.logs);
            errors.extend(
                volcano_db::client::drain_errors(&t.logs)
                    .into_iter()
                    .map(|e| format!("{}: {e}", tcfg.name)),
            );
            TenantOutput {
                config: tcfg.clone(),
                results,
                cores_series: t.cores_series,
                load_series: t.load_series,
                qps_series: t.qps_series,
                started_at: t.started_at.unwrap_or(start),
                finished_at: t.finished_at.unwrap_or(end),
                sla_violations: t.violations.get(),
                control_steps: t.mechanism.steps,
            }
        })
        .collect();

    // Wall is start → last completion; the drain window is
    // measurement-only time and does not count.
    let last_finish = drained_from.unwrap_or(end);
    MultiTenantOutput {
        tenants,
        wall: last_finish.since(start),
        ntotal,
        arbiter_denials: denials,
        arbiter_yields: yields,
        arbiter_ticks: 0,
        arbiter_ns: 0,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_db::tpch::{QuerySpec, TpchScale};

    fn tiny_data() -> TpchData {
        TpchData::generate(TpchScale::test_tiny())
    }

    fn q6(iters: u32) -> Workload {
        Workload::Repeat {
            spec: QuerySpec::Q6 { variant: 0 },
            iterations: iters,
        }
    }

    #[test]
    fn two_tenants_run_to_completion_without_core_overlap() {
        let data = tiny_data();
        let cfg = MultiTenantConfig::new(
            ArbiterMode::FairShare,
            vec![
                TenantRunConfig::new("a", q6(2), 2),
                TenantRunConfig::new("b", q6(2), 2),
            ],
        )
        .with_scale(data.scale)
        .with_mech_interval(SimDuration::from_millis(2));
        let out = run_tenants(cfg, &data);
        assert_eq!(out.tenants.len(), 2);
        for t in &out.tenants {
            assert_eq!(
                t.results.len(),
                4,
                "{} must finish its queries",
                t.config.name
            );
            assert!(t.throughput_qps() > 0.0);
            assert!(t.control_steps > 0, "mechanism must run");
        }
        assert!(out.tenant("a").is_some() && out.tenant("missing").is_none());
    }

    #[test]
    fn delayed_tenant_starts_late() {
        let data = tiny_data();
        let cfg = MultiTenantConfig::new(
            ArbiterMode::FairShare,
            vec![
                TenantRunConfig::new("steady", q6(3), 2),
                TenantRunConfig::new("burst", q6(1), 2)
                    .with_start_after(SimDuration::from_millis(20)),
            ],
        )
        .with_scale(data.scale)
        .with_mech_interval(SimDuration::from_millis(2));
        let out = run_tenants(cfg, &data);
        let steady = out.tenant("steady").unwrap();
        let burst = out.tenant("burst").unwrap();
        assert!(
            burst.started_at.since(steady.started_at) >= SimDuration::from_millis(20),
            "burst tenant must arrive at least 20ms later"
        );
        assert_eq!(burst.results.len(), 2);
    }

    #[test]
    fn budget_capped_tenant_stays_under_its_core_cap() {
        let data = tiny_data();
        let cap = 2u32;
        let cfg = MultiTenantConfig::new(
            ArbiterMode::BudgetCapped,
            vec![
                TenantRunConfig::new("capped", q6(3), 4).with_sla(SlaPolicy::cores(cap)),
                TenantRunConfig::new("free", q6(3), 4),
            ],
        )
        .with_scale(data.scale)
        .with_mech_interval(SimDuration::from_millis(2));
        let out = run_tenants(cfg, &data);
        let capped = out.tenant("capped").unwrap();
        assert!(
            capped.cores_max() <= cap as f64,
            "capped tenant exceeded its budget: {} cores",
            capped.cores_max()
        );
    }

    /// A synthetic output with completions at 1s, 2s, 3s (responses
    /// 100ms each) and one cores/qps sample per second.
    fn synthetic_output(n_results: usize) -> TenantOutput {
        let mut cores_series = TimeSeries::new("t_cores");
        let mut qps_series = TimeSeries::new("t_qps");
        let results = (0..n_results)
            .map(|i| {
                let finished = SimTime::from_secs(i as u64 + 1);
                cores_series.push(finished, (i + 1) as f64);
                qps_series.push(finished, 1.0);
                QueryResult {
                    qid: volcano_db::exec::task::QueryId(i as u64),
                    label: "q06".to_string(),
                    spec_tag: 6,
                    submitted: finished - SimDuration::from_millis(100),
                    finished,
                    traffic: Default::default(),
                    busy: SimDuration::from_millis(50),
                    result: volcano_db::exec::Mat::Scalar(1.0),
                }
            })
            .collect();
        TenantOutput {
            config: TenantRunConfig::new("t", q6(1), 1),
            results,
            cores_series,
            load_series: TimeSeries::new("t_load"),
            qps_series,
            started_at: SimTime::ZERO,
            finished_at: SimTime::from_secs(3),
            sla_violations: 0,
            control_steps: 0,
        }
    }

    #[test]
    fn windowed_metrics_on_an_empty_window() {
        let t = synthetic_output(3);
        // A window past every completion holds nothing: means and
        // percentiles report zero, optional stats report None.
        let from = SimTime::from_secs(100);
        let to = SimTime::from_secs(200);
        assert_eq!(t.mean_response_between(from, to), SimDuration::ZERO);
        assert_eq!(
            t.response_percentile_between(0.95, from, to),
            SimDuration::ZERO
        );
        assert_eq!(t.qps_between(from, to), 0.0);
        assert_eq!(t.cores_between(from, to), None);
        assert_eq!(t.qps_cov_between(from, to), None);
    }

    #[test]
    fn windowed_metrics_on_a_zero_or_inverted_span() {
        let t = synthetic_output(3);
        let at = SimTime::from_secs(1);
        // Zero span: a completion sits exactly on the window edge, but a
        // rate over no time is reported as zero, not a division blow-up.
        assert_eq!(t.qps_between(at, at), 0.0);
        // Inverted span (to < from): empty, not negative.
        assert_eq!(t.qps_between(SimTime::from_secs(3), at), 0.0);
        assert_eq!(
            t.mean_response_between(SimTime::from_secs(3), at),
            SimDuration::ZERO
        );
    }

    #[test]
    fn windowed_metrics_on_a_single_sample() {
        let t = synthetic_output(1);
        let from = SimTime::ZERO;
        let to = SimTime::from_secs(10);
        assert_eq!(
            t.mean_response_between(from, to),
            SimDuration::from_millis(100)
        );
        // Any percentile of one sample is that sample.
        assert_eq!(
            t.response_percentile_between(0.95, from, to),
            SimDuration::from_millis(100)
        );
        assert_eq!(t.cores_between(from, to), Some(1.0));
        // One qps window cannot support a variability estimate.
        assert_eq!(t.qps_cov_between(from, to), None);
    }

    #[test]
    fn windowed_metrics_on_a_tenant_departing_mid_window() {
        // A churned tenant departs at 3s but the observation window runs
        // to 10s: every metric clamps to what the tenant actually did —
        // no extrapolation past the departure, no NaN from the empty
        // tail of the window.
        let t = synthetic_output(3);
        let from = SimTime::from_secs(2);
        let to = SimTime::from_secs(10);
        // Completions at 2s and 3s fall in the window; the rate is over
        // the full window span (the tenant is simply absent after 3s).
        assert_eq!(t.qps_between(from, to), 2.0 / 8.0);
        assert_eq!(
            t.mean_response_between(from, to),
            SimDuration::from_millis(100)
        );
        // Core samples exist only while resident (at 2s and 3s).
        assert_eq!(t.cores_between(from, to), Some(2.5));
        // Whole-run aggregates keep using the tenant's own span.
        assert!(t.throughput_qps() > 0.0);
        assert!(t.wall() == SimDuration::from_secs(3));
    }

    #[test]
    fn cold_start_tenant_with_zero_completions_is_metric_safe() {
        // An admitted-then-departed tenant that never finished a query
        // (e.g. killed by a deadline assert upstream, or observed
        // mid-cold-start): every metric must stay finite or None.
        let started = SimTime::from_secs(5);
        let t = TenantOutput {
            config: TenantRunConfig::new("cold", q6(1), 1),
            results: Vec::new(),
            cores_series: TimeSeries::new("cold_cores"),
            load_series: TimeSeries::new("cold_load"),
            qps_series: TimeSeries::new("cold_qps"),
            started_at: started,
            finished_at: started,
            sla_violations: 0,
            control_steps: 0,
        };
        assert_eq!(t.wall(), SimDuration::ZERO);
        assert_eq!(t.throughput_qps(), 0.0);
        assert!(t.throughput_qps().is_finite());
        assert_eq!(t.mean_response(), SimDuration::ZERO);
        assert_eq!(t.response_percentile(0.99), SimDuration::ZERO);
        assert_eq!(t.cores_mean(), 0.0);
        assert_eq!(t.cores_max(), 0.0);
        assert_eq!(t.qps_between(started, started), 0.0);
        assert_eq!(
            t.qps_cov_between(SimTime::ZERO, SimTime::from_secs(10)),
            None
        );
    }

    #[test]
    fn percentile_survives_nan_responses() {
        let mut t = synthetic_output(3);
        // Corrupt one response into NaN territory via a saturating
        // since(): submitted after finished yields a zero response, and
        // stats::percentile itself filters non-finite inputs — inject an
        // actual NaN through the series to prove the stats layer holds.
        t.qps_series.push(SimTime::from_secs(4), f64::NAN);
        let cov = t.qps_cov_between(SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(
            cov,
            Some(0.0),
            "the NaN sample is dropped; the three steady windows give CoV 0"
        );
        // With only the NaN in range there is nothing to estimate from.
        assert!(t
            .qps_cov_between(SimTime::from_secs(4), SimTime::from_secs(10))
            .is_none());
        // Percentiles over the (finite) responses stay correct.
        assert_eq!(t.response_percentile(0.5), SimDuration::from_millis(100));
    }
}
