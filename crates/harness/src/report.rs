//! Aggregation and rendering helpers shared by the figure binaries.

use crate::runner::RunOutput;
use elastic_core::TransitionEvent;
use emca_metrics::stats;
use emca_metrics::table::{fnum, Table};
use emca_metrics::{FxHashMap, SimDuration, TimeSeries};
use numa_sim::{EnergyBreakdown, EnergyModel};
use os_sim::SchedTrace;
use volcano_db::exec::engine::QueryResult;

/// Per-query-tag aggregates (one row of Fig. 19 / Fig. 20).
#[derive(Clone, Debug, Default)]
pub struct TagStats {
    /// Number of executions.
    pub n: usize,
    /// Mean response time.
    pub mean_response: SimDuration,
    /// Mean per-query HT/IMC ratio.
    pub mean_ht_imc: f64,
    /// Mean busy time per execution.
    pub mean_busy: SimDuration,
    /// Mean HT bytes per execution.
    pub mean_ht_bytes: f64,
}

/// Groups results by their spec tag (query number).
pub fn by_tag(results: &[QueryResult]) -> Vec<(u32, TagStats)> {
    let mut groups: FxHashMap<u32, Vec<&QueryResult>> = FxHashMap::default();
    for r in results {
        groups.entry(r.spec_tag).or_default().push(r);
    }
    let mut out: Vec<(u32, TagStats)> = groups
        .into_iter()
        .map(|(tag, rs)| {
            let n = rs.len();
            let total_resp: SimDuration = rs.iter().map(|r| r.response()).sum();
            let ratios: Vec<f64> = rs.iter().filter_map(|r| r.traffic.ht_imc_ratio()).collect();
            let total_busy: SimDuration = rs.iter().map(|r| r.busy).sum();
            let ht_bytes: f64 =
                rs.iter().map(|r| r.traffic.ht_bytes as f64).sum::<f64>() / n as f64;
            (
                tag,
                TagStats {
                    n,
                    mean_response: total_resp / n as u64,
                    mean_ht_imc: stats::mean(&ratios).unwrap_or(0.0),
                    mean_busy: total_busy / n as u64,
                    mean_ht_bytes: ht_bytes,
                },
            )
        })
        .collect();
    out.sort_by_key(|&(tag, _)| tag);
    out
}

/// Speedup of `improved` over `baseline` per tag (baseline/improved
/// response-time ratio, the topmost numbers of Fig. 19).
pub fn speedup_by_tag(baseline: &[QueryResult], improved: &[QueryResult]) -> Vec<(u32, f64)> {
    let base = by_tag(baseline);
    let imp: FxHashMap<u32, TagStats> = by_tag(improved).into_iter().collect();
    base.into_iter()
        .filter_map(|(tag, b)| {
            let i = imp.get(&tag)?;
            stats::speedup(b.mean_response.as_secs_f64(), i.mean_response.as_secs_f64())
                .map(|s| (tag, s))
        })
        .collect()
}

/// Per-query energy estimates (Fig. 20 methodology).
pub fn energy_by_tag(
    results: &[QueryResult],
    model: &EnergyModel,
    n_sockets: usize,
) -> Vec<(u32, EnergyBreakdown)> {
    by_tag(results)
        .into_iter()
        .map(|(tag, s)| {
            let e = model.per_query(
                s.mean_response,
                s.mean_busy,
                n_sockets,
                s.mean_ht_bytes as u64,
            );
            (tag, e)
        })
        .collect()
}

/// Renders a time-series bundle as one table: `time, <series...>`.
/// Series are resampled onto the first series' timestamps.
pub fn render_series(title: &str, series: &[&TimeSeries]) -> Table {
    let mut headers: Vec<&str> = vec!["time_s"];
    for s in series {
        headers.push(s.name());
    }
    let mut t = Table::new(title, &headers);
    if series.is_empty() || series[0].is_empty() {
        return t;
    }
    let n = series[0].len();
    for i in 0..n {
        let (at, _) = series[0].samples()[i];
        let mut row = vec![fnum(at.as_secs_f64(), 3)];
        for s in series {
            let v = s.samples().get(i).map(|&(_, v)| v).unwrap_or(f64::NAN);
            row.push(fnum(v, 3));
        }
        t.row(row);
    }
    t
}

/// Renders the mechanism's transition log (Fig. 7).
pub fn render_transitions(title: &str, events: &[TransitionEvent]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "time_s",
            "transition",
            "state",
            "u",
            "cpu_load_pct",
            "cores",
        ],
    );
    for e in events {
        t.row(vec![
            fnum(e.at.as_secs_f64(), 3),
            e.label.clone(),
            e.state.name().to_string(),
            e.u.to_string(),
            fnum(e.cpu_load_pct, 1),
            e.nalloc.to_string(),
        ]);
    }
    t
}

/// Renders a scheduler trace as the migration map of Figs. 5/16: one row
/// per span (`thread, core, node, start_ms, end_ms`). On the threads
/// backend the trace holds *host* CPU ids, which may lie outside the
/// simulated topology — those rows get a blank node column.
pub fn render_migration_map(title: &str, trace: &SchedTrace, topo: &numa_sim::Topology) -> Table {
    let mut t = Table::new(
        title,
        &["thread", "name_hint", "core", "node", "start_ms", "end_ms"],
    );
    for span in trace.spans() {
        let node = if span.core.idx() < topo.n_cores() {
            topo.node_of(span.core).0.to_string()
        } else {
            "-".to_string()
        };
        t.row(vec![
            format!("T{}", span.tid.0),
            String::new(),
            span.core.0.to_string(),
            node,
            fnum(span.start.as_secs_f64() * 1e3, 3),
            fnum(span.end.as_secs_f64() * 1e3, 3),
        ]);
    }
    t
}

/// Renders the Tomograph operator table (Fig. 6).
pub fn render_tomograph(title: &str, out: &RunOutput) -> Table {
    let mut t = Table::new(title, &["operator", "calls", "total_time"]);
    for (op, s) in out.tomograph.by_time() {
        t.row(vec![
            op.to_string(),
            s.calls.to_string(),
            format!("{}", s.total_time),
        ]);
    }
    t
}

/// Migration count per thread from a trace (summary row of Figs. 5/16).
pub fn migration_summary(trace: &SchedTrace) -> (usize, usize) {
    let threads = trace.threads();
    let total: usize = threads.iter().map(|&t| trace.migrations_of(t)).sum();
    (threads.len(), total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emca_metrics::SimTime;
    use numa_sim::StreamTraffic;
    use volcano_db::exec::mat::Mat;
    use volcano_db::exec::task::QueryId;

    fn qr(tag: u32, resp_ms: u64, ht: u64, imc: u64) -> QueryResult {
        QueryResult {
            qid: QueryId(0),
            label: format!("Q{tag}"),
            spec_tag: tag,
            submitted: SimTime::ZERO,
            finished: SimTime::from_millis(resp_ms),
            traffic: StreamTraffic {
                ht_bytes: ht,
                imc_bytes: imc,
                l3_misses: 0,
            },
            busy: SimDuration::from_millis(resp_ms / 2),
            result: Mat::Scalar(0.0),
        }
    }

    #[test]
    fn by_tag_groups_and_averages() {
        let results = vec![qr(1, 100, 10, 100), qr(1, 300, 30, 100), qr(2, 50, 0, 100)];
        let tags = by_tag(&results);
        assert_eq!(tags.len(), 2);
        let (tag, s) = &tags[0];
        assert_eq!(*tag, 1);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean_response, SimDuration::from_millis(200));
        assert!((s.mean_ht_imc - 0.2).abs() < 1e-12);
    }

    #[test]
    fn speedup_compares_baseline() {
        let base = vec![qr(1, 200, 0, 1), qr(2, 100, 0, 1)];
        let imp = vec![qr(1, 100, 0, 1), qr(2, 100, 0, 1)];
        let sp = speedup_by_tag(&base, &imp);
        assert_eq!(sp.len(), 2);
        assert!((sp[0].1 - 2.0).abs() < 1e-12);
        assert!((sp[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_by_tag_produces_breakdowns() {
        let results = vec![qr(1, 1000, 1_000_000_000, 2_000_000_000)];
        let model = EnergyModel::opteron_8387();
        let e = energy_by_tag(&results, &model, 4);
        assert_eq!(e.len(), 1);
        assert!(e[0].1.cpu_j > 0.0);
        assert!(e[0].1.ht_j > 0.0);
    }

    #[test]
    fn render_series_aligns_rows() {
        let mut a = TimeSeries::new("a");
        let mut b = TimeSeries::new("b");
        a.push(SimTime::from_millis(0), 1.0);
        a.push(SimTime::from_millis(100), 2.0);
        b.push(SimTime::from_millis(0), 3.0);
        b.push(SimTime::from_millis(100), 4.0);
        let t = render_series("demo", &[&a, &b]);
        assert_eq!(t.n_rows(), 2);
        let csv = t.to_csv();
        assert!(csv.starts_with("time_s,a,b"));
    }

    #[test]
    fn render_transitions_rows() {
        let events = vec![TransitionEvent {
            at: SimTime::from_millis(50),
            label: "t1-Overload-t5".into(),
            state: prt_petrinet::StateKind::Overload,
            action: prt_petrinet::AllocAction::Allocate,
            u: 99,
            cpu_load_pct: 99.0,
            nalloc: 4,
        }];
        let t = render_transitions("fig7", &events);
        assert_eq!(t.n_rows(), 1);
        assert!(t.render().contains("t1-Overload-t5"));
    }
}
