//! # emca-harness — experiment harness for the ICDE'18 reproduction
//!
//! Glues the whole stack together: builds a simulated Opteron machine,
//! kernel, engine, clients and (optionally) the elastic mechanism from a
//! declarative [`RunConfig`], runs the workload to completion, and
//! returns every metric the paper's figures plot ([`RunOutput`]).
//!
//! The experiment surface on top of the runner:
//!
//! - [`ExperimentSpec`] — the typed configuration of an invocation
//!   (scenario, flavor, policy, scale, …), with `Display`/`FromStr`
//!   round-tripping and [`config::from_env`] as the single place the
//!   documented `EMCA_*` fallbacks are parsed;
//! - [`Scenario`] / [`ScenarioRegistry`] — every figure/table of the
//!   paper as a named unit (setup + sweep + declared CSV schema) that
//!   the `emca` CLI lists and runs; user scenarios register the same
//!   way;
//! - [`serve`] — the serving layer (`emca serve_*`): an open-loop load
//!   generator ([`ArrivalSchedule`]), an [`AdmissionPolicy`] front door
//!   and a dispatcher running admitted queries on either backend.

pub mod backend;
pub mod churn;
pub mod config;
pub mod handcoded_runner;
pub mod report;
pub mod runner;
pub mod runner_threads;
pub mod scenario;
pub mod serve;
pub mod spec;
pub mod tenants;
pub mod timing;

pub use backend::Backend;
pub use churn::{ChurnPlan, ChurnSpec, ChurnTenant};
pub use config::{Alloc, PolicyFactory, RunConfig, Warmup};
pub use handcoded_runner::{run_handcoded, HandcodedOutput};
pub use runner::{run, run_all_allocs, RunOutput};
pub use scenario::{
    validate_csv, FnScenario, Scenario, ScenarioError, ScenarioRegistry, ALL_SCENARIO_KEYS,
};
pub use serve::{
    build_admission, run_serve, AcceptAll, AdmissionDecision, AdmissionPolicy, Arrival,
    ArrivalSchedule, ConcurrencyLimit, RequestOutcome, RequestRecord, RetryPolicy, ServeConfig,
    ServeOutput,
};
pub use spec::{AdmissionSpec, ArrivalSpec, ExperimentSpec, SpecError, TenantSpec};
pub use tenants::{
    run_tenants, MultiTenantConfig, MultiTenantOutput, TenantOutput, TenantRunConfig,
};
pub use timing::{
    enforce_wall_budget, run_deadline_from_env, wall_budget_from_env, BudgetExceeded, RunAborted,
    WallTimer,
};

use std::path::PathBuf;

/// Resolves `results/<name>` relative to the workspace root (so figure
/// binaries can be run from anywhere inside the repo).
pub fn results_path(name: &str) -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.join("results").join(name)
}
