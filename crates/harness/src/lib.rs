//! # emca-harness — experiment harness for the ICDE'18 reproduction
//!
//! Glues the whole stack together: builds a simulated Opteron machine,
//! kernel, engine, clients and (optionally) the elastic mechanism from a
//! declarative [`RunConfig`], runs the workload to completion, and
//! returns every metric the paper's figures plot ([`RunOutput`]).
//!
//! The figure/table binaries in `emca-bench` are thin wrappers over this
//! crate: one sweep + one render each.

pub mod config;
pub mod handcoded_runner;
pub mod report;
pub mod runner;

pub use config::{Alloc, RunConfig, Warmup};
pub use handcoded_runner::{run_handcoded, HandcodedOutput};
pub use runner::{run, run_all_allocs, RunOutput};

use std::path::PathBuf;

/// Resolves `results/<name>` relative to the workspace root (so figure
/// binaries can be run from anywhere inside the repo).
pub fn results_path(name: &str) -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.join("results").join(name)
}
