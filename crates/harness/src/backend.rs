//! Execution backend selection.
//!
//! The harness can drive a run on two backends sharing one dataflow
//! engine model:
//!
//! - [`Backend::Sim`] — the deterministic discrete-event simulation:
//!   workers are simulated OS threads on the modelled Opteron, time is
//!   [`emca_metrics::SimTime`], and every run is exactly reproducible
//!   (the fidelity twin; committed CSVs come from this backend).
//! - [`Backend::Threads`] — real OS threads: the same plans, the same
//!   partitioning and lineage, but tasks execute on dedicated worker
//!   threads with per-worker deques and work stealing, and the elastic
//!   mechanism actuates a real thread pool (grow/shrink = unpark/park).
//!   Timestamps are wall-clock nanoseconds mapped onto `SimTime`, so
//!   every downstream metric works unchanged but is *not* deterministic.
//!
//! Selected per run via `ExperimentSpec` (`backend=threads`), the
//! `EMCA_BACKEND` environment variable, or the CLI flag
//! `emca run <scenario> --backend threads`.

use std::fmt;
use std::str::FromStr;

/// Which executor carries out the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// Deterministic single-threaded discrete-event simulation.
    #[default]
    Sim,
    /// Real-parallel execution on dedicated OS threads.
    Threads,
}

impl Backend {
    /// Canonical lowercase name (spec / CLI / env spelling).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Threads => "threads",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(Backend::Sim),
            "threads" => Ok(Backend::Threads),
            other => Err(format!("unknown backend '{other}' (expected sim|threads)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in [Backend::Sim, Backend::Threads] {
            assert_eq!(b.name().parse::<Backend>(), Ok(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert!("simulated".parse::<Backend>().is_err());
    }

    #[test]
    fn default_is_sim() {
        assert_eq!(Backend::default(), Backend::Sim);
    }
}
