//! `emca serve` — the serving layer: an open-loop load generator, an
//! admission controller, and a dispatcher running admitted queries on
//! either backend.
//!
//! The closed-loop runners ([`crate::runner`], [`crate::runner_threads`])
//! reproduce the paper's experiments: N clients that always have exactly
//! one query outstanding, so offered load is capped by N and the system
//! can never be pushed past saturation. A serving front door removes
//! that cap: requests arrive on their own schedule — Poisson or
//! trace-driven replay, materialised up front from a pinned seed
//! ([`ArrivalSchedule`]) — an [`AdmissionPolicy`] rules accept / queue /
//! shed per arrival, and the dispatcher runs admitted queries on the
//! simulated or real-thread engine. The elastic mechanism sees the
//! admission backlog as demand
//! ([`ElasticMechanism::note_queue_depth`] /
//! [`PoolController::note_queue_depth`]), so cores move between keeping
//! the queue drained and executing admitted queries.
//!
//! Latency accounting is open-loop standard: a request's latency runs
//! from its *scheduled arrival* to completion, so waiting — in the
//! admission queue or inside the engine — is part of the number. A
//! dispatched request still running when the observation window closes
//! counts as `+inf`; an overloaded, unprotected system therefore
//! reports an infinite p99, which is exactly the failure mode admission
//! control exists to bound. Requests shed at the gate or timed out in
//! the queue have no latency (they never ran); they show up in the shed
//! counters and as lost goodput instead.
//!
//! Failures are first-class: an armed fault plan (`faults=` on the
//! spec) can kill or stall workers and poison queries mid-run. A
//! request whose attempt dies with a *retryable* error (worker death)
//! is resubmitted under the [`RetryPolicy`] — deterministic jittered
//! exponential backoff, bypassing admission, bounded by
//! `max_attempts` and the per-request deadline — while poisoned
//! queries fail immediately ([`RequestOutcome::Failed`], never aliased
//! to a shed or an unfinished request). The per-request deadline runs
//! from *scheduled arrival* and covers every attempt, so a drain at
//! least as long as the deadline guarantees every dispatched request
//! resolves inside the window.

use crate::backend::Backend;
use crate::config::{Alloc, RunConfig};
use crate::runner::{build_mechanism, build_sim_stack, SimStack};
use crate::runner_threads::{capacity, load_pct, pool_cfg, sparse_order, wall_now, POLL};
use crate::spec::{AdmissionSpec, ArrivalSpec};
use elastic_core::{ElasticMechanism, PoolController, TransitionEvent};
use emca_metrics::{stats, SimDuration, SimTime, TimeSeries};
use os_sim::{GroupId, Kernel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use volcano_db::client::{ClientBody, SharedLog, Workload};
use volcano_db::exec::engine::Engine;
use volcano_db::exec::{BaseData, EngineStats, ParEngine, ParEngineConfig};
use volcano_db::tpch::{build_query, QuerySpec, TpchData};

// ---------------------------------------------------------------------------
// Open-loop load generation
// ---------------------------------------------------------------------------

/// One scheduled request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arrival {
    /// Offset from serving start.
    pub at: SimDuration,
    /// The query this request runs.
    pub spec: QuerySpec,
}

/// A fully materialised arrival schedule. Built once, before the run
/// starts — the generator never consults the wall clock or the backend,
/// so the same `(λ, horizon, seed)` triple yields the same
/// byte-for-byte schedule ([`ArrivalSchedule::render`]) on every run
/// and on both backends.
#[derive(Clone, Debug)]
pub struct ArrivalSchedule {
    /// Arrivals in non-decreasing `at` order, all before `horizon`.
    pub arrivals: Vec<Arrival>,
    /// The offered-load window.
    pub horizon: SimDuration,
}

impl ArrivalSchedule {
    /// A Poisson process at `lambda` requests/s over `horizon`:
    /// inter-arrival gaps are `-ln(1-u)/λ` draws from a seeded
    /// [`StdRng`]. Every request runs the Q6 microbenchmark (use a
    /// trace for mixed queries).
    pub fn poisson(lambda: f64, horizon: SimDuration, seed: u64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "poisson arrival rate must be positive, got {lambda}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let end = horizon.as_secs_f64();
        let mut arrivals = Vec::new();
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.random_range(0.0..1.0);
            t += -(1.0 - u).ln() / lambda;
            if t >= end {
                break;
            }
            arrivals.push(Arrival {
                at: SimDuration::from_secs_f64(t),
                spec: QuerySpec::Q6 { variant: 0 },
            });
        }
        ArrivalSchedule { arrivals, horizon }
    }

    /// Replays a trace file: one request per line, `arrival_ms[,query]`
    /// with `#` comments; `query` is `q6` (default) or a TPC-H number
    /// (`3` / `q3`). Timestamps must be non-decreasing — replay
    /// preserves the recorded order exactly.
    pub fn from_trace(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read trace {}: {e}", path.display()))?;
        Self::parse_trace(&text).map_err(|e| format!("trace {}: {e}", path.display()))
    }

    /// [`ArrivalSchedule::from_trace`] on in-memory text.
    pub fn parse_trace(text: &str) -> Result<Self, String> {
        let mut arrivals: Vec<Arrival> = Vec::new();
        let mut last = SimDuration::ZERO;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let mut fields = line.split(',');
            let ms_text = fields.next().unwrap_or("").trim();
            let ms: f64 = ms_text
                .parse()
                .map_err(|_| format!("line {lineno}: arrival_ms {ms_text:?} is not a number"))?;
            if !ms.is_finite() || ms < 0.0 {
                return Err(format!(
                    "line {lineno}: arrival_ms must be finite and non-negative, got {ms_text}"
                ));
            }
            let at = SimDuration::from_secs_f64(ms / 1000.0);
            if at < last {
                return Err(format!(
                    "line {lineno}: arrivals must be non-decreasing ({ms}ms after {:.3}ms)",
                    last.as_millis_f64()
                ));
            }
            let spec = match fields.next().map(str::trim) {
                None | Some("") | Some("q6") => QuerySpec::Q6 { variant: 0 },
                Some(q) => {
                    let number: u8 = q
                        .strip_prefix('q')
                        .unwrap_or(q)
                        .parse()
                        .ok()
                        .filter(|n| (1..=22).contains(n))
                        .ok_or_else(|| {
                            format!("line {lineno}: query {q:?} is not q6 or a TPC-H number 1..22")
                        })?;
                    QuerySpec::Tpch { number, variant: 0 }
                }
            };
            if fields.next().is_some() {
                return Err(format!(
                    "line {lineno}: expected arrival_ms[,query], got {line:?}"
                ));
            }
            last = at;
            arrivals.push(Arrival { at, spec });
        }
        if arrivals.is_empty() {
            return Err("no arrivals".into());
        }
        Ok(ArrivalSchedule {
            horizon: last + SimDuration::from_nanos(1),
            arrivals,
        })
    }

    /// Materialises the schedule an [`ArrivalSpec`] describes;
    /// `horizon` and `seed` apply to the Poisson form only (a trace
    /// carries its own timestamps).
    pub fn from_spec(
        arrival: &ArrivalSpec,
        horizon: SimDuration,
        seed: u64,
    ) -> Result<Self, String> {
        match arrival {
            ArrivalSpec::Poisson { lambda } => Ok(Self::poisson(*lambda, horizon, seed)),
            ArrivalSpec::Trace { path } => Self::from_trace(path),
        }
    }

    /// Canonical rendering, one `arrival_ns,query_tag` line per request
    /// — the byte-identity witness the determinism tests compare.
    pub fn render(&self) -> String {
        self.arrivals
            .iter()
            .map(|a| format!("{},{}\n", a.at.as_nanos(), a.spec.tag()))
            .collect()
    }

    /// Offered load in requests/s.
    pub fn offered_qps(&self) -> f64 {
        let secs = self.horizon.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.arrivals.len() as f64 / secs
        }
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// The front door's verdict on a newly-arrived request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Dispatch now.
    Accept,
    /// Park in the FIFO queue.
    Queue,
    /// Refuse at the gate.
    Shed,
}

/// Decides what happens to each arriving request. The driver owns the
/// FIFO queue and the clock; a policy only judges counts, which keeps
/// every policy backend-agnostic by construction.
pub trait AdmissionPolicy {
    /// Short name for reports.
    fn name(&self) -> &'static str;
    /// Verdict for a new arrival, given current inflight and queued
    /// request counts.
    fn on_arrival(&mut self, inflight: usize, queued: usize) -> AdmissionDecision;
    /// Whether the queue head may dispatch with `inflight` running.
    fn may_dispatch(&mut self, inflight: usize) -> bool;
    /// How long a request may wait in the queue before being shed;
    /// `None` disables queue timeouts.
    fn queue_timeout(&self) -> Option<SimDuration> {
        None
    }
}

/// No admission control: every arrival dispatches immediately — the
/// open-loop equivalent of the paper's unprotected baseline.
pub struct AcceptAll;

impl AdmissionPolicy for AcceptAll {
    fn name(&self) -> &'static str {
        "none"
    }

    fn on_arrival(&mut self, _inflight: usize, _queued: usize) -> AdmissionDecision {
        AdmissionDecision::Accept
    }

    fn may_dispatch(&mut self, _inflight: usize) -> bool {
        true
    }
}

/// Concurrency limiter with a deadline-aware FIFO queue: at most
/// `max_inflight` admitted queries run at once; past that, arrivals
/// queue (up to `queue_cap`, beyond which they shed at the gate), and a
/// queued request that waits longer than `timeout` is shed — it can no
/// longer meet its SLA, so running it would only steal capacity from
/// requests that still can.
pub struct ConcurrencyLimit {
    /// Admitted queries allowed to run concurrently.
    pub max_inflight: usize,
    /// Queue bound; `None` = unbounded (timeouts still shed).
    pub queue_cap: Option<usize>,
    /// Longest tolerated queue wait.
    pub timeout: SimDuration,
}

impl AdmissionPolicy for ConcurrencyLimit {
    fn name(&self) -> &'static str {
        "limit"
    }

    fn on_arrival(&mut self, inflight: usize, queued: usize) -> AdmissionDecision {
        if inflight < self.max_inflight && queued == 0 {
            AdmissionDecision::Accept
        } else if self.queue_cap.is_some_and(|cap| queued >= cap) {
            AdmissionDecision::Shed
        } else {
            AdmissionDecision::Queue
        }
    }

    fn may_dispatch(&mut self, inflight: usize) -> bool {
        inflight < self.max_inflight
    }

    fn queue_timeout(&self) -> Option<SimDuration> {
        Some(self.timeout)
    }
}

/// Builds the policy an [`AdmissionSpec`] names. The queue deadline is
/// *half* the SLA: a request that already burned half its latency
/// budget waiting has no room left to execute inside it, so shedding
/// then (instead of at the full SLA) is what keeps the completions that
/// do dispatch on the right side of the deadline.
pub fn build_admission(spec: &AdmissionSpec, sla: SimDuration) -> Box<dyn AdmissionPolicy> {
    match spec {
        AdmissionSpec::None => Box::new(AcceptAll),
        AdmissionSpec::Limit {
            max_inflight,
            queue,
        } => Box::new(ConcurrencyLimit {
            max_inflight: *max_inflight as usize,
            queue_cap: queue.map(|q| q as usize),
            timeout: sla.mul_f64(0.5),
        }),
    }
}

// ---------------------------------------------------------------------------
// Requests and results
// ---------------------------------------------------------------------------

/// Retry policy for requests whose attempt dies inside the engine with
/// a *retryable* [`QueryError`](volcano_db::exec::QueryError) — a
/// worker death, where resubmitting can land on a survivor or a
/// watchdog respawn. Non-retryable errors (poisoned queries, internal
/// bugs) fail at once: the same input fails the same way again.
/// Resubmission bypasses admission — the request was admitted once and
/// keeps its slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first dispatch (≥ 1; `1` means no
    /// retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt; each further attempt doubles
    /// it. A ±25% jitter drawn from the run-seeded rng decorrelates
    /// retry bursts after a worker kill without costing run-to-run
    /// determinism.
    pub backoff: SimDuration,
}

impl RetryPolicy {
    /// Three attempts, 20ms base backoff — the chaos scenarios' shape.
    pub fn default_chaos() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: SimDuration::from_millis(20),
        }
    }

    /// How long to wait before attempt `next_attempt` (`2` = first
    /// retry). Deterministic in the rng state: exponential in the
    /// attempt number, jittered by a factor in `[0.75, 1.25)`.
    pub fn delay(&self, next_attempt: u32, rng: &mut StdRng) -> SimDuration {
        let doublings = next_attempt.saturating_sub(2).min(16);
        let base = self.backoff.as_secs_f64() * (1u64 << doublings) as f64;
        let jitter: f64 = rng.random_range(0.75..1.25);
        SimDuration::from_secs_f64(base * jitter)
    }
}

/// What finally happened to a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Still unresolved (never appears in a finished [`ServeOutput`]).
    Pending,
    /// Dispatched and completed inside the window.
    Completed,
    /// Refused at the gate (queue full / policy said no).
    ShedGate,
    /// Shed from the queue after waiting past the deadline.
    ShedTimeout,
    /// Dispatched but still running when the window closed.
    Unfinished,
    /// Dispatched and *failed*: the engine returned an error with
    /// retries exhausted (or non-retryable), or the per-request
    /// deadline expired before an attempt completed. Never aliased to
    /// [`RequestOutcome::Unfinished`] — a failed request carries its
    /// error.
    Failed,
}

/// Per-request bookkeeping.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Scheduled arrival (absolute).
    pub arrival: SimTime,
    /// The query.
    pub spec: QuerySpec,
    /// When the dispatcher handed it to the engine.
    pub dispatched: Option<SimTime>,
    /// When it completed (or failed for good).
    pub finished: Option<SimTime>,
    /// Terminal outcome.
    pub outcome: RequestOutcome,
    /// Engine submissions so far (0 = never dispatched; >1 = retried).
    pub attempts: u32,
    /// The rendered engine error that failed the request, if any.
    pub error: Option<String>,
}

impl RequestRecord {
    /// Open-loop latency in ms: scheduled arrival to completion; `+inf`
    /// for a dispatched request that never finished; `None` for shed
    /// and failed requests (they produced no answer — they count in the
    /// shed/failed columns, not in the latency distribution).
    pub fn latency_ms(&self) -> Option<f64> {
        match self.outcome {
            // A completed record always has `finished` set; `map`
            // instead of unwrapping keeps the accessor panic-free.
            RequestOutcome::Completed => {
                self.finished.map(|f| f.since(self.arrival).as_millis_f64())
            }
            RequestOutcome::Unfinished => Some(f64::INFINITY),
            _ => None,
        }
    }
}

/// One serving run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Engine/mechanism carrier: `flavor`, `alloc`, `scale`, `warmup`,
    /// `mech_guard`, `mech_interval`, `backend` and `sample_every` are
    /// honoured; `clients`, `workload` and `deadline` are not — the
    /// schedule and observation window replace them.
    pub base: RunConfig,
    /// When requests arrive and what they run.
    pub schedule: ArrivalSchedule,
    /// The front-door policy.
    pub admission: AdmissionSpec,
    /// Per-request SLA target: the goodput bar, and the admission
    /// queue's shed deadline.
    pub sla: SimDuration,
    /// Grace past the schedule horizon for in-flight work; whatever is
    /// still running after it counts as unfinished (`+inf` latency).
    pub drain: SimDuration,
    /// Retry policy for retryable engine failures (threads backend;
    /// the sim engine recovers worker kills internally — work is
    /// requeued, never lost — and its only surfaced error is a
    /// deterministically poisoned query, which a retry would poison
    /// again, so the sim path fails such requests at once). `None` =
    /// fail on the first error.
    pub retry: Option<RetryPolicy>,
    /// Per-request deadline measured from *scheduled arrival*,
    /// covering queueing, every attempt and every backoff: a request
    /// still unresolved past it fails (the engine may finish the
    /// abandoned work, but the answer no longer has a taker). Distinct
    /// from the run's wall budget — this bounds one request, not the
    /// run. `None` = no deadline; a dispatched request may run to the
    /// window edge and count as unfinished.
    pub request_deadline: Option<SimDuration>,
}

/// Everything measured by one serving run.
#[derive(Clone, Debug)]
pub struct ServeOutput {
    /// One record per scheduled request, in arrival order.
    pub records: Vec<RequestRecord>,
    /// Scheduled arrivals (= `records.len()`).
    pub offered: usize,
    /// The offered-load window the schedule spanned.
    pub horizon: SimDuration,
    /// The SLA the run was judged against.
    pub sla: SimDuration,
    /// Serving start to last resolution (or window close).
    pub wall: SimDuration,
    /// Engine CPU load (%).
    pub load_series: TimeSeries,
    /// Allocated cores / active workers over time.
    pub cores_series: TimeSeries,
    /// Admission-queue depth over time.
    pub queue_series: TimeSeries,
    /// Mechanism transition log (empty for the OS baseline).
    pub transitions: Vec<TransitionEvent>,
    /// Engine counters, including `engine_recoveries` / `mttr_ms()`
    /// when a fault plan was armed.
    pub engine: EngineStats,
}

impl ServeOutput {
    /// How many requests ended as `outcome`.
    pub fn count(&self, outcome: RequestOutcome) -> usize {
        self.records.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Latencies (ms) of every dispatched request; unfinished ones are
    /// `+inf`, shed ones are absent.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.records.iter().filter_map(|r| r.latency_ms()).collect()
    }

    /// The `q`-quantile of [`ServeOutput::latencies_ms`]; NaN when no
    /// request was dispatched.
    pub fn latency_percentile_ms(&self, q: f64) -> f64 {
        stats::percentile(&self.latencies_ms(), q).unwrap_or(f64::NAN)
    }

    /// Goodput: completions within the SLA per second of offered
    /// window — the serving-side "useful work" rate. Shed, late, and
    /// unfinished requests all subtract from it.
    pub fn goodput_qps(&self) -> f64 {
        let secs = self.horizon.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        let sla_ms = self.sla.as_millis_f64();
        let good = self
            .records
            .iter()
            .filter(|r| r.latency_ms().is_some_and(|l| l <= sla_ms))
            .count();
        good as f64 / secs
    }
}

// ---------------------------------------------------------------------------
// Dispatchers
// ---------------------------------------------------------------------------

/// Runs one serving experiment on the backend `cfg.base` names.
pub fn run_serve(cfg: &ServeConfig, data: &TpchData) -> ServeOutput {
    match cfg.base.backend {
        Backend::Sim => serve_sim(cfg, data),
        Backend::Threads => serve_threads(cfg, data),
    }
}

fn new_records(cfg: &ServeConfig, start: SimTime) -> Vec<RequestRecord> {
    cfg.schedule
        .arrivals
        .iter()
        .map(|a| RequestRecord {
            arrival: start + a.at,
            spec: a.spec,
            dispatched: None,
            finished: None,
            outcome: RequestOutcome::Pending,
            attempts: 0,
            error: None,
        })
        .collect()
}

/// Terminal sweep after the window closes: queued requests can no
/// longer meet anything (the horizon is over), in-flight ones did not
/// make the drain, and requests still waiting out a retry backoff
/// never got their next attempt.
fn close_window(
    records: &mut [RequestRecord],
    queue: &VecDeque<usize>,
    inflight_idx: impl Iterator<Item = usize>,
    retrying_idx: impl Iterator<Item = usize>,
) {
    for &i in queue {
        records[i].outcome = RequestOutcome::ShedTimeout;
    }
    for i in inflight_idx {
        records[i].outcome = RequestOutcome::Unfinished;
    }
    for i in retrying_idx {
        records[i].outcome = RequestOutcome::Failed;
        if records[i].error.is_none() {
            records[i].error = Some("window closed mid-backoff".into());
        }
    }
    for r in records.iter_mut() {
        if r.outcome == RequestOutcome::Pending {
            r.outcome = RequestOutcome::ShedGate;
        }
    }
}

/// Spawns request `i` as a one-shot client session in the simulation.
fn dispatch_sim(
    i: usize,
    now: SimTime,
    records: &mut [RequestRecord],
    inflight: &mut Vec<(usize, SharedLog)>,
    kernel: &mut Kernel,
    engine: &Engine,
    group: GroupId,
) {
    let (body, log) = ClientBody::new(
        engine.clone(),
        Workload::Repeat {
            spec: records[i].spec,
            iterations: 1,
        },
        i,
        None,
    );
    kernel.spawn(format!("serve{i}"), group, None, Box::new(body));
    records[i].dispatched = Some(now);
    records[i].attempts += 1;
    inflight.push((i, log));
}

/// The simulated dispatcher: each admitted request becomes a one-query
/// client session spawned into the DBMS group mid-run; the mechanism
/// polls as in the closed-loop runner, with the admission-queue depth
/// fed in as extra demand.
fn serve_sim(cfg: &ServeConfig, data: &TpchData) -> ServeOutput {
    let SimStack {
        mut kernel,
        group,
        engine,
    } = build_sim_stack(&cfg.base, data);
    let mut mechanism: Option<ElasticMechanism> =
        build_mechanism(&cfg.base, &mut kernel, group, &engine);
    let mut admission = build_admission(&cfg.admission, cfg.sla);

    let start = kernel.now();
    let cutoff = start + cfg.schedule.horizon + cfg.drain;
    let mut records = new_records(cfg, start);
    let n = records.len();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut inflight: Vec<(usize, SharedLog)> = Vec::new();
    let mut next_arrival = 0usize;

    let mut load_sampler = os_sim::LoadSampler::new(&kernel, group);
    let mut load_series = TimeSeries::new("cpu_load");
    let mut cores_series = TimeSeries::new("cores");
    let mut queue_series = TimeSeries::new("queue");
    let mut next_sample = start + cfg.base.sample_every;

    let mut finished_at = None;
    while kernel.now() < cutoff {
        let now = kernel.now();
        // Due arrivals meet the front door.
        while next_arrival < n && records[next_arrival].arrival <= now {
            let i = next_arrival;
            next_arrival += 1;
            match admission.on_arrival(inflight.len(), queue.len()) {
                AdmissionDecision::Accept => dispatch_sim(
                    i,
                    now,
                    &mut records,
                    &mut inflight,
                    &mut kernel,
                    &engine,
                    group,
                ),
                AdmissionDecision::Queue => queue.push_back(i),
                AdmissionDecision::Shed => records[i].outcome = RequestOutcome::ShedGate,
            }
        }
        // Deadline-aware queue: a head that waited past the SLA sheds.
        if let Some(timeout) = admission.queue_timeout() {
            while let Some(&i) = queue.front() {
                if now.since(records[i].arrival) > timeout {
                    queue.pop_front();
                    records[i].outcome = RequestOutcome::ShedTimeout;
                } else {
                    break;
                }
            }
        }
        // Freed slots pull from the queue head.
        while admission.may_dispatch(inflight.len()) {
            let Some(i) = queue.pop_front() else { break };
            dispatch_sim(
                i,
                now,
                &mut records,
                &mut inflight,
                &mut kernel,
                &engine,
                group,
            );
        }
        // Completions (one result or one error per one-shot session).
        // The sim engine's worker kills requeue the parked work
        // internally — no query is lost to them — so the only error a
        // session can surface is a deterministically poisoned query,
        // which fails outright (retrying would poison it again).
        let mut done: Vec<usize> = Vec::new();
        for (pos, (i, log)) in inflight.iter().enumerate() {
            let lb = log.borrow();
            if let Some(r) = lb.results.first() {
                records[*i].finished = Some(r.finished);
                records[*i].outcome = RequestOutcome::Completed;
                if let Some(m) = mechanism.as_mut() {
                    m.note_response(r.response());
                }
                done.push(pos);
            } else if let Some(e) = lb.errors.first() {
                records[*i].finished = Some(now);
                records[*i].outcome = RequestOutcome::Failed;
                records[*i].error = Some(e.clone());
                done.push(pos);
            }
        }
        for pos in done.into_iter().rev() {
            inflight.swap_remove(pos);
        }
        // Per-request deadline: abandon attempts that can no longer
        // answer in time (the session still burns simulated cycles —
        // the answer just has no taker).
        if let Some(dl) = cfg.request_deadline {
            let mut expired: Vec<usize> = Vec::new();
            for (pos, (i, _)) in inflight.iter().enumerate() {
                if now.since(records[*i].arrival) >= dl {
                    records[*i].finished = Some(now);
                    records[*i].outcome = RequestOutcome::Failed;
                    records[*i].error = Some(format!(
                        "request deadline ({:.0}ms) expired",
                        dl.as_millis_f64()
                    ));
                    expired.push(pos);
                }
            }
            for pos in expired.into_iter().rev() {
                inflight.swap_remove(pos);
            }
        }
        if next_arrival == n && queue.is_empty() && inflight.is_empty() {
            finished_at = Some(now);
            break;
        }
        kernel.run_tick();
        if let Some(m) = mechanism.as_mut() {
            m.note_queue_depth(queue.len() as u64);
            m.poll(&mut kernel);
        }
        if kernel.now() >= next_sample {
            let now = kernel.now();
            load_series.push(now, load_sampler.sample(&kernel).group_load_pct());
            cores_series.push(now, kernel.group_mask(group).count() as f64);
            queue_series.push(now, queue.len() as f64);
            next_sample = now + cfg.base.sample_every;
        }
    }
    close_window(
        &mut records,
        &queue,
        inflight.iter().map(|(i, _)| *i),
        std::iter::empty(),
    );

    ServeOutput {
        offered: n,
        horizon: cfg.schedule.horizon,
        sla: cfg.sla,
        wall: finished_at.unwrap_or(cutoff).since(start),
        records,
        load_series,
        cores_series,
        queue_series,
        transitions: mechanism.map(|m| m.events).unwrap_or_default(),
        engine: engine.stats(),
    }
}

/// The real-thread dispatcher: admitted requests are submitted to the
/// [`ParEngine`] task queue and polled for completion; the
/// [`PoolController`] parks/unparks workers, with the admission-queue
/// depth fed in as extra demand. [`Alloc::OsAll`] is the unmanaged
/// baseline — every worker always active, no controller.
fn serve_threads(cfg: &ServeConfig, data: &TpchData) -> ServeOutput {
    let width = capacity();
    let os_baseline = cfg.base.alloc == Alloc::OsAll;
    let engine = Arc::new(ParEngine::new(
        ParEngineConfig {
            n_workers: width,
            initial_active: if os_baseline { width } else { 1 },
            ..ParEngineConfig::default()
        },
        Arc::new(BaseData::from_tpch(data)),
    ));
    if cfg.base.alloc == Alloc::Sparse {
        engine.set_wake_order(&sparse_order(width));
    }
    if let Some(plan) = &cfg.base.faults {
        engine.arm_faults(plan, cfg.base.scale.seed);
    }
    let mut controller =
        (!os_baseline).then(|| PoolController::new(pool_cfg(width as u32, cfg.base.mech_interval)));
    let mut admission = build_admission(&cfg.admission, cfg.sla);
    // The backoff jitter rng is seeded from the run seed: the *choice*
    // of delays is reproducible even though thread timing is not.
    let mut retry_rng = StdRng::seed_from_u64(cfg.base.scale.seed ^ 0x7E7A_11CE);

    let t0 = Instant::now();
    let start = SimTime::ZERO;
    let cutoff = start + cfg.schedule.horizon + cfg.drain;
    let mut records = new_records(cfg, start);
    let n = records.len();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut inflight: Vec<(usize, volcano_db::exec::task::QueryId)> = Vec::new();
    // Requests waiting out a retry backoff: (resubmit at, index).
    let mut retry_at: Vec<(SimTime, usize)> = Vec::new();
    let mut next_arrival = 0usize;

    let mut load_series = TimeSeries::new("cpu_load");
    let mut cores_series = TimeSeries::new("cores");
    let mut queue_series = TimeSeries::new("queue");
    let mut next_control = SimTime::ZERO;
    let mut next_sample = SimTime::ZERO;
    let mut ctl_busy = 0u64;
    let mut ctl_at = SimTime::ZERO;
    let mut sample_busy = 0u64;
    let mut sample_at = SimTime::ZERO;

    let mut finished_at = None;
    loop {
        std::thread::sleep(POLL);
        let now = wall_now(t0);
        if now >= cutoff {
            break;
        }
        // Due retries resubmit first: they were admitted already and
        // re-enter ahead of the gate.
        let mut due: Vec<usize> = Vec::new();
        for (pos, (at, _)) in retry_at.iter().enumerate() {
            if *at <= now {
                due.push(pos);
            }
        }
        for pos in due.into_iter().rev() {
            let (_, i) = retry_at.swap_remove(pos);
            let qid = engine.submit(
                Arc::new(build_query(&records[i].spec)),
                records[i].spec.tag(),
            );
            records[i].attempts += 1;
            inflight.push((i, qid));
        }
        while next_arrival < n && records[next_arrival].arrival <= now {
            let i = next_arrival;
            next_arrival += 1;
            match admission.on_arrival(inflight.len(), queue.len()) {
                AdmissionDecision::Accept => {
                    let qid = engine.submit(
                        Arc::new(build_query(&records[i].spec)),
                        records[i].spec.tag(),
                    );
                    records[i].dispatched = Some(now);
                    records[i].attempts += 1;
                    inflight.push((i, qid));
                }
                AdmissionDecision::Queue => queue.push_back(i),
                AdmissionDecision::Shed => records[i].outcome = RequestOutcome::ShedGate,
            }
        }
        if let Some(timeout) = admission.queue_timeout() {
            while let Some(&i) = queue.front() {
                if now.since(records[i].arrival) > timeout {
                    queue.pop_front();
                    records[i].outcome = RequestOutcome::ShedTimeout;
                } else {
                    break;
                }
            }
        }
        while admission.may_dispatch(inflight.len()) {
            let Some(i) = queue.pop_front() else { break };
            let qid = engine.submit(
                Arc::new(build_query(&records[i].spec)),
                records[i].spec.tag(),
            );
            records[i].dispatched = Some(now);
            records[i].attempts += 1;
            inflight.push((i, qid));
        }
        let mut done: Vec<usize> = Vec::new();
        for (pos, (i, qid)) in inflight.iter().enumerate() {
            match engine.try_result(*qid) {
                Some(Ok(_)) => {
                    records[*i].finished = Some(now);
                    records[*i].outcome = RequestOutcome::Completed;
                    done.push(pos);
                }
                Some(Err(e)) => {
                    // A degraded pool fails the request, not the run.
                    // Retryable deaths go back through the engine after
                    // a backoff (another worker — possibly a watchdog
                    // respawn — can run them); anything else fails the
                    // request here and now, explicitly, so it can never
                    // masquerade as shed or unfinished.
                    done.push(pos);
                    match cfg.retry {
                        Some(p) if e.is_retryable() && records[*i].attempts < p.max_attempts => {
                            let wait = p.delay(records[*i].attempts + 1, &mut retry_rng);
                            retry_at.push((now + wait, *i));
                        }
                        _ => {
                            records[*i].finished = Some(now);
                            records[*i].outcome = RequestOutcome::Failed;
                            records[*i].error = Some(e.to_string());
                        }
                    }
                }
                None => {}
            }
        }
        for pos in done.into_iter().rev() {
            inflight.swap_remove(pos);
        }
        // Per-request deadline: fail attempts (in flight or waiting out
        // a backoff) that can no longer answer in time.
        if let Some(dl) = cfg.request_deadline {
            let mut expired: Vec<usize> = Vec::new();
            for (pos, (i, _)) in inflight.iter().enumerate() {
                if now.since(records[*i].arrival) >= dl {
                    records[*i].finished = Some(now);
                    records[*i].outcome = RequestOutcome::Failed;
                    records[*i].error = Some(format!(
                        "request deadline ({:.0}ms) expired",
                        dl.as_millis_f64()
                    ));
                    expired.push(pos);
                }
            }
            for pos in expired.into_iter().rev() {
                inflight.swap_remove(pos);
            }
            retry_at.retain(|(_, i)| {
                if now.since(records[*i].arrival) >= dl {
                    records[*i].finished = Some(now);
                    records[*i].outcome = RequestOutcome::Failed;
                    records[*i].error = Some(format!(
                        "request deadline ({:.0}ms) expired mid-backoff",
                        dl.as_millis_f64()
                    ));
                    false
                } else {
                    true
                }
            });
        }
        if next_arrival == n && queue.is_empty() && inflight.is_empty() && retry_at.is_empty() {
            finished_at = Some(now);
            break;
        }
        if let Some(c) = controller.as_mut() {
            if now >= next_control {
                let busy = engine.busy_ns();
                let u = load_pct(
                    busy - ctl_busy,
                    engine.active(),
                    now.since(ctl_at).as_nanos(),
                );
                ctl_busy = busy;
                ctl_at = now;
                // Dead, not-yet-recovered workers are not allocatable.
                c.note_capacity(engine.live_workers() as u32);
                c.note_queue_depth(queue.len() as u64);
                let d = c.observe(now, u);
                engine.set_active(d.nalloc as usize);
                next_control = now + c.interval();
            }
        }
        if now >= next_sample {
            let busy = engine.busy_ns();
            let u = load_pct(
                busy - sample_busy,
                engine.active(),
                now.since(sample_at).as_nanos(),
            );
            sample_busy = busy;
            sample_at = now;
            load_series.push(now, u);
            cores_series.push(now, engine.active() as f64);
            queue_series.push(now, queue.len() as f64);
            next_sample = now + cfg.base.sample_every;
        }
    }
    close_window(
        &mut records,
        &queue,
        inflight.iter().map(|(i, _)| *i),
        retry_at.iter().map(|(_, i)| *i),
    );

    ServeOutput {
        offered: n,
        horizon: cfg.schedule.horizon,
        sla: cfg.sla,
        wall: finished_at.unwrap_or(cutoff).since(start),
        records,
        load_series,
        cores_series,
        queue_series,
        transitions: controller.map(|c| c.events).unwrap_or_default(),
        engine: engine.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_db::tpch::TpchScale;

    #[test]
    fn poisson_schedule_is_pinned_to_the_seed() {
        let a = ArrivalSchedule::poisson(200.0, SimDuration::from_secs(2), 7);
        let b = ArrivalSchedule::poisson(200.0, SimDuration::from_secs(2), 7);
        assert!(!a.arrivals.is_empty());
        assert_eq!(a.render(), b.render(), "same seed must be byte-identical");
        let c = ArrivalSchedule::poisson(200.0, SimDuration::from_secs(2), 8);
        assert_ne!(a.render(), c.render(), "seeds must matter");
        assert!(a
            .arrivals
            .windows(2)
            .all(|w| w[0].at <= w[1].at && w[1].at < a.horizon));
    }

    #[test]
    fn poisson_interarrival_mean_tracks_the_rate() {
        // 10^5 gaps at λ=1000/s: the sample mean must land within 1% of
        // 1/λ (≈3σ for this n; the pinned seed makes it deterministic).
        let lambda = 1000.0;
        let sched = ArrivalSchedule::poisson(lambda, SimDuration::from_secs(120), 42);
        assert!(sched.arrivals.len() > 100_000, "need ≥1e5 gaps");
        let mut prev = 0.0;
        let gaps: Vec<f64> = sched.arrivals[..100_000]
            .iter()
            .map(|a| {
                let t = a.at.as_secs_f64();
                let g = t - prev;
                prev = t;
                g
            })
            .collect();
        let mean = stats::mean(&gaps).unwrap();
        let expect = 1.0 / lambda;
        assert!(
            (mean - expect).abs() / expect < 0.01,
            "inter-arrival mean {mean:.6}s should be within 1% of {expect:.6}s"
        );
    }

    #[test]
    fn trace_replay_preserves_order_and_timestamps() {
        let sched = ArrivalSchedule::parse_trace(
            "# demo trace\n0\n1.5, q3\n2.5 # trailing comment\n10,6\n",
        )
        .unwrap();
        assert_eq!(sched.arrivals.len(), 4);
        assert_eq!(sched.arrivals[1].at, SimDuration::from_micros(1500));
        assert_eq!(
            sched.arrivals[1].spec,
            QuerySpec::Tpch {
                number: 3,
                variant: 0
            }
        );
        assert_eq!(
            sched.arrivals[3].spec,
            QuerySpec::Tpch {
                number: 6,
                variant: 0
            }
        );
        assert!(sched.arrivals.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(sched.horizon > sched.arrivals[3].at);

        for bad in ["", "5\n3\n", "1,q99\n", "x\n", "1,6,6\n", "-1\n"] {
            assert!(
                ArrivalSchedule::parse_trace(bad).is_err(),
                "trace {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn concurrency_limit_gates_queues_and_times_out() {
        let mut p = ConcurrencyLimit {
            max_inflight: 2,
            queue_cap: Some(1),
            timeout: SimDuration::from_millis(10),
        };
        assert_eq!(p.on_arrival(0, 0), AdmissionDecision::Accept);
        assert_eq!(p.on_arrival(2, 0), AdmissionDecision::Queue);
        assert_eq!(p.on_arrival(2, 1), AdmissionDecision::Shed);
        // A non-empty queue means new arrivals go behind it even when a
        // slot is free (FIFO fairness).
        assert_eq!(p.on_arrival(1, 1), AdmissionDecision::Shed);
        assert!(p.may_dispatch(1));
        assert!(!p.may_dispatch(2));
        assert_eq!(p.queue_timeout(), Some(SimDuration::from_millis(10)));
        assert_eq!(AcceptAll.on_arrival(64, 64), AdmissionDecision::Accept);
    }

    #[test]
    fn serve_sim_accounts_for_every_request() {
        let data = TpchData::generate(TpchScale::test_tiny());
        let base = RunConfig::new(
            Alloc::Adaptive,
            0,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 0,
            },
        )
        .with_scale(data.scale);
        let cfg = ServeConfig {
            base,
            schedule: ArrivalSchedule::poisson(60.0, SimDuration::from_millis(400), 42),
            admission: AdmissionSpec::Limit {
                max_inflight: 4,
                queue: Some(8),
            },
            sla: SimDuration::from_millis(200),
            drain: SimDuration::from_millis(400),
            retry: None,
            request_deadline: None,
        };
        let out = run_serve(&cfg, &data);
        assert_eq!(out.offered, cfg.schedule.arrivals.len());
        let resolved = out.count(RequestOutcome::Completed)
            + out.count(RequestOutcome::ShedGate)
            + out.count(RequestOutcome::ShedTimeout)
            + out.count(RequestOutcome::Unfinished)
            + out.count(RequestOutcome::Failed);
        assert_eq!(resolved, out.offered, "every request needs an outcome");
        assert_eq!(out.count(RequestOutcome::Failed), 0, "no faults armed");
        assert_eq!(out.count(RequestOutcome::Pending), 0);
        assert!(out.count(RequestOutcome::Completed) > 0);
        assert!(out.goodput_qps() > 0.0);
        // Completed latencies are measured from scheduled arrival.
        for r in &out.records {
            if let Some(l) = r.latency_ms() {
                assert!(l > 0.0);
            }
        }
    }

    #[test]
    fn serve_sim_runs_the_os_baseline_without_a_mechanism() {
        let data = TpchData::generate(TpchScale::test_tiny());
        let base = RunConfig::new(
            Alloc::OsAll,
            0,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 0,
            },
        )
        .with_scale(data.scale);
        let cfg = ServeConfig {
            base,
            schedule: ArrivalSchedule::poisson(30.0, SimDuration::from_millis(300), 11),
            admission: AdmissionSpec::None,
            sla: SimDuration::from_millis(500),
            drain: SimDuration::from_millis(500),
            retry: None,
            request_deadline: None,
        };
        let out = run_serve(&cfg, &data);
        assert!(out.transitions.is_empty(), "baseline has no mechanism");
        assert_eq!(out.count(RequestOutcome::ShedGate), 0);
        assert_eq!(out.count(RequestOutcome::ShedTimeout), 0);
        assert!(out.count(RequestOutcome::Completed) > 0);
    }

    #[test]
    fn retry_backoff_is_deterministic_and_exponential() {
        let p = RetryPolicy {
            max_attempts: 4,
            backoff: SimDuration::from_millis(20),
        };
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let da: Vec<SimDuration> = (2..=4).map(|k| p.delay(k, &mut a)).collect();
        let db: Vec<SimDuration> = (2..=4).map(|k| p.delay(k, &mut b)).collect();
        assert_eq!(da, db, "same rng state must yield the same delays");
        for (k, d) in da.iter().enumerate() {
            // Attempt k+2 backs off around backoff * 2^k, jittered ±25%.
            let nominal = 20.0 * (1u64 << k) as f64;
            let ms = d.as_millis_f64();
            assert!(
                ms >= nominal * 0.75 && ms < nominal * 1.25,
                "delay {ms}ms outside the jitter band around {nominal}ms"
            );
        }
    }

    #[test]
    fn serve_sim_fails_poisoned_queries_and_stays_deterministic() {
        use volcano_db::exec::FaultPlan;
        let data = TpchData::generate(TpchScale::test_tiny());
        let run_once = |data: &TpchData| {
            let base = RunConfig::new(
                Alloc::Adaptive,
                0,
                Workload::Repeat {
                    spec: QuerySpec::Q6 { variant: 0 },
                    iterations: 0,
                },
            )
            .with_scale(data.scale)
            .with_faults(FaultPlan::default().with_badquery(0.5));
            let cfg = ServeConfig {
                base,
                schedule: ArrivalSchedule::poisson(60.0, SimDuration::from_millis(400), 42),
                admission: AdmissionSpec::None,
                sla: SimDuration::from_millis(200),
                drain: SimDuration::from_millis(400),
                retry: None,
                request_deadline: None,
            };
            run_serve(&cfg, data)
        };
        let a = run_once(&data);
        assert!(
            a.count(RequestOutcome::Failed) > 0,
            "rate=0.5 must poison some queries"
        );
        assert!(a.count(RequestOutcome::Completed) > 0);
        let resolved = a.count(RequestOutcome::Completed)
            + a.count(RequestOutcome::ShedGate)
            + a.count(RequestOutcome::ShedTimeout)
            + a.count(RequestOutcome::Unfinished)
            + a.count(RequestOutcome::Failed);
        assert_eq!(resolved, a.offered, "failures must not break accounting");
        for r in &a.records {
            if r.outcome == RequestOutcome::Failed {
                assert!(
                    r.error.as_deref().is_some_and(|e| e.contains("poisoned")),
                    "a failed request must carry its error, got {:?}",
                    r.error
                );
                assert!(r.latency_ms().is_none(), "failed ≠ a latency sample");
            }
        }
        // Same seed + same plan ⇒ byte-identical outcome sequence.
        let b = run_once(&data);
        let digest = |o: &ServeOutput| {
            o.records
                .iter()
                .map(|r| (r.outcome, r.attempts, r.error.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(digest(&a), digest(&b), "recovery must stay deterministic");
    }

    #[test]
    fn request_deadline_resolves_every_dispatched_request() {
        // An impossibly tight deadline: every dispatched request fails
        // by its deadline, and because drain ≥ deadline none survive to
        // be counted Unfinished at the window edge.
        let data = TpchData::generate(TpchScale::test_tiny());
        let base = RunConfig::new(
            Alloc::Adaptive,
            0,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 0,
            },
        )
        .with_scale(data.scale);
        let cfg = ServeConfig {
            base,
            schedule: ArrivalSchedule::poisson(60.0, SimDuration::from_millis(300), 7),
            admission: AdmissionSpec::None,
            sla: SimDuration::from_millis(200),
            drain: SimDuration::from_millis(400),
            retry: None,
            request_deadline: Some(SimDuration::from_nanos(1)),
        };
        let out = run_serve(&cfg, &data);
        assert_eq!(out.count(RequestOutcome::Unfinished), 0);
        assert_eq!(out.count(RequestOutcome::Completed), 0);
        assert_eq!(out.count(RequestOutcome::Failed), out.offered);
        assert!(out
            .records
            .iter()
            .all(|r| r.error.as_deref().is_some_and(|e| e.contains("deadline"))));
    }
}
