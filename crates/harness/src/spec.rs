//! The typed experiment specification — the single configuration
//! surface of every scenario.
//!
//! [`ExperimentSpec`] replaces the per-binary `EMCA_*` parsing: the env
//! vars remain as documented fallbacks, but they are read in exactly one
//! place ([`from_env`]) and everything downstream (the `emca` CLI, the
//! deprecated per-figure shims, library callers) works on the typed
//! spec. Fields a scenario does not override fall back to that
//! scenario's own defaults, so the spec only pins what the caller set.
//!
//! The spec is serde-able without a serde dependency (the build is
//! offline): [`std::fmt::Display`] renders a stable `key=value` line and
//! [`std::str::FromStr`] parses it back, round-tripping every field —
//! the same format the CLI logs at startup and accepts in scripts.

use crate::backend::Backend;
use crate::config::{Alloc, RunConfig, Warmup};
use elastic_core::PolicyId;
use emca_metrics::SimDuration;
use std::path::PathBuf;
use volcano_db::exec::engine::Flavor;
use volcano_db::exec::FaultPlan;
use volcano_db::tpch::TpchScale;

/// A rejected experiment spec — every variant carries the offending
/// `key=value` pair, so the CLI can print a one-line diagnostic (and
/// exit 2) instead of a panic or an anonymous string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// A key no spec field answers to.
    UnknownKey {
        /// The unrecognised key.
        key: String,
        /// The value it carried.
        value: String,
    },
    /// A recognised key with an unparseable or out-of-range value.
    Malformed {
        /// The spec key (or `EMCA_*` variable) being set.
        key: String,
        /// The rejected value.
        value: String,
        /// What a valid value looks like.
        reason: String,
    },
    /// `policy=`/`tenants=…:policy=` naming no known policy.
    UnknownPolicy {
        /// The spec key being set.
        key: String,
        /// The unknown policy name.
        value: String,
        /// Valid policy names, comma-joined.
        valid: String,
    },
    /// A tenant override naming no tenant of the target scenario.
    UnknownTenant {
        /// The spec key being set (`tenants`).
        key: String,
        /// The unknown tenant name.
        value: String,
        /// The scenario's tenant names, comma-joined.
        valid: String,
    },
    /// `backend=` naming no known backend.
    UnknownBackend {
        /// The spec key being set.
        key: String,
        /// The unknown backend name.
        value: String,
    },
    /// A set field the target scenario ignores. Silently dropping a
    /// pinned field ran the wrong experiment without a word (the old
    /// `ablation.rs` drift); now it is a hard error.
    Unsupported {
        /// The scenario rejecting the field.
        scenario: String,
        /// The unsupported key.
        key: String,
        /// The value it carried.
        value: String,
    },
}

impl SpecError {
    /// A [`SpecError::Malformed`] with owned strings.
    pub(crate) fn malformed(
        key: impl Into<String>,
        value: impl Into<String>,
        reason: impl Into<String>,
    ) -> Self {
        SpecError::Malformed {
            key: key.into(),
            value: value.into(),
            reason: reason.into(),
        }
    }

    /// Rewrites the offending key — [`from_vars`] maps spec keys back
    /// to the `EMCA_*` variable the value actually came from.
    fn for_key(self, key: &str) -> Self {
        let key = key.to_string();
        match self {
            SpecError::UnknownKey { value, .. } => SpecError::UnknownKey { key, value },
            SpecError::Malformed { value, reason, .. } => {
                SpecError::Malformed { key, value, reason }
            }
            SpecError::UnknownPolicy { value, valid, .. } => {
                SpecError::UnknownPolicy { key, value, valid }
            }
            SpecError::UnknownTenant { value, valid, .. } => {
                SpecError::UnknownTenant { key, value, valid }
            }
            SpecError::UnknownBackend { value, .. } => SpecError::UnknownBackend { key, value },
            unsupported @ SpecError::Unsupported { .. } => unsupported,
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid experiment spec: ")?;
        match self {
            SpecError::UnknownKey { key, value } => write!(
                f,
                "unknown key in {key}={value} (valid: {})",
                ExperimentSpec::KEYS.join(" ")
            ),
            SpecError::Malformed { key, value, reason } => {
                write!(f, "{key}={value}: {reason}")
            }
            SpecError::UnknownPolicy { key, value, valid } => {
                write!(f, "{key}={value}: unknown policy (valid: {valid})")
            }
            SpecError::UnknownTenant { key, value, valid } => {
                write!(f, "{key}={value}: no such tenant (valid: {valid})")
            }
            SpecError::UnknownBackend { key, value } => {
                write!(f, "{key}={value}: unknown backend (expected sim|threads)")
            }
            SpecError::Unsupported {
                scenario,
                key,
                value,
            } => write!(
                f,
                "scenario {scenario} does not support {key}={value} (it would be \
                 silently ignored; drop the field or pick a scenario that honours it)"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Per-tenant overrides for the multi-tenant (`mt_*`) scenarios: the
/// scenario defines its tenants (names, workloads, arbitration); the
/// spec may override each tenant's policy, client count, weight, or
/// core budget. Rendered/parsed as `name[:key=value]*` with keys
/// `policy|users|weight|cap`, e.g. `olap:users=24:cap=6`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TenantSpec {
    /// Tenant name, matched against the scenario's tenant names (or by
    /// position when no name matches).
    pub name: String,
    /// Placement-policy override.
    pub policy: Option<PolicyId>,
    /// Client-count override.
    pub users: Option<usize>,
    /// Arbiter weight / priority-rank override.
    pub weight: Option<u32>,
    /// Core-budget override (`SlaPolicy::max_cores`).
    pub max_cores: Option<u32>,
}

impl TenantSpec {
    /// A named tenant override with nothing overridden.
    pub fn named(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            ..Self::default()
        }
    }

    fn parse(s: &str) -> Result<Self, SpecError> {
        let mut parts = s.split(':');
        let name = parts
            .next()
            .filter(|n| !n.is_empty())
            .ok_or_else(|| SpecError::malformed("tenants", s, "tenant spec needs a name"))?;
        let mut spec = TenantSpec::named(name);
        for part in parts {
            let (key, value) = part.split_once('=').ok_or_else(|| {
                SpecError::malformed(
                    "tenants",
                    s,
                    format!("tenant field must be key=value, got {part:?}"),
                )
            })?;
            match key {
                "policy" => {
                    spec.policy =
                        Some(
                            PolicyId::try_from(value).map_err(|_| SpecError::UnknownPolicy {
                                key: "tenants".into(),
                                value: value.into(),
                                valid: policy_names(),
                            })?,
                        )
                }
                "users" => {
                    let users: usize = parse_num("tenants", value)?;
                    if users == 0 {
                        return Err(SpecError::malformed(
                            "tenants",
                            s,
                            "tenant users must be >= 1",
                        ));
                    }
                    spec.users = Some(users);
                }
                "weight" => {
                    let weight: u32 = parse_num("tenants", value)?;
                    if weight == 0 {
                        return Err(SpecError::malformed(
                            "tenants",
                            s,
                            "tenant weight must be >= 1",
                        ));
                    }
                    spec.weight = Some(weight);
                }
                "cap" => spec.max_cores = Some(parse_num("tenants", value)?),
                other => {
                    return Err(SpecError::malformed(
                        "tenants",
                        s,
                        format!("unknown tenant field {other:?} (valid: policy users weight cap)"),
                    ))
                }
            }
        }
        Ok(spec)
    }
}

impl std::fmt::Display for TenantSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(p) = self.policy {
            write!(f, ":policy={p}")?;
        }
        if let Some(u) = self.users {
            write!(f, ":users={u}")?;
        }
        if let Some(w) = self.weight {
            write!(f, ":weight={w}")?;
        }
        if let Some(c) = self.max_cores {
            write!(f, ":cap={c}")?;
        }
        Ok(())
    }
}

/// Comma-joined valid policy names, for error messages.
fn policy_names() -> String {
    let names: Vec<&str> = PolicyId::ALL.iter().map(|p| p.name()).collect();
    names.join(", ")
}

/// How the serving layer's open-loop requests arrive (`arrival=`):
/// a Poisson process at a fixed rate, or a recorded trace replayed
/// verbatim. Both produce a schedule pinned by the spec's seed, so a
/// run is reproducible across repeats and backends.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalSpec {
    /// Poisson arrivals at `lambda` requests per (simulated) second.
    Poisson {
        /// Offered load, requests/s (> 0).
        lambda: f64,
    },
    /// Replay a trace file: one arrival per line, `arrival_ms[,query]`,
    /// `#` comments, timestamps non-decreasing.
    Trace {
        /// Path to the trace file.
        path: PathBuf,
    },
}

impl ArrivalSpec {
    fn parse(value: &str) -> Result<Self, SpecError> {
        let bad = |reason: &str| SpecError::malformed("arrival", value, reason);
        match value.split_once(':') {
            Some(("poisson", rate)) => {
                let lambda: f64 = rate
                    .parse()
                    .map_err(|_| bad("poisson rate must be a number (requests/s)"))?;
                if !(lambda > 0.0 && lambda.is_finite()) {
                    return Err(bad("poisson rate must be finite and > 0"));
                }
                Ok(ArrivalSpec::Poisson { lambda })
            }
            Some(("trace", path)) if !path.is_empty() => Ok(ArrivalSpec::Trace {
                path: PathBuf::from(path),
            }),
            _ => Err(bad("expected poisson:<rate> or trace:<path>")),
        }
    }
}

impl std::fmt::Display for ArrivalSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrivalSpec::Poisson { lambda } => write!(f, "poisson:{lambda}"),
            ArrivalSpec::Trace { path } => write!(f, "trace:{}", path.display()),
        }
    }
}

/// The serving layer's admission policy (`admission=`): accept
/// everything, or cap concurrent in-flight queries with a
/// deadline-aware wait queue behind the cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionSpec {
    /// Every arrival is dispatched immediately (open door).
    None,
    /// At most `max_inflight` queries execute concurrently; excess
    /// arrivals wait in a queue of at most `queue` slots (`None` =
    /// unbounded) and are shed when the queue is full or their SLA
    /// deadline expires before dispatch.
    Limit {
        /// Concurrent in-flight query cap (>= 1).
        max_inflight: u32,
        /// Wait-queue capacity; `None` is unbounded.
        queue: Option<u32>,
    },
}

impl AdmissionSpec {
    fn parse(value: &str) -> Result<Self, SpecError> {
        let bad = |reason: &str| SpecError::malformed("admission", value, reason);
        if value == "none" {
            return Ok(AdmissionSpec::None);
        }
        let Some(rest) = value.strip_prefix("limit:") else {
            return Err(bad("expected none or limit:<max_inflight>[:queue=<slots>]"));
        };
        let (cap, queue) = match rest.split_once(':') {
            None => (rest, None),
            Some((cap, q)) => {
                let slots = q
                    .strip_prefix("queue=")
                    .ok_or_else(|| bad("expected queue=<slots> after limit:<max_inflight>"))?;
                let slots: u32 = slots
                    .parse()
                    .map_err(|_| bad("queue slots must be a number"))?;
                (cap, Some(slots))
            }
        };
        let max_inflight: u32 = cap
            .parse()
            .map_err(|_| bad("max_inflight must be a number"))?;
        if max_inflight == 0 {
            return Err(bad("max_inflight must be >= 1"));
        }
        Ok(AdmissionSpec::Limit {
            max_inflight,
            queue,
        })
    }
}

impl std::fmt::Display for AdmissionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionSpec::None => f.write_str("none"),
            AdmissionSpec::Limit {
                max_inflight,
                queue: None,
            } => write!(f, "limit:{max_inflight}"),
            AdmissionSpec::Limit {
                max_inflight,
                queue: Some(q),
            } => write!(f, "limit:{max_inflight}:queue={q}"),
        }
    }
}

/// Full description of one experiment invocation. Unset (`None`) fields
/// defer to the scenario's own defaults.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSpec {
    /// Scenario name (`fig04` … `tab_summary`); empty for ad-hoc runs.
    pub scenario: String,
    /// Engine flavor override (scenarios that sweep both ignore it).
    pub flavor: Option<Flavor>,
    /// Mechanism policy: fills the *adaptive* slot of every scenario
    /// (`None` = the paper's adaptive mode).
    pub policy: Option<PolicyId>,
    /// Concurrent clients / cap on user sweeps (`EMCA_CLIENTS`).
    pub users: Option<usize>,
    /// Per-client iterations (`EMCA_ITERS`).
    pub iters: Option<u32>,
    /// TPC-H scale factor (`EMCA_SF`; scenario default 0.25).
    pub sf: Option<f64>,
    /// Data-generation seed.
    pub seed: u64,
    /// Base-data placement override (`EMCA_WARMUP`).
    pub warmup: Option<Warmup>,
    /// Eq. 1 saturation-guard override (`EMCA_GUARD`): `Some(None)`
    /// disables the guard, `Some(Some(x))` pins the threshold.
    pub guard: Option<Option<f64>>,
    /// Pinned control interval in ms (`EMCA_INTERVAL_MS`).
    pub interval_ms: Option<f64>,
    /// Enforce fidelity/validation claims where the scenario defines
    /// them (`EMCA_CHECK=1`).
    pub check: bool,
    /// CSV output directory (default: the workspace `results/`).
    pub out_dir: Option<PathBuf>,
    /// Per-tenant overrides for the multi-tenant scenarios
    /// (`EMCA_TENANTS` / `--tenants`); `None` keeps every scenario
    /// default.
    pub tenants: Option<Vec<TenantSpec>>,
    /// Execution backend (`EMCA_BACKEND` / `--backend`): the
    /// deterministic simulation (default) or real OS threads.
    pub backend: Backend,
    /// Open-loop arrival process for the serving scenarios
    /// (`EMCA_ARRIVAL` / `--arrival`).
    pub arrival: Option<ArrivalSpec>,
    /// Open-loop offered-load window in seconds (`EMCA_DURATION` /
    /// `--duration`); arrivals stop after this, in-flight work drains.
    pub duration: Option<f64>,
    /// Admission policy of the serving front door (`EMCA_ADMISSION` /
    /// `--admission`).
    pub admission: Option<AdmissionSpec>,
    /// Per-request SLA target in milliseconds (`EMCA_SLA_MS` /
    /// `--sla-ms`); the deadline-aware queue sheds requests that cannot
    /// be dispatched before `arrival + sla`.
    pub sla_ms: Option<f64>,
    /// Deterministic fault-injection plan (`EMCA_FAULTS` / `--faults`),
    /// e.g. `panic:worker=3@2s,badquery:rate=0.01`. Unset leaves the
    /// fault plane fully inert.
    pub faults: Option<FaultPlan>,
    /// Serverless churn population for the churn scenarios
    /// (`EMCA_CHURN` / `--churn`), e.g. `64:resident=12:skew=0.8`.
    pub churn: Option<crate::churn::ChurnSpec>,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            scenario: String::new(),
            flavor: None,
            policy: None,
            users: None,
            iters: None,
            sf: None,
            seed: 42,
            warmup: None,
            guard: None,
            interval_ms: None,
            check: false,
            out_dir: None,
            tenants: None,
            backend: Backend::default(),
            arrival: None,
            duration: None,
            admission: None,
            sla_ms: None,
            faults: None,
            churn: None,
        }
    }
}

impl ExperimentSpec {
    /// A spec naming a scenario, everything else at defaults.
    pub fn for_scenario(name: impl Into<String>) -> Self {
        ExperimentSpec {
            scenario: name.into(),
            ..Self::default()
        }
    }

    /// The TPC-H scale, falling back to the scenario's default factor.
    pub fn scale(&self, default_sf: f64) -> TpchScale {
        TpchScale {
            sf: self.sf.unwrap_or(default_sf),
            seed: self.seed,
        }
    }

    /// Client count with the scenario's default cap.
    pub fn users_or(&self, default: usize) -> usize {
        self.users.unwrap_or(default)
    }

    /// Iteration count with the scenario's default.
    pub fn iters_or(&self, default: u32) -> u32 {
        self.iters.unwrap_or(default)
    }

    /// The allocation filling the scenario's *mechanism* slot: the
    /// paper's adaptive mode unless a policy override is set.
    pub fn mech_alloc(&self) -> Alloc {
        match self.policy {
            None => Alloc::Adaptive,
            Some(p) => Alloc::from(p),
        }
    }

    /// The four-series sweep of most figures, with the adaptive slot
    /// replaced by the spec's policy (identical to the paper's
    /// OS/Dense/Sparse/Adaptive by default).
    pub fn alloc_sweep(&self) -> [Alloc; 4] {
        [Alloc::OsAll, Alloc::Dense, Alloc::Sparse, self.mech_alloc()]
    }

    /// Applies the spec's mechanism overrides (guard, pinned interval,
    /// warm-up homing) to a run configuration.
    pub fn apply(&self, mut cfg: RunConfig) -> RunConfig {
        if let Some(guard) = self.guard {
            cfg = cfg.with_guard(guard);
        }
        if let Some(ms) = self.interval_ms {
            cfg = cfg.with_mech_interval(SimDuration::from_micros((ms * 1000.0) as u64));
        }
        if let Some(w) = self.warmup {
            cfg = cfg.with_warmup(w);
        }
        if let Some(p) = &self.faults {
            cfg = cfg.with_faults(p.clone());
        }
        cfg.with_backend(self.backend)
    }

    /// Applies the spec's tenant overrides to a multi-tenant config:
    /// each [`TenantSpec`] is matched *by name* against the scenario's
    /// tenants and its set fields replace the scenario defaults. An
    /// override naming no tenant is a hard error listing the valid
    /// names — a typo must not silently retarget another tenant.
    pub fn apply_tenants(
        &self,
        cfg: &mut crate::tenants::MultiTenantConfig,
    ) -> Result<(), SpecError> {
        cfg.backend = self.backend;
        let Some(overrides) = &self.tenants else {
            return Ok(());
        };
        for ts in overrides {
            let Some(i) = cfg.tenants.iter().position(|t| t.name == ts.name) else {
                let valid: Vec<&str> = cfg.tenants.iter().map(|t| t.name.as_str()).collect();
                return Err(SpecError::UnknownTenant {
                    key: "tenants".into(),
                    value: ts.name.clone(),
                    valid: valid.join(", "),
                });
            };
            let t = &mut cfg.tenants[i];
            if let Some(p) = ts.policy {
                t.policy = p;
            }
            if let Some(u) = ts.users {
                t.clients = u;
            }
            if let Some(w) = ts.weight {
                t.weight = w;
            }
            if let Some(c) = ts.max_cores {
                t.sla.max_cores = Some(c);
            }
        }
        Ok(())
    }

    /// Where a scenario CSV goes: `out_dir/<name>` when set, the
    /// workspace `results/<name>` otherwise.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        match &self.out_dir {
            Some(dir) => dir.join(name),
            None => crate::results_path(name),
        }
    }

    /// Logs the resolved spec (the startup line every entry point
    /// prints, so a run's full configuration is always on record).
    pub fn log_resolved(&self) {
        eprintln!("[spec] {self}");
    }
}

fn flavor_name(f: Flavor) -> &'static str {
    match f {
        Flavor::MonetDb => "monetdb",
        Flavor::SqlServer => "sqlserver",
    }
}

fn parse_flavor(s: &str) -> Result<Flavor, SpecError> {
    match s {
        "monetdb" => Ok(Flavor::MonetDb),
        "sqlserver" => Ok(Flavor::SqlServer),
        other => Err(SpecError::malformed(
            "flavor",
            other,
            "must be monetdb|sqlserver",
        )),
    }
}

fn warmup_name(w: Warmup) -> &'static str {
    match w {
        Warmup::Loader => "loader",
        Warmup::Interleave => "interleave",
        Warmup::None => "none",
    }
}

fn parse_warmup(s: &str) -> Result<Warmup, SpecError> {
    match s {
        "loader" => Ok(Warmup::Loader),
        "interleave" => Ok(Warmup::Interleave),
        "none" => Ok(Warmup::None),
        other => Err(SpecError::malformed(
            "warmup",
            other,
            "must be loader|interleave|none",
        )),
    }
}

impl std::fmt::Display for ExperimentSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut pairs: Vec<String> = Vec::new();
        if !self.scenario.is_empty() {
            pairs.push(format!("scenario={}", self.scenario));
        }
        if let Some(fl) = self.flavor {
            pairs.push(format!("flavor={}", flavor_name(fl)));
        }
        if let Some(p) = self.policy {
            pairs.push(format!("policy={p}"));
        }
        if let Some(u) = self.users {
            pairs.push(format!("users={u}"));
        }
        if let Some(i) = self.iters {
            pairs.push(format!("iters={i}"));
        }
        if let Some(sf) = self.sf {
            pairs.push(format!("sf={sf}"));
        }
        pairs.push(format!("seed={}", self.seed));
        if let Some(w) = self.warmup {
            pairs.push(format!("warmup={}", warmup_name(w)));
        }
        match self.guard {
            None => {}
            Some(None) => pairs.push("guard=off".into()),
            Some(Some(g)) => pairs.push(format!("guard={g}")),
        }
        if let Some(ms) = self.interval_ms {
            pairs.push(format!("interval_ms={ms}"));
        }
        if self.check {
            pairs.push("check=1".into());
        }
        if let Some(dir) = &self.out_dir {
            let dir = dir.display().to_string();
            // Values with whitespace are quoted so the line stays
            // `FromStr`-parseable (the round-trip contract).
            if dir.chars().any(char::is_whitespace) {
                pairs.push(format!("out_dir=\"{dir}\""));
            } else {
                pairs.push(format!("out_dir={dir}"));
            }
        }
        if let Some(tenants) = &self.tenants {
            let rendered: Vec<String> = tenants.iter().map(|t| t.to_string()).collect();
            pairs.push(format!("tenants={}", rendered.join(",")));
        }
        // Serve fields render only when set, so pre-serve spec lines
        // stay byte-identical.
        if let Some(a) = &self.arrival {
            pairs.push(format!("arrival={a}"));
        }
        if let Some(d) = self.duration {
            pairs.push(format!("duration={d}"));
        }
        if let Some(a) = self.admission {
            pairs.push(format!("admission={a}"));
        }
        if let Some(s) = self.sla_ms {
            pairs.push(format!("sla_ms={s}"));
        }
        // The canonical FaultPlan rendering contains no whitespace, so
        // the line stays tokenizable; rendered only when set, keeping
        // pre-fault spec lines byte-identical.
        if let Some(p) = &self.faults {
            pairs.push(format!("faults={p}"));
        }
        // Rendered only when set (no whitespace in the canonical form),
        // keeping pre-churn spec lines byte-identical.
        if let Some(c) = &self.churn {
            pairs.push(format!("churn={c}"));
        }
        // Emitted only off the default, so pre-backend spec lines stay
        // byte-identical.
        if self.backend != Backend::default() {
            pairs.push(format!("backend={}", self.backend));
        }
        f.write_str(&pairs.join(" "))
    }
}

/// Splits a spec line into `key=value` tokens, honouring double quotes
/// around values (`out_dir="/tmp/my results"`).
fn tokenize(s: &str) -> Result<Vec<String>, SpecError> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in s.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(SpecError::malformed("spec", s, "unbalanced quote"));
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    Ok(tokens)
}

impl std::str::FromStr for ExperimentSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut spec = ExperimentSpec::default();
        for pair in tokenize(s)? {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| SpecError::malformed("spec", &pair, "expected key=value"))?;
            spec.set(key, value)?;
        }
        Ok(spec)
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, SpecError> {
    value
        .parse()
        .map_err(|_| SpecError::malformed(key, value, "must be a number"))
}

impl ExperimentSpec {
    /// Every spec key, in `Display` rendering order.
    pub const KEYS: &'static [&'static str] = &[
        "scenario",
        "flavor",
        "policy",
        "users",
        "iters",
        "sf",
        "seed",
        "warmup",
        "guard",
        "interval_ms",
        "check",
        "out_dir",
        "tenants",
        "arrival",
        "duration",
        "admission",
        "sla_ms",
        "faults",
        "churn",
        "backend",
    ];

    /// Keys that are *universal* — every scenario honours them (or they
    /// configure the harness around the scenario), so the supported-keys
    /// validation never checks them.
    pub const UNIVERSAL_KEYS: &'static [&'static str] = &["scenario", "seed", "check", "out_dir"];

    /// Sets one `key=value` field (the `FromStr`/CLI/env shared path).
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        match key {
            "scenario" => self.scenario = value.to_string(),
            "flavor" => self.flavor = Some(parse_flavor(value)?),
            "policy" => {
                self.policy =
                    Some(
                        PolicyId::try_from(value).map_err(|_| SpecError::UnknownPolicy {
                            key: key.into(),
                            value: value.into(),
                            valid: policy_names(),
                        })?,
                    )
            }
            "users" => self.users = Some(parse_num(key, value)?),
            "iters" => self.iters = Some(parse_num(key, value)?),
            "sf" => self.sf = Some(parse_num(key, value)?),
            "seed" => self.seed = parse_num(key, value)?,
            "warmup" => self.warmup = Some(parse_warmup(value)?),
            "guard" => {
                self.guard = Some(if value == "off" {
                    None
                } else {
                    Some(parse_num(key, value)?)
                })
            }
            "interval_ms" => self.interval_ms = Some(parse_num(key, value)?),
            "check" => self.check = value == "1" || value == "true",
            "out_dir" => self.out_dir = Some(PathBuf::from(value)),
            "tenants" => {
                self.tenants = Some(
                    value
                        .split(',')
                        .map(TenantSpec::parse)
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            "arrival" => self.arrival = Some(ArrivalSpec::parse(value)?),
            "duration" => {
                let d: f64 = parse_num(key, value)?;
                if !(d > 0.0 && d.is_finite()) {
                    return Err(SpecError::malformed(
                        key,
                        value,
                        "must be finite seconds > 0",
                    ));
                }
                self.duration = Some(d);
            }
            "admission" => self.admission = Some(AdmissionSpec::parse(value)?),
            "faults" => {
                let plan =
                    FaultPlan::parse(value).map_err(|e| SpecError::malformed(key, value, e))?;
                // An explicitly empty plan is the same as no plan: the
                // fault plane stays inert and the spec line unchanged.
                self.faults = (!plan.is_empty()).then_some(plan);
            }
            "churn" => self.churn = Some(crate::churn::ChurnSpec::parse(value)?),
            "sla_ms" => {
                let s: f64 = parse_num(key, value)?;
                if !(s > 0.0 && s.is_finite()) {
                    return Err(SpecError::malformed(
                        key,
                        value,
                        "must be finite milliseconds > 0",
                    ));
                }
                self.sla_ms = Some(s);
            }
            "backend" => {
                self.backend = value
                    .parse()
                    .map_err(|_: String| SpecError::UnknownBackend {
                        key: key.into(),
                        value: value.into(),
                    })?
            }
            other => {
                return Err(SpecError::UnknownKey {
                    key: other.into(),
                    value: value.into(),
                })
            }
        }
        Ok(())
    }

    /// The non-universal keys this spec has pinned, as `(key, value)`
    /// pairs — what the supported-keys validation checks against a
    /// scenario's declared support, and what `--prune-unsupported`
    /// clears. `backend` counts as set only off its default.
    pub fn set_keys(&self) -> Vec<(&'static str, String)> {
        let mut keys = Vec::new();
        if let Some(fl) = self.flavor {
            keys.push(("flavor", flavor_name(fl).to_string()));
        }
        if let Some(p) = self.policy {
            keys.push(("policy", p.to_string()));
        }
        if let Some(u) = self.users {
            keys.push(("users", u.to_string()));
        }
        if let Some(i) = self.iters {
            keys.push(("iters", i.to_string()));
        }
        if let Some(sf) = self.sf {
            keys.push(("sf", sf.to_string()));
        }
        if let Some(w) = self.warmup {
            keys.push(("warmup", warmup_name(w).to_string()));
        }
        match self.guard {
            None => {}
            Some(None) => keys.push(("guard", "off".to_string())),
            Some(Some(g)) => keys.push(("guard", g.to_string())),
        }
        if let Some(ms) = self.interval_ms {
            keys.push(("interval_ms", ms.to_string()));
        }
        if let Some(tenants) = &self.tenants {
            let rendered: Vec<String> = tenants.iter().map(|t| t.to_string()).collect();
            keys.push(("tenants", rendered.join(",")));
        }
        if let Some(a) = &self.arrival {
            keys.push(("arrival", a.to_string()));
        }
        if let Some(d) = self.duration {
            keys.push(("duration", d.to_string()));
        }
        if let Some(a) = self.admission {
            keys.push(("admission", a.to_string()));
        }
        if let Some(s) = self.sla_ms {
            keys.push(("sla_ms", s.to_string()));
        }
        if let Some(p) = &self.faults {
            keys.push(("faults", p.to_string()));
        }
        if let Some(c) = &self.churn {
            keys.push(("churn", c.to_string()));
        }
        if self.backend != Backend::default() {
            keys.push(("backend", self.backend.to_string()));
        }
        keys
    }

    /// Clears one non-universal field by key name (the
    /// `--prune-unsupported` path). Unknown or universal keys are left
    /// untouched.
    pub fn clear(&mut self, key: &str) {
        match key {
            "flavor" => self.flavor = None,
            "policy" => self.policy = None,
            "users" => self.users = None,
            "iters" => self.iters = None,
            "sf" => self.sf = None,
            "warmup" => self.warmup = None,
            "guard" => self.guard = None,
            "interval_ms" => self.interval_ms = None,
            "tenants" => self.tenants = None,
            "arrival" => self.arrival = None,
            "duration" => self.duration = None,
            "admission" => self.admission = None,
            "sla_ms" => self.sla_ms = None,
            "faults" => self.faults = None,
            "churn" => self.churn = None,
            "backend" => self.backend = Backend::default(),
            _ => {}
        }
    }
}

/// Builds a spec from the documented `EMCA_*` environment fallbacks —
/// the one place they are parsed. A malformed value is a hard error
/// (the old per-binary parsers silently fell back to defaults, which
/// made `EMCA_SF=O.25` run at 0.25× the intended scale without a
/// word).
///
/// | Variable           | Spec field    |
/// |--------------------|---------------|
/// | `EMCA_SF`          | `sf`          |
/// | `EMCA_SEED`        | `seed`        |
/// | `EMCA_CLIENTS`     | `users`       |
/// | `EMCA_ITERS`       | `iters`       |
/// | `EMCA_FLAVOR`      | `flavor`      |
/// | `EMCA_POLICY`      | `policy`      |
/// | `EMCA_WARMUP`      | `warmup`      |
/// | `EMCA_GUARD`       | `guard`       |
/// | `EMCA_INTERVAL_MS` | `interval_ms` |
/// | `EMCA_CHECK`       | `check`       |
/// | `EMCA_OUT_DIR`     | `out_dir`     |
/// | `EMCA_TENANTS`     | `tenants`     |
/// | `EMCA_BACKEND`     | `backend`     |
/// | `EMCA_ARRIVAL`     | `arrival`     |
/// | `EMCA_DURATION`    | `duration`    |
/// | `EMCA_ADMISSION`   | `admission`   |
/// | `EMCA_SLA_MS`      | `sla_ms`      |
/// | `EMCA_FAULTS`      | `faults`      |
/// | `EMCA_CHURN`       | `churn`       |
///
/// `PROPTEST_CASES` is consumed by the vendored proptest shim with the
/// same strict parsing; it is not a spec field.
pub fn from_env() -> Result<ExperimentSpec, SpecError> {
    from_vars(|name| std::env::var(name).ok())
}

/// [`from_env`] over an arbitrary variable source (testable without
/// mutating the process environment).
pub fn from_vars(get: impl Fn(&str) -> Option<String>) -> Result<ExperimentSpec, SpecError> {
    let mut spec = ExperimentSpec::default();
    for (var, key) in [
        ("EMCA_SF", "sf"),
        ("EMCA_SEED", "seed"),
        ("EMCA_CLIENTS", "users"),
        ("EMCA_ITERS", "iters"),
        ("EMCA_FLAVOR", "flavor"),
        ("EMCA_POLICY", "policy"),
        ("EMCA_WARMUP", "warmup"),
        ("EMCA_GUARD", "guard"),
        ("EMCA_INTERVAL_MS", "interval_ms"),
        ("EMCA_CHECK", "check"),
        ("EMCA_OUT_DIR", "out_dir"),
        ("EMCA_TENANTS", "tenants"),
        ("EMCA_BACKEND", "backend"),
        ("EMCA_ARRIVAL", "arrival"),
        ("EMCA_DURATION", "duration"),
        ("EMCA_ADMISSION", "admission"),
        ("EMCA_SLA_MS", "sla_ms"),
        ("EMCA_FAULTS", "faults"),
        ("EMCA_CHURN", "churn"),
    ] {
        if let Some(value) = get(var) {
            // Re-key the error to the variable it came from: the user
            // set `EMCA_SF`, not `sf`.
            spec.set(key, &value).map_err(|e| e.for_key(var))?;
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_round_trips() {
        let spec = ExperimentSpec::default();
        let back: ExperimentSpec = spec.to_string().parse().unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn full_spec_round_trips() {
        let spec = ExperimentSpec {
            scenario: "fig19".into(),
            flavor: Some(Flavor::SqlServer),
            policy: Some(PolicyId::HillClimb),
            users: Some(64),
            iters: Some(6),
            sf: Some(0.25),
            seed: 7,
            warmup: Some(Warmup::Interleave),
            guard: Some(Some(0.85)),
            interval_ms: Some(2.5),
            check: true,
            out_dir: Some(PathBuf::from("/tmp/emca-out")),
            tenants: Some(vec![TenantSpec::named("olap"), TenantSpec::named("steady")]),
            backend: Backend::Threads,
            arrival: Some(ArrivalSpec::Poisson { lambda: 12.5 }),
            duration: Some(3.0),
            admission: Some(AdmissionSpec::Limit {
                max_inflight: 8,
                queue: Some(64),
            }),
            sla_ms: Some(250.0),
            faults: Some(
                FaultPlan::default()
                    .with_kill(3, emca_metrics::SimDuration::from_secs(2))
                    .with_badquery(0.01),
            ),
            churn: Some(crate::churn::ChurnSpec {
                n: 64,
                resident: Some(12),
                skew: Some(0.8),
                spread: Some(6.0),
            }),
        };
        let line = spec.to_string();
        let back: ExperimentSpec = line.parse().unwrap();
        assert_eq!(spec, back, "serialised as {line:?}");
    }

    #[test]
    fn faults_round_trip_and_default_is_omitted() {
        let line = ExperimentSpec::default().to_string();
        assert!(!line.contains("faults"), "{line}");
        let spec: ExperimentSpec =
            "faults=panic:worker=3@2s,stall:worker=5@1s:dur=500ms,badquery:rate=0.01"
                .parse()
                .unwrap();
        let plan = spec.faults.as_ref().expect("plan parsed");
        assert_eq!(plan.worker_faults.len(), 2);
        assert_eq!(plan.badquery_rate, 0.01);
        let back: ExperimentSpec = spec.to_string().parse().unwrap();
        assert_eq!(spec, back);
        // Malformed plans report the offending pair; an empty plan is
        // the same as no plan.
        let err = "faults=flood:worker=1@1s"
            .parse::<ExperimentSpec>()
            .unwrap_err();
        assert!(err.to_string().contains("faults"), "{err}");
        let empty: ExperimentSpec = "faults=".parse().unwrap();
        assert_eq!(empty.faults, None);
    }

    #[test]
    fn serve_fields_round_trip_and_default_is_omitted() {
        let line = ExperimentSpec::default().to_string();
        for key in ["arrival", "duration", "admission", "sla_ms"] {
            assert!(!line.contains(key), "{line}");
        }
        for (line, check) in [
            ("arrival=poisson:40", "poisson 40/s"),
            ("arrival=trace:/tmp/a.trace", "trace path"),
            ("admission=none", "open door"),
            ("admission=limit:8", "cap only"),
            ("admission=limit:8:queue=64", "cap and queue"),
            ("duration=2.5 sla_ms=100", "window and SLA"),
        ] {
            let spec: ExperimentSpec = line.parse().unwrap_or_else(|e| panic!("{check}: {e}"));
            assert_eq!(spec.to_string(), format!("seed=42 {line}"), "{check}");
        }
    }

    #[test]
    fn malformed_serve_fields_error_with_the_offending_pair() {
        for line in [
            "arrival=poisson:-3",
            "arrival=poisson:abc",
            "arrival=uniform:3",
            "arrival=trace:",
            "admission=limit:0",
            "admission=limit:8:depth=2",
            "admission=open",
            "duration=0",
            "duration=x",
            "sla_ms=-1",
        ] {
            let err = line.parse::<ExperimentSpec>().unwrap_err();
            let (key, value) = line.split_once('=').unwrap();
            let msg = err.to_string();
            assert!(
                msg.contains(key) && msg.contains(value),
                "{line:?} must report its key=value, got: {msg}"
            );
        }
    }

    #[test]
    fn set_keys_tracks_pinned_fields_and_clear_unpins() {
        let mut spec: ExperimentSpec =
            "scenario=fig04 sf=0.1 users=4 arrival=poisson:10 backend=threads"
                .parse()
                .unwrap();
        let keys: Vec<&str> = spec.set_keys().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, ["users", "sf", "arrival", "backend"]);
        assert!(
            !keys.contains(&"scenario"),
            "universal keys are never reported"
        );
        for (k, v) in spec.set_keys() {
            assert!(!v.is_empty(), "{k} renders its value");
        }
        spec.clear("arrival");
        spec.clear("backend");
        let keys: Vec<&str> = spec.set_keys().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, ["users", "sf"]);
    }

    #[test]
    fn unsupported_error_names_the_scenario_and_pair() {
        let err = SpecError::Unsupported {
            scenario: "tab_overhead".into(),
            key: "users".into(),
            value: "64".into(),
        };
        let msg = err.to_string();
        assert!(
            msg.contains("tab_overhead") && msg.contains("users=64"),
            "{msg}"
        );
    }

    #[test]
    fn backend_round_trips_and_default_is_omitted() {
        let line = ExperimentSpec::default().to_string();
        assert!(!line.contains("backend"), "{line}");
        let spec = ExperimentSpec {
            backend: Backend::Threads,
            ..ExperimentSpec::default()
        };
        let line = spec.to_string();
        assert!(line.contains("backend=threads"), "{line}");
        let back: ExperimentSpec = line.parse().unwrap();
        assert_eq!(back.backend, Backend::Threads);
        assert!("backend=gpu".parse::<ExperimentSpec>().is_err());
    }

    #[test]
    fn spacey_out_dir_round_trips() {
        let spec = ExperimentSpec {
            out_dir: Some(PathBuf::from("/tmp/my results dir")),
            ..ExperimentSpec::default()
        };
        let line = spec.to_string();
        let back: ExperimentSpec = line.parse().unwrap();
        assert_eq!(spec, back, "serialised as {line:?}");
        assert!("out_dir=\"/tmp/unbalanced"
            .parse::<ExperimentSpec>()
            .is_err());
    }

    #[test]
    fn guard_off_round_trips() {
        let spec = ExperimentSpec {
            guard: Some(None),
            ..ExperimentSpec::default()
        };
        let line = spec.to_string();
        assert!(line.contains("guard=off"), "{line}");
        let back: ExperimentSpec = line.parse().unwrap();
        assert_eq!(back.guard, Some(None));
    }

    #[test]
    fn unknown_key_and_bad_values_error() {
        assert!("nonsense=1".parse::<ExperimentSpec>().is_err());
        assert!("sf=abc".parse::<ExperimentSpec>().is_err());
        assert!("warmup=sideways".parse::<ExperimentSpec>().is_err());
        let err = "policy=magic".parse::<ExperimentSpec>().unwrap_err();
        assert!(
            err.to_string().contains("adaptive"),
            "policy error must list valid names: {err}"
        );
    }

    #[test]
    fn from_vars_reads_every_fallback() {
        let vars = [
            ("EMCA_SF", "0.002"),
            ("EMCA_SEED", "9"),
            ("EMCA_CLIENTS", "16"),
            ("EMCA_ITERS", "2"),
            ("EMCA_FLAVOR", "monetdb"),
            ("EMCA_POLICY", "hillclimb"),
            ("EMCA_WARMUP", "none"),
            ("EMCA_GUARD", "off"),
            ("EMCA_INTERVAL_MS", "5"),
            ("EMCA_CHECK", "1"),
            ("EMCA_OUT_DIR", "/tmp/x"),
            ("EMCA_BACKEND", "threads"),
        ];
        let spec = from_vars(|n| {
            vars.iter()
                .find(|(k, _)| *k == n)
                .map(|(_, v)| v.to_string())
        })
        .unwrap();
        assert_eq!(spec.sf, Some(0.002));
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.users, Some(16));
        assert_eq!(spec.iters, Some(2));
        assert_eq!(spec.flavor, Some(Flavor::MonetDb));
        assert_eq!(spec.policy, Some(PolicyId::HillClimb));
        assert_eq!(spec.warmup, Some(Warmup::None));
        assert_eq!(spec.guard, Some(None));
        assert_eq!(spec.interval_ms, Some(5.0));
        assert!(spec.check);
        assert_eq!(spec.out_dir, Some(PathBuf::from("/tmp/x")));
        assert_eq!(spec.backend, Backend::Threads);
    }

    #[test]
    fn from_vars_rejects_malformed_values() {
        let err = from_vars(|n| (n == "EMCA_SF").then(|| "O.25".to_string())).unwrap_err();
        assert!(err.to_string().contains("EMCA_SF"), "{err}");
    }

    #[test]
    fn empty_env_is_all_defaults() {
        let spec = from_vars(|_| None).unwrap();
        assert_eq!(spec, ExperimentSpec::default());
    }

    #[test]
    fn tenant_specs_round_trip() {
        let spec = ExperimentSpec {
            tenants: Some(vec![
                TenantSpec {
                    name: "olap".into(),
                    policy: Some(PolicyId::HillClimb),
                    users: Some(24),
                    weight: Some(2),
                    max_cores: Some(6),
                },
                TenantSpec::named("steady"),
            ]),
            ..ExperimentSpec::default()
        };
        let line = spec.to_string();
        assert!(
            line.contains("tenants=olap:policy=hillclimb:users=24:weight=2:cap=6,steady"),
            "{line}"
        );
        let back: ExperimentSpec = line.parse().unwrap();
        assert_eq!(spec, back, "serialised as {line:?}");
    }

    #[test]
    fn malformed_tenant_specs_error() {
        assert!("tenants=".parse::<ExperimentSpec>().is_err());
        assert!("tenants=a:users=x".parse::<ExperimentSpec>().is_err());
        assert!("tenants=a:magic=1".parse::<ExperimentSpec>().is_err());
        // Zero weight/users would panic deep in the arbiter/runner;
        // they must be spec errors instead.
        assert!("tenants=a:weight=0".parse::<ExperimentSpec>().is_err());
        assert!("tenants=a:users=0".parse::<ExperimentSpec>().is_err());
        let err = "tenants=a:policy=warp"
            .parse::<ExperimentSpec>()
            .unwrap_err();
        assert!(err.to_string().contains("adaptive"), "{err}");
    }

    #[test]
    fn apply_tenants_matches_by_name_and_rejects_unknown_names() {
        use crate::tenants::{MultiTenantConfig, TenantRunConfig};
        use volcano_db::client::Workload;
        use volcano_db::tpch::QuerySpec;
        let wl = Workload::Repeat {
            spec: QuerySpec::Q6 { variant: 0 },
            iterations: 1,
        };
        let mut cfg = MultiTenantConfig::new(
            elastic_core::ArbiterMode::FairShare,
            vec![
                TenantRunConfig::new("steady", wl.clone(), 8),
                TenantRunConfig::new("olap", wl, 16),
            ],
        );
        let spec = ExperimentSpec {
            tenants: Some(vec![TenantSpec {
                name: "olap".into(),
                users: Some(4),
                max_cores: Some(3),
                weight: Some(7),
                ..TenantSpec::default()
            }]),
            ..ExperimentSpec::default()
        };
        spec.apply_tenants(&mut cfg).unwrap();
        assert_eq!(cfg.tenants[0].clients, 8, "steady untouched");
        assert_eq!(cfg.tenants[1].clients, 4);
        assert_eq!(cfg.tenants[1].sla.max_cores, Some(3));
        assert_eq!(cfg.tenants[1].weight, 7);

        // A typo'd name must not silently retarget another tenant.
        let typo = ExperimentSpec {
            tenants: Some(vec![TenantSpec::named("olp")]),
            ..ExperimentSpec::default()
        };
        let err = typo.apply_tenants(&mut cfg).unwrap_err();
        assert!(
            err.to_string().contains("olp") && err.to_string().contains("steady"),
            "{err}"
        );
    }

    #[test]
    fn policy_fills_the_mech_slot() {
        let mut spec = ExperimentSpec::default();
        assert_eq!(spec.mech_alloc(), Alloc::Adaptive);
        assert_eq!(
            spec.alloc_sweep(),
            [Alloc::OsAll, Alloc::Dense, Alloc::Sparse, Alloc::Adaptive]
        );
        spec.policy = Some(PolicyId::HillClimb);
        assert_eq!(spec.mech_alloc(), Alloc::HillClimb);
        assert_eq!(spec.alloc_sweep()[3], Alloc::HillClimb);
        spec.policy = Some(PolicyId::Dense);
        assert_eq!(spec.mech_alloc(), Alloc::Dense);
    }

    #[test]
    fn scale_and_default_accessors() {
        let spec = ExperimentSpec::default();
        assert_eq!(spec.scale(0.25).sf, 0.25);
        assert_eq!(spec.scale(0.25).seed, 42);
        assert_eq!(spec.users_or(64), 64);
        assert_eq!(spec.iters_or(3), 3);
        let spec = ExperimentSpec {
            sf: Some(0.002),
            users: Some(4),
            iters: Some(1),
            ..ExperimentSpec::default()
        };
        assert_eq!(spec.scale(0.25).sf, 0.002);
        assert_eq!(spec.users_or(64), 4);
        assert_eq!(spec.iters_or(3), 1);
    }
}
