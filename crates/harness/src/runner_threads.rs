//! The real-thread experiment runner: executes a [`RunConfig`] on
//! [`ParEngine`] — dedicated OS threads doing the actual work — with the
//! elastic mechanism actuating the worker pool instead of a simulated
//! cpuset.
//!
//! What maps where, relative to [`crate::runner::run`]:
//!
//! - **Engine**: the same plans and partitioning, executed by real
//!   threads ([`ParEngine`]); with the pool width fixed at the simulated
//!   machine's core count, results are bitwise-identical to the sim
//!   backend (allocation only changes timing).
//! - **Mechanism**: a [`PoolController`] (the PrT net on a measured CPU
//!   load) replaces [`ElasticMechanism`](elastic_core::ElasticMechanism).
//!   Grow/shrink unpark/park workers; the *placement* half of a mode
//!   degrades to the pool's wake order — this workspace links no
//!   affinity or perf-counter syscalls, so core pinning, the HT/IMC
//!   metric, the Eq. 1 saturation guard and SLA power budgets have no
//!   real counterpart here ([`RunConfig::metric`], `mech_guard` and
//!   custom policies are ignored; `warmup` is meaningless without NUMA
//!   page homing).
//! - **Baseline**: [`Alloc::OsAll`] becomes "no pool management": one
//!   always-active worker per client (never fewer than the machine
//!   width), the thread-per-task shape the paper argues against.
//! - **Counters**: hardware series (IMC/HT) are empty; CPU load and the
//!   allocated-core count are measured for real. With
//!   [`RunConfig::with_trace`], the migration trace is real too: the
//!   driver samples each worker's host CPU from `/proc/self/task`
//!   (`ProcTracer`), so the Fig. 5/16 maps show actual OS placement.
//!
//! Environment knobs: `EMCA_THREADS` caps the pool width (changes
//! partitioning, hence results — CI smoke only); `EMCA_RUN_DEADLINE_S`
//! overrides the run-abort deadline in wall seconds, and when it is
//! unset `EMCA_WALL_BUDGET_S` doubles as the deadline (the pre-split
//! behaviour — see [`crate::timing`] for the distinction).

use crate::config::{Alloc, RunConfig};
use crate::runner::RunOutput;
use crate::tenants::{MultiTenantConfig, MultiTenantOutput, TenantOutput};
use elastic_core::{PoolConfig, PoolController, TenantArbiter};
use emca_metrics::{SimDuration, SimTime, TimeSeries};
use numa_sim::{CoreId, HwCounters, MachineConfig};
use os_sim::{SchedStats, SchedTrace, Tid};
use prt_petrinet::AllocAction;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, PoisonError};
use std::time::Instant;
use volcano_db::client::materialize_phases;
use volcano_db::exec::engine::QueryResult;
use volcano_db::exec::{BaseData, ParEngine, ParEngineConfig};
use volcano_db::tpch::{build_query, TpchData};

/// Driver poll granularity — well under the shortest control interval.
pub(crate) const POLL: std::time::Duration = std::time::Duration::from_micros(100);

/// Locks a mutex, recovering from poisoning: the values behind these
/// mutexes (result vectors, completion stamps) are only appended to, so
/// a panicking peer cannot leave them half-updated.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // emca-lint: allow(lock-order) — generic poison-recovery wrapper; the mutex's rank belongs to the call site, and no caller holds two of these result-sink locks at once
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Machine width the pool mirrors (the simulated Opteron's 16 cores),
/// unless `EMCA_THREADS` caps it.
pub(crate) fn capacity() -> usize {
    let machine = MachineConfig::opteron_4x4().topology.n_cores();
    match std::env::var("EMCA_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.clamp(1, machine),
            // emca-lint: allow(panic-freedom) — config-parse tripwire on the driver thread at startup, before any pool exists
            Err(_) => panic!("EMCA_THREADS must be a thread count, got {v:?}"),
        },
        Err(_) => machine,
    }
}

/// Wall-clock run-abort deadline: `EMCA_RUN_DEADLINE_S` when set (the
/// dedicated deadline knob, see [`crate::run_deadline_from_env`]), else
/// `EMCA_WALL_BUDGET_S` (the fidelity budget doubling as the deadline,
/// which keeps pre-split CI jobs working), else the config's deadline
/// read as wall time.
pub(crate) fn wall_deadline(configured: SimDuration) -> SimDuration {
    match crate::run_deadline_from_env() {
        Ok(Some(secs)) => return SimDuration::from_secs_f64(secs),
        Ok(None) => {}
        // emca-lint: allow(panic-freedom) — config-parse tripwire on the driver thread at startup, before any pool exists
        Err(e) => panic!("{e}"),
    }
    match crate::wall_budget_from_env() {
        Ok(Some(secs)) => SimDuration::from_secs_f64(secs),
        Ok(None) => configured,
        // emca-lint: allow(panic-freedom) — config-parse tripwire on the driver thread at startup, before any pool exists
        Err(e) => panic!("{e}"),
    }
}

/// Wall time since `t0` on the simulation-time axis.
pub(crate) fn wall_now(t0: Instant) -> SimTime {
    SimTime::ZERO + SimDuration::from_nanos(t0.elapsed().as_nanos() as u64)
}

/// Sparse-mode wake order: stride across the four "sockets" of the
/// mirrored machine so a small allocation spreads like the sparse
/// cpuset would.
pub(crate) fn sparse_order(width: usize) -> Vec<usize> {
    let socket = (width / 4).max(1);
    let mut order = Vec::with_capacity(width);
    for i in 0..socket {
        for g in 0..4 {
            let w = g * socket + i;
            if w < width {
                order.push(w);
            }
        }
    }
    order
}

/// Pool-controller configuration matching a run's control cadence.
pub(crate) fn pool_cfg(ntotal: u32, interval: Option<SimDuration>) -> PoolConfig {
    let mut cfg = PoolConfig::cpu_load(ntotal);
    if let Some(iv) = interval {
        cfg.interval = iv;
        cfg.min_interval = cfg.min_interval.min(iv);
    }
    cfg
}

/// CPU load (%) of the active workers over a wall window: busy worker
/// nanoseconds against the capacity `active * dt`.
pub(crate) fn load_pct(busy_delta: u64, active: usize, dt_ns: u64) -> f64 {
    if dt_ns == 0 || active == 0 {
        return 0.0;
    }
    (busy_delta as f64 / (active as f64 * dt_ns as f64) * 100.0).clamp(0.0, 100.0)
}

/// Trace sampling cadence — coarser than the driver poll: a sample is
/// one `/proc` stat read per pool worker.
const TRACE_EVERY: SimDuration = SimDuration::from_millis(1);

/// Real scheduling trace for the migration figures (Fig. 5 / Fig. 16):
/// samples the host CPU each pool worker last ran on from
/// `/proc/self/task/<tid>/stat` — plain pseudo-file reads, no syscall
/// bindings. Worker `i` (thread name `emca-worker{i}`) appears as
/// `Tid(i)`; a span's core is the *host* CPU id, not a simulated core
/// (the renderer leaves the NUMA-node column blank for CPUs outside
/// the simulated topology). On hosts without `/proc` the trace simply
/// stays empty.
struct ProcTracer {
    trace: SchedTrace,
    next: SimTime,
    /// Task entries skipped this run: stat reads that failed (the
    /// thread exited mid-scan) or worker stat lines that would not
    /// parse (a kernel format surprise). The trace degrades to the
    /// samples that did parse instead of aborting the run.
    skipped: u64,
}

impl ProcTracer {
    fn new() -> Self {
        ProcTracer {
            trace: SchedTrace::enabled(),
            next: SimTime::ZERO,
            skipped: 0,
        }
    }

    /// One sample: scan the process's task list, record each running
    /// worker on its current CPU and close the span of each sleeper.
    /// Unreadable or malformed entries are counted and skipped.
    fn sample(&mut self, now: SimTime) {
        let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
            return;
        };
        for task in tasks.flatten() {
            match std::fs::read_to_string(task.path().join("stat")) {
                Err(_) => self.skipped += 1,
                Ok(stat) => match parse_worker_stat(&stat) {
                    WorkerStat::Worker(tid, 'R', cpu) => self.trace.on_run(tid, CoreId(cpu), now),
                    WorkerStat::Worker(tid, _, _) => self.trace.on_stop(tid, now),
                    WorkerStat::NotWorker => {}
                    WorkerStat::Malformed => self.skipped += 1,
                },
            }
        }
    }

    fn finish(mut self, now: SimTime) -> SchedTrace {
        self.sample(now);
        if self.skipped > 0 {
            eprintln!(
                "[trace] skipped {} unreadable or malformed /proc task stat entries",
                self.skipped
            );
        }
        self.trace.finish(now);
        self.trace
    }
}

/// What one `/proc/<pid>/task/<tid>/stat` line turned out to be.
#[derive(Debug, PartialEq, Eq)]
enum WorkerStat {
    /// A pool worker: (worker id, state char, host CPU).
    Worker(Tid, char, u16),
    /// Some other thread (clients, the driver, the main thread).
    NotWorker,
    /// Named like a worker but the line would not parse — skip and
    /// count, never abort the trace.
    Malformed,
}

/// Parses a `/proc/<pid>/task/<tid>/stat` line. The comm field is
/// parenthesized and may itself contain spaces and parentheses, so
/// fields are counted from the *last* closing parenthesis: state is the
/// first after it, `processor` — the CPU the thread last ran on — is
/// the 37th.
fn parse_worker_stat(stat: &str) -> WorkerStat {
    let comm = stat
        .find('(')
        .and_then(|open| stat.rfind(')').map(|close| (open, close)))
        .filter(|(open, close)| open < close);
    let Some((open, close)) = comm else {
        return WorkerStat::NotWorker;
    };
    let Some(idx) = stat[open + 1..close]
        .strip_prefix("emca-worker")
        .and_then(|n| n.parse::<u32>().ok())
    else {
        return WorkerStat::NotWorker;
    };
    let mut fields = stat[close + 1..].split_whitespace();
    let state = fields.next().and_then(|f| f.chars().next());
    let cpu = fields.nth(35).and_then(|f| f.parse::<u16>().ok());
    match (state, cpu) {
        (Some(state), Some(cpu)) => WorkerStat::Worker(Tid(idx), state, cpu),
        _ => WorkerStat::Malformed,
    }
}

/// Spawns one OS thread per client running the workload's phases; every
/// client of a barrier group finishes phase `p` before any starts
/// `p + 1`, mirroring the simulated clients' phase barrier.
#[allow(clippy::too_many_arguments)]
fn spawn_client_threads(
    engine: &Arc<ParEngine>,
    workload: &volcano_db::client::Workload,
    clients: usize,
    start_after: std::time::Duration,
    results: &Arc<Mutex<Vec<QueryResult>>>,
    remaining: &Arc<AtomicUsize>,
    finished_at: &Arc<Mutex<SimTime>>,
    errors: &Arc<Mutex<Vec<String>>>,
    t0: Instant,
) -> Vec<std::thread::JoinHandle<()>> {
    let barrier = Arc::new(Barrier::new(clients));
    (0..clients)
        .map(|idx| {
            let engine = Arc::clone(engine);
            let phases = materialize_phases(workload, idx);
            let barrier = Arc::clone(&barrier);
            let results = Arc::clone(results);
            let remaining = Arc::clone(remaining);
            let finished_at = Arc::clone(finished_at);
            let errors = Arc::clone(errors);
            std::thread::Builder::new()
                .name(format!("emca-client{idx}"))
                .spawn(move || {
                    if !start_after.is_zero() {
                        std::thread::sleep(start_after);
                    }
                    let mut mine = Vec::new();
                    let mut failed: Option<String> = None;
                    for phase in phases {
                        // Keep hitting the barrier even after a failure:
                        // peers block on every phase boundary.
                        barrier.wait();
                        if failed.is_some() {
                            continue;
                        }
                        for spec in phase {
                            let qid = engine.submit(Arc::new(build_query(&spec)), spec.tag());
                            match engine.wait_result(qid) {
                                Ok(r) => mine.push(r),
                                Err(e) => {
                                    failed = Some(format!("client {idx}: {e}"));
                                    break;
                                }
                            }
                        }
                    }
                    lock(&results).extend(mine);
                    if let Some(e) = failed {
                        lock(&errors).push(e);
                    }
                    let now = wall_now(t0);
                    let mut last = lock(&finished_at);
                    if now > *last {
                        *last = now;
                    }
                    remaining.fetch_sub(1, Ordering::SeqCst);
                })
                // emca-lint: allow(panic-freedom) — construction-time spawn failure (thread exhaustion) happens before the run starts; nothing to degrade to
                .expect("spawn client thread")
        })
        .collect()
}

/// Runs one experiment on the threads backend. Same contract as
/// [`crate::runner::run`]; called from there when
/// [`RunConfig::backend`] is [`Backend::Threads`](crate::Backend).
pub fn run_threads(config: RunConfig, data: &TpchData) -> RunOutput {
    let width = capacity();
    let os_baseline = config.alloc == Alloc::OsAll;
    // The OS baseline hands every client a worker (thread-per-client,
    // no elasticity); the mechanism runs a machine-width pool.
    let pool = if os_baseline {
        width.max(config.clients)
    } else {
        width
    };
    let base = Arc::new(BaseData::from_tpch(data));
    let engine = Arc::new(ParEngine::new(
        ParEngineConfig {
            n_workers: pool,
            initial_active: if os_baseline { pool } else { 1 },
            ..ParEngineConfig::default()
        },
        base,
    ));
    if let Some(plan) = &config.faults {
        engine.arm_faults(plan, config.scale.seed);
    }
    if config.alloc == Alloc::Sparse {
        engine.set_wake_order(&sparse_order(pool));
    }
    let mut controller =
        (!os_baseline).then(|| PoolController::new(pool_cfg(pool as u32, config.mech_interval)));

    let t0 = Instant::now();
    let results = Arc::new(Mutex::new(Vec::new()));
    let remaining = Arc::new(AtomicUsize::new(config.clients));
    let finished_at = Arc::new(Mutex::new(SimTime::ZERO));
    let errors = Arc::new(Mutex::new(Vec::new()));
    let handles = spawn_client_threads(
        &engine,
        &config.workload,
        config.clients,
        std::time::Duration::ZERO,
        &results,
        &remaining,
        &finished_at,
        &errors,
        t0,
    );

    let deadline = wall_deadline(config.deadline);
    let mut tracer = config.trace_sched.then(ProcTracer::new);
    let mut load_series = TimeSeries::new("cpu_load");
    let mut cores_series = TimeSeries::new("cores");
    let mut next_control = SimTime::ZERO;
    let mut next_sample = SimTime::ZERO;
    let mut ctl_busy = 0u64;
    let mut ctl_at = SimTime::ZERO;
    let mut sample_busy = 0u64;
    let mut sample_at = SimTime::ZERO;
    while remaining.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(POLL);
        let now = wall_now(t0);
        assert!(
            now.since(SimTime::ZERO) <= deadline,
            "{}",
            crate::timing::RunAborted {
                label: "run".to_string(),
                deadline_s: deadline.as_secs_f64(),
                hint: "RunConfig::deadline or EMCA_RUN_DEADLINE_S",
            }
        );
        if let Some(c) = controller.as_mut() {
            if now >= next_control {
                let busy = engine.busy_ns();
                let u = load_pct(
                    busy - ctl_busy,
                    engine.active(),
                    now.since(ctl_at).as_nanos(),
                );
                ctl_busy = busy;
                ctl_at = now;
                // Dead (fault-killed, not-yet-recovered) workers are
                // non-allocatable: clamp the controller's view first so
                // a grow decision never targets a corpse.
                c.note_capacity(engine.live_workers() as u32);
                let d = c.observe(now, u);
                engine.set_active(d.nalloc as usize);
                next_control = now + c.interval();
            }
        }
        if now >= next_sample {
            let busy = engine.busy_ns();
            let u = load_pct(
                busy - sample_busy,
                engine.active(),
                now.since(sample_at).as_nanos(),
            );
            sample_busy = busy;
            sample_at = now;
            load_series.push(now, u);
            cores_series.push(now, engine.active() as f64);
            next_sample = now + config.sample_every;
        }
        if let Some(tr) = tracer.as_mut() {
            if now >= tr.next {
                tr.sample(now);
                tr.next = now + TRACE_EVERY;
            }
        }
    }
    // Final sample so even a run shorter than the first poll tick
    // leaves non-empty load/cores series.
    {
        let now = wall_now(t0);
        let u = load_pct(
            engine.busy_ns() - sample_busy,
            engine.active(),
            now.since(sample_at).as_nanos(),
        );
        load_series.push(now, u);
        cores_series.push(now, engine.active() as f64);
    }
    let panicked = handles
        .into_iter()
        .map(|h| h.join())
        .filter(Result::is_err)
        .count();
    assert!(panicked == 0, "{panicked} client thread(s) panicked");
    let client_errors = std::mem::take(&mut *lock(&errors));
    // With a fault plan armed, failed queries are an expected outcome
    // and surface in [`RunOutput::errors`]; without one, any engine
    // error is a real defect and trips the tripwire as before.
    assert!(
        config.faults.is_some() || client_errors.is_empty(),
        "client queries failed in the engine: {client_errors:?}"
    );

    let results = match Arc::try_unwrap(results) {
        Ok(m) => m.into_inner().unwrap_or_else(PoisonError::into_inner),
        // Clients have all joined; a straggler Arc clone would be a
        // driver bug, but drain the data rather than unwind.
        Err(arc) => std::mem::take(&mut *lock(&arc)),
    };
    let wall = lock(&finished_at).since(SimTime::ZERO);
    let zero_hw = HwCounters::new(0, 0, 0);
    RunOutput {
        results,
        wall,
        hw_before: zero_hw.snapshot(),
        hw_after: zero_hw.snapshot(),
        sched: SchedStats::default(),
        engine: engine.stats(),
        imc_series: (0..4).map(|s| TimeSeries::new(format!("S{s}"))).collect(),
        ht_series: TimeSeries::new("HT"),
        load_series,
        cores_series,
        transitions: controller.map(|c| c.events).unwrap_or_default(),
        trace: tracer.map(|t| t.finish(wall_now(t0))),
        tomograph: engine.tomograph(),
        errors: client_errors,
        config,
    }
}

/// Per-tenant live state for [`run_tenants_threads`].
struct TenantLive {
    engine: Arc<ParEngine>,
    controller: PoolController,
    tid: elastic_core::TenantId,
    results: Arc<Mutex<Vec<QueryResult>>>,
    remaining: Arc<AtomicUsize>,
    finished_at: Arc<Mutex<SimTime>>,
    cores_series: TimeSeries,
    load_series: TimeSeries,
    qps_series: TimeSeries,
    next_control: SimTime,
    ctl_busy: u64,
    ctl_at: SimTime,
    sample_busy: u64,
    sample_at: SimTime,
    sample_completed: u64,
    control_steps: u64,
}

/// Runs a multi-tenant experiment on the threads backend: one real
/// worker pool per tenant, all machine-width, with a [`TenantArbiter`]
/// splitting the core budget — a tenant's active worker count is
/// exactly the cores it owns. SLA power/traffic budgets are not
/// measurable on real threads (violations report as zero); the core
/// ceiling is enforced through the arbiter's budget mode as in the
/// simulation.
pub fn run_tenants_threads(config: MultiTenantConfig, data: &TpchData) -> MultiTenantOutput {
    let width = capacity();
    let ntotal = width as u32;
    let base = Arc::new(BaseData::from_tpch(data));
    let mut arbiter = TenantArbiter::new(config.arbiter, ntotal);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    let errors = Arc::new(Mutex::new(Vec::new()));
    let mut live: Vec<TenantLive> = config
        .tenants
        .iter()
        .map(|t| {
            let tid = arbiter.register(t.name.clone(), t.weight, t.sla.max_cores);
            let engine = Arc::new(ParEngine::new(
                ParEngineConfig {
                    n_workers: width,
                    initial_active: 1,
                    ..ParEngineConfig::default()
                },
                Arc::clone(&base),
            ));
            if let Some(plan) = &config.faults {
                engine.arm_faults(plan, config.scale.seed);
            }
            let seed_core = (0..ntotal)
                .map(|c| CoreId(c as u16))
                .find(|&c| !arbiter.foreign_mask(tid).contains(c))
                // emca-lint: allow(panic-freedom) — register() rejects configs with more tenants than cores, so a free seed core always exists; tripwire on the driver thread before clients start
                .expect("register() guarantees a free core per tenant");
            arbiter.claim_initial(tid, seed_core);
            let results = Arc::new(Mutex::new(Vec::new()));
            let remaining = Arc::new(AtomicUsize::new(t.clients));
            let finished_at = Arc::new(Mutex::new(SimTime::ZERO));
            handles.extend(spawn_client_threads(
                &engine,
                &t.workload,
                t.clients,
                std::time::Duration::from_nanos(t.start_after.as_nanos()),
                &results,
                &remaining,
                &finished_at,
                &errors,
                t0,
            ));
            TenantLive {
                engine,
                controller: PoolController::new(pool_cfg(ntotal, config.mech_interval)),
                tid,
                results,
                remaining,
                finished_at,
                cores_series: TimeSeries::new(format!("{}_cores", t.name)),
                load_series: TimeSeries::new(format!("{}_load", t.name)),
                qps_series: TimeSeries::new(format!("{}_qps", t.name)),
                next_control: SimTime::ZERO + t.start_after,
                ctl_busy: 0,
                ctl_at: SimTime::ZERO,
                sample_busy: 0,
                sample_at: SimTime::ZERO,
                sample_completed: 0,
                control_steps: 0,
            }
        })
        .collect();

    let deadline = wall_deadline(config.deadline);
    let mut next_sample = SimTime::ZERO;
    let mut drain_until: Option<SimTime> = None;
    loop {
        std::thread::sleep(POLL);
        let now = wall_now(t0);
        let unfinished = live.iter().any(|l| l.remaining.load(Ordering::SeqCst) > 0);
        if unfinished {
            assert!(
                now.since(SimTime::ZERO) <= deadline,
                "{}",
                crate::timing::RunAborted {
                    label: "multi-tenant run".to_string(),
                    deadline_s: deadline.as_secs_f64(),
                    hint: "MultiTenantConfig::deadline or EMCA_RUN_DEADLINE_S",
                }
            );
        } else {
            let until = *drain_until.get_or_insert(now + config.drain);
            if now >= until {
                break;
            }
        }

        for l in live.iter_mut() {
            if now < l.next_control {
                continue;
            }
            let busy = l.engine.busy_ns();
            let u = load_pct(
                busy - l.ctl_busy,
                l.engine.active(),
                now.since(l.ctl_at).as_nanos(),
            );
            l.ctl_busy = busy;
            l.ctl_at = now;
            // Fault-killed, not-yet-recovered workers are not
            // allocatable; keep the controller's target inside the
            // live width.
            l.controller.note_capacity(l.engine.live_workers() as u32);
            let d = l.controller.observe(now, u);
            l.control_steps += 1;
            arbiter.note(l.tid, d.action == AllocAction::Allocate);
            let owned = arbiter.owned(l.tid);
            match d.action {
                AllocAction::Allocate => {
                    let candidate = (0..ntotal)
                        .map(|c| CoreId(c as u16))
                        .find(|&c| !owned.contains(c) && !arbiter.foreign_mask(l.tid).contains(c));
                    let granted = candidate.is_some_and(|c| arbiter.try_claim(l.tid, c));
                    if !granted {
                        if candidate.is_none() {
                            arbiter.denials += 1;
                        }
                        l.controller.resync(owned.count() as u32);
                    }
                }
                AllocAction::Release => {
                    let victim = (owned.count() > 1)
                        .then(|| owned.iter().max_by_key(|c| c.idx()))
                        .flatten();
                    match victim {
                        Some(v) => arbiter.release(l.tid, v),
                        None => l.controller.resync(1),
                    }
                }
                AllocAction::Hold => {}
            }
            if arbiter.must_yield(l.tid) && arbiter.owned(l.tid).count() > 1 {
                if let Some(victim) = arbiter.owned(l.tid).iter().max_by_key(|c| c.idx()) {
                    arbiter.release(l.tid, victim);
                    arbiter.yields += 1;
                    l.controller.resync(arbiter.owned(l.tid).count() as u32);
                }
            }
            l.engine.set_active(arbiter.owned(l.tid).count());
            l.next_control = now + l.controller.interval();
        }

        if now >= next_sample {
            for l in live.iter_mut() {
                let busy = l.engine.busy_ns();
                let u = load_pct(
                    busy - l.sample_busy,
                    l.engine.active(),
                    now.since(l.sample_at).as_nanos(),
                );
                let completed = l.engine.stats().queries_completed;
                let dt = now.since(l.sample_at).as_secs_f64();
                let qps = if dt > 0.0 {
                    (completed - l.sample_completed) as f64 / dt
                } else {
                    0.0
                };
                l.sample_busy = busy;
                l.sample_at = now;
                l.sample_completed = completed;
                l.load_series.push(now, u);
                l.cores_series
                    .push(now, arbiter.owned(l.tid).count() as f64);
                l.qps_series.push(now, qps);
            }
            next_sample = now + config.sample_every;
        }
    }
    // Close every tenant's record with one last control decision and
    // sample — a run shorter than the first poll tick must still show
    // the controller ran and leave non-empty series.
    let now = wall_now(t0);
    for l in live.iter_mut() {
        let busy = l.engine.busy_ns();
        let u = load_pct(
            busy - l.ctl_busy,
            l.engine.active(),
            now.since(l.ctl_at).as_nanos(),
        );
        l.controller.observe(now, u);
        l.control_steps += 1;
        l.load_series.push(now, u);
        l.cores_series
            .push(now, arbiter.owned(l.tid).count() as f64);
    }
    let panicked = handles
        .into_iter()
        .map(|h| h.join())
        .filter(Result::is_err)
        .count();
    assert!(panicked == 0, "{panicked} client thread(s) panicked");
    let client_errors = std::mem::take(&mut *lock(&errors));
    // Same policy as [`run_threads`]: expected under a fault plan,
    // tripwire without one.
    assert!(
        config.faults.is_some() || client_errors.is_empty(),
        "client queries failed in the engine: {client_errors:?}"
    );

    let tenants: Vec<TenantOutput> = config
        .tenants
        .iter()
        .zip(live)
        .map(|(t, l)| {
            let started_at = SimTime::ZERO + t.start_after;
            let finished = *lock(&l.finished_at);
            TenantOutput {
                config: t.clone(),
                results: match Arc::try_unwrap(l.results) {
                    Ok(m) => m.into_inner().unwrap_or_else(PoisonError::into_inner),
                    Err(arc) => std::mem::take(&mut *lock(&arc)),
                },
                cores_series: l.cores_series,
                load_series: l.load_series,
                qps_series: l.qps_series,
                started_at,
                finished_at: finished.max(started_at),
                sla_violations: 0,
                control_steps: l.control_steps,
            }
        })
        .collect();
    let wall = tenants
        .iter()
        .map(|t| t.finished_at)
        .max()
        .unwrap_or(SimTime::ZERO)
        .since(SimTime::ZERO);
    MultiTenantOutput {
        tenants,
        wall,
        ntotal,
        arbiter_denials: arbiter.denials,
        arbiter_yields: arbiter.yields,
        arbiter_ticks: 0,
        arbiter_ns: 0,
        errors: client_errors,
    }
}

/// Per-tenant live state for [`run_tenants_churn_threads`].
struct ChurnThreadLive {
    engine: Arc<ParEngine>,
    /// `None` on the static-partition baseline.
    controller: Option<PoolController>,
    /// Arbiter registration (elastic only).
    tid: Option<elastic_core::TenantId>,
    /// Fixed machine slice (static baseline only).
    static_slot: Option<usize>,
    results: Arc<Mutex<Vec<QueryResult>>>,
    remaining: Arc<AtomicUsize>,
    finished_at: Arc<Mutex<SimTime>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    cores_series: TimeSeries,
    load_series: TimeSeries,
    qps_series: TimeSeries,
    next_control: SimTime,
    ctl_busy: u64,
    ctl_at: SimTime,
    sample_busy: u64,
    sample_at: SimTime,
    sample_completed: u64,
    control_steps: u64,
    started_at: SimTime,
}

/// The threads mirror of [`crate::churn::run_tenants_churn`]: the same
/// admit-on-arrival / depart-on-completion lifecycle against real
/// worker pools. A departing tenant's client threads are joined, its
/// pool is dropped (shutting its workers down) and its arbiter slot is
/// deregistered, so cores redistribute exactly as on sim. Arbitration
/// cost is the wall-clock duration of each executed control block.
pub fn run_tenants_churn_threads(config: MultiTenantConfig, data: &TpchData) -> MultiTenantOutput {
    let width = capacity();
    let ntotal = width as u32;
    let n = config.tenants.len();
    let resident_cap = config.resident_cap.unwrap_or(n).clamp(1, width);
    let slice = width / resident_cap;
    let base = Arc::new(BaseData::from_tpch(data));
    let mut arbiter = TenantArbiter::new(config.arbiter, ntotal);
    let t0 = Instant::now();
    let errors = Arc::new(Mutex::new(Vec::new()));

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (config.tenants[i].start_after, i));
    let mut next_pending = 0usize;

    let mut lives: Vec<Option<ChurnThreadLive>> = (0..n).map(|_| None).collect();
    let mut outputs: Vec<Option<TenantOutput>> = (0..n).map(|_| None).collect();
    let mut static_free: Vec<bool> = vec![true; resident_cap];
    let mut n_live = 0usize;
    let mut arbiter_ticks = 0u64;
    let mut arbiter_ns = 0u64;

    let deadline = wall_deadline(config.deadline);
    let mut next_sample = SimTime::ZERO;
    loop {
        std::thread::sleep(POLL);
        let now = wall_now(t0);

        // Departures: all clients done → join them, close the record,
        // drop the pool (workers shut down) and free the slot.
        for i in 0..n {
            let done = lives[i]
                .as_ref()
                .is_some_and(|l| l.remaining.load(Ordering::SeqCst) == 0);
            if !done {
                continue;
            }
            if let Some(l) = lives[i].take() {
                let panicked = l
                    .handles
                    .into_iter()
                    .map(|h| h.join())
                    .filter(Result::is_err)
                    .count();
                assert!(panicked == 0, "{panicked} client thread(s) panicked");
                if let Some(tid) = l.tid {
                    arbiter.deregister(tid);
                }
                if let Some(k) = l.static_slot {
                    static_free[k] = true;
                }
                let finished = *lock(&l.finished_at);
                outputs[i] = Some(TenantOutput {
                    config: config.tenants[i].clone(),
                    results: match Arc::try_unwrap(l.results) {
                        Ok(m) => m.into_inner().unwrap_or_else(PoisonError::into_inner),
                        Err(arc) => std::mem::take(&mut *lock(&arc)),
                    },
                    cores_series: l.cores_series,
                    load_series: l.load_series,
                    qps_series: l.qps_series,
                    started_at: l.started_at,
                    finished_at: finished.max(l.started_at),
                    sla_violations: 0,
                    control_steps: l.control_steps,
                });
                n_live -= 1;
                // `l.engine` drops here: the last pool Arc (clients
                // joined above), so its workers shut down.
            }
        }

        // Admissions, in arrival order, gated on a resident slot and —
        // on the elastic path — a free core for the initial claim.
        while next_pending < n && n_live < resident_cap {
            let i = order[next_pending];
            let tcfg = &config.tenants[i];
            if now.since(SimTime::ZERO) < tcfg.start_after {
                break;
            }
            if !config.static_partition && arbiter.free_cores() == 0 {
                break;
            }
            let engine = Arc::new(ParEngine::new(
                ParEngineConfig {
                    n_workers: width,
                    initial_active: 1,
                    ..ParEngineConfig::default()
                },
                Arc::clone(&base),
            ));
            if let Some(plan) = &config.faults {
                engine.arm_faults(plan, config.scale.seed);
            }
            let (controller, tid, static_slot) = if config.static_partition {
                let Some(k) = static_free.iter().position(|&f| f) else {
                    // Unreachable: n_live < resident_cap means a slot
                    // is free; bail out of admissions defensively.
                    break;
                };
                static_free[k] = false;
                let hi = if k + 1 == resident_cap {
                    width
                } else {
                    (k + 1) * slice
                };
                engine.set_active(hi - k * slice);
                (None, None, Some(k))
            } else {
                let tid = arbiter.register(tcfg.name.clone(), tcfg.weight, tcfg.sla.max_cores);
                let seed_core = (0..ntotal)
                    .map(|c| CoreId(c as u16))
                    .find(|&c| !arbiter.foreign_mask(tid).contains(c))
                    // emca-lint: allow(panic-freedom) — admission is gated on free_cores() > 0 above, so a free seed core exists; tripwire on the driver thread
                    .expect("admission gate guarantees a free core");
                arbiter.claim_initial(tid, seed_core);
                (
                    Some(PoolController::new(pool_cfg(ntotal, config.mech_interval))),
                    Some(tid),
                    None,
                )
            };
            let results = Arc::new(Mutex::new(Vec::new()));
            let remaining = Arc::new(AtomicUsize::new(tcfg.clients));
            let finished_at = Arc::new(Mutex::new(SimTime::ZERO));
            let handles = spawn_client_threads(
                &engine,
                &tcfg.workload,
                tcfg.clients,
                std::time::Duration::ZERO,
                &results,
                &remaining,
                &finished_at,
                &errors,
                t0,
            );
            lives[i] = Some(ChurnThreadLive {
                engine,
                controller,
                tid,
                static_slot,
                results,
                remaining,
                finished_at,
                handles,
                cores_series: TimeSeries::new(format!("{}_cores", tcfg.name)),
                load_series: TimeSeries::new(format!("{}_load", tcfg.name)),
                qps_series: TimeSeries::new(format!("{}_qps", tcfg.name)),
                next_control: now,
                ctl_busy: 0,
                ctl_at: now,
                sample_busy: 0,
                sample_at: now,
                sample_completed: 0,
                control_steps: 0,
                started_at: now,
            });
            next_pending += 1;
            n_live += 1;
        }

        if outputs.iter().all(|o| o.is_some()) {
            break;
        }
        assert!(
            now.since(SimTime::ZERO) <= deadline,
            "{}",
            crate::timing::RunAborted {
                label: "churn run".to_string(),
                deadline_s: deadline.as_secs_f64(),
                hint: "MultiTenantConfig::deadline or EMCA_RUN_DEADLINE_S",
            }
        );

        // Control blocks, timed per executed tick: the measured span is
        // the full arbitration path (observe + claim/release/yield).
        for l in lives.iter_mut().flatten() {
            let Some(controller) = l.controller.as_mut() else {
                continue;
            };
            let Some(tid) = l.tid else { continue };
            if now < l.next_control {
                continue;
            }
            let t_tick = Instant::now();
            let busy = l.engine.busy_ns();
            let u = load_pct(
                busy - l.ctl_busy,
                l.engine.active(),
                now.since(l.ctl_at).as_nanos(),
            );
            l.ctl_busy = busy;
            l.ctl_at = now;
            controller.note_capacity(l.engine.live_workers() as u32);
            let d = controller.observe(now, u);
            l.control_steps += 1;
            arbiter.note(tid, d.action == AllocAction::Allocate);
            let owned = arbiter.owned(tid);
            match d.action {
                AllocAction::Allocate => {
                    let candidate = (0..ntotal)
                        .map(|c| CoreId(c as u16))
                        .find(|&c| !owned.contains(c) && !arbiter.foreign_mask(tid).contains(c));
                    let granted = candidate.is_some_and(|c| arbiter.try_claim(tid, c));
                    if !granted {
                        if candidate.is_none() {
                            arbiter.denials += 1;
                        }
                        controller.resync(owned.count() as u32);
                    }
                }
                AllocAction::Release => {
                    let victim = (owned.count() > 1)
                        .then(|| owned.iter().max_by_key(|c| c.idx()))
                        .flatten();
                    match victim {
                        Some(v) => arbiter.release(tid, v),
                        None => controller.resync(1),
                    }
                }
                AllocAction::Hold => {}
            }
            if arbiter.must_yield(tid) && arbiter.owned(tid).count() > 1 {
                if let Some(victim) = arbiter.owned(tid).iter().max_by_key(|c| c.idx()) {
                    arbiter.release(tid, victim);
                    arbiter.yields += 1;
                    controller.resync(arbiter.owned(tid).count() as u32);
                }
            }
            l.engine.set_active(arbiter.owned(tid).count());
            l.next_control = now + controller.interval();
            arbiter_ns += t_tick.elapsed().as_nanos() as u64;
            arbiter_ticks += 1;
        }

        if now >= next_sample {
            for l in lives.iter_mut().flatten() {
                let busy = l.engine.busy_ns();
                let u = load_pct(
                    busy - l.sample_busy,
                    l.engine.active(),
                    now.since(l.sample_at).as_nanos(),
                );
                let completed = l.engine.stats().queries_completed;
                let dt = now.since(l.sample_at).as_secs_f64();
                let qps = if dt > 0.0 {
                    (completed - l.sample_completed) as f64 / dt
                } else {
                    0.0
                };
                l.sample_busy = busy;
                l.sample_at = now;
                l.sample_completed = completed;
                l.load_series.push(now, u);
                l.cores_series.push(now, l.engine.active() as f64);
                l.qps_series.push(now, qps);
            }
            next_sample = now + config.sample_every;
        }
    }

    let client_errors = std::mem::take(&mut *lock(&errors));
    // Same policy as [`run_threads`]: expected under a fault plan,
    // tripwire without one.
    assert!(
        config.faults.is_some() || client_errors.is_empty(),
        "client queries failed in the engine: {client_errors:?}"
    );
    let tenants: Vec<TenantOutput> = outputs.into_iter().flatten().collect();
    let wall = tenants
        .iter()
        .map(|t| t.finished_at)
        .max()
        .unwrap_or(SimTime::ZERO)
        .since(SimTime::ZERO);
    MultiTenantOutput {
        tenants,
        wall,
        ntotal,
        arbiter_denials: arbiter.denials,
        arbiter_yields: arbiter.yields,
        arbiter_ticks,
        arbiter_ns,
        errors: client_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::{parse_worker_stat, WorkerStat};
    use os_sim::Tid;

    /// A stat line for `comm` with `state` and `processor` in the field
    /// positions the kernel uses (processor is the 37th field after the
    /// comm's closing parenthesis).
    fn stat_line(comm: &str, state: &str, cpu: &str) -> String {
        let filler = "0 ".repeat(35);
        format!("4242 ({comm}) {state} {filler}{cpu} 0 0")
    }

    #[test]
    fn parses_a_running_worker() {
        let line = stat_line("emca-worker3", "R", "7");
        assert_eq!(parse_worker_stat(&line), WorkerStat::Worker(Tid(3), 'R', 7));
    }

    #[test]
    fn comm_with_spaces_and_parens_is_not_a_worker() {
        // The comm field may contain anything, including parentheses;
        // fields must be counted from the LAST closing parenthesis.
        let line = stat_line("evil) R comm (x", "S", "2");
        assert_eq!(parse_worker_stat(&line), WorkerStat::NotWorker);
    }

    #[test]
    fn other_threads_are_not_workers() {
        assert_eq!(
            parse_worker_stat(&stat_line("emca-client0", "R", "1")),
            WorkerStat::NotWorker
        );
        assert_eq!(
            parse_worker_stat(&stat_line("bash", "S", "0")),
            WorkerStat::NotWorker
        );
        assert_eq!(parse_worker_stat("no parens at all"), WorkerStat::NotWorker);
    }

    #[test]
    fn truncated_worker_lines_are_malformed_not_fatal() {
        // A worker-named line missing the processor field must degrade
        // to Malformed (skip-and-count), never panic or misparse.
        assert_eq!(
            parse_worker_stat("4242 (emca-worker1) S 0 0"),
            WorkerStat::Malformed
        );
        assert_eq!(
            parse_worker_stat("4242 (emca-worker1)"),
            WorkerStat::Malformed
        );
        // Non-numeric processor field.
        let line = stat_line("emca-worker2", "R", "x");
        assert_eq!(parse_worker_stat(&line), WorkerStat::Malformed);
    }
}
