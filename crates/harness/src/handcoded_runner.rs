//! Runner for the hand-coded C Q6 baseline of §II-B (Fig. 4).

use emca_metrics::{SimDuration, SimTime};
use numa_sim::{CoreId, HwSnapshot, Machine, MachineConfig};
use os_sim::{CoreMask, Kernel, KernelConfig, ThreadState, Tid};
use std::rc::Rc;
use volcano_db::handcoded::{pump_spawns, CAffinity, HandcodedClient, HandcodedData, Spawner};
use volcano_db::tpch::TpchData;

/// Output of one hand-coded sweep point.
pub struct HandcodedOutput {
    /// Affinity policy.
    pub affinity: CAffinity,
    /// Concurrent clients.
    pub clients: usize,
    /// All `(response, revenue)` runs.
    pub runs: Vec<(SimDuration, f64)>,
    /// Wall time of the whole experiment.
    pub wall: SimDuration,
    /// Counters before.
    pub hw_before: HwSnapshot,
    /// Counters after.
    pub hw_after: HwSnapshot,
}

impl HandcodedOutput {
    /// Queries per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.runs.len() as f64 / self.wall.as_secs_f64()
        }
    }

    /// HT bytes moved.
    pub fn ht_bytes(&self) -> u64 {
        let a: u64 = self.hw_after.link_bytes.iter().sum();
        let b: u64 = self.hw_before.link_bytes.iter().sum();
        a.saturating_sub(b)
    }

    /// Minor faults taken.
    pub fn minor_faults(&self) -> u64 {
        let a: u64 = self.hw_after.minor_faults.iter().sum();
        let b: u64 = self.hw_before.minor_faults.iter().sum();
        a.saturating_sub(b)
    }

    /// HT traffic rate in bytes/s.
    pub fn ht_rate(&self) -> f64 {
        self.wall.rate_per_sec(self.ht_bytes())
    }

    /// Minor faults per second.
    pub fn fault_rate(&self) -> f64 {
        self.wall.rate_per_sec(self.minor_faults())
    }
}

/// Runs `clients` concurrent hand-coded Q6 programs, each forking a team
/// of `team_size` threads per execution, `iterations` times.
pub fn run_handcoded(
    data: &TpchData,
    affinity: CAffinity,
    clients: usize,
    team_size: usize,
    iterations: u32,
    deadline: SimDuration,
) -> HandcodedOutput {
    let kernel_cfg = KernelConfig::default();
    let machine = Machine::new(MachineConfig::opteron_4x4(), kernel_cfg.tick);
    let mut kernel = Kernel::new(machine, kernel_cfg);
    let group = kernel.create_group(CoreMask::all(kernel.machine().topology()));

    let hc_data = Rc::new(HandcodedData::load(kernel.machine_mut(), data, CoreId(0)));
    let spawner: Spawner = Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut logs = Vec::new();
    for c in 0..clients {
        let (body, log) = HandcodedClient::new(
            Rc::clone(&hc_data),
            affinity,
            team_size,
            group,
            iterations,
            (c as u64 + 1) * 1_000_000,
            Rc::clone(&spawner),
        );
        kernel.spawn(format!("hc-client{c}"), group, None, Box::new(body));
        logs.push(log);
    }

    let hw_before = kernel.machine().counters().snapshot();
    let start = kernel.now();
    let coordinators: Vec<Tid> = (0..kernel.n_threads() as u32)
        .map(Tid)
        .filter(|&t| kernel.thread_name(t).starts_with("hc-client"))
        .collect();
    let hard_deadline = start + deadline;
    let mut end = None;
    while kernel.now() < hard_deadline {
        if coordinators
            .iter()
            .all(|&t| kernel.thread_state(t) == ThreadState::Finished)
        {
            end = Some(kernel.now());
            break;
        }
        kernel.run_tick();
        pump_spawns(&mut kernel, &spawner);
    }
    assert!(
        end.is_some(),
        "hand-coded run hit the deadline with clients unfinished"
    );
    let end: SimTime = end.expect("checked above");

    let runs = logs.iter().flat_map(|l| l.borrow().runs.clone()).collect();
    HandcodedOutput {
        affinity,
        clients,
        runs,
        wall: end.since(start),
        hw_before,
        hw_after: kernel.machine().counters().snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_db::tpch::{queries::YEAR_DAYS, TpchScale};

    fn reference_revenue(data: &TpchData) -> f64 {
        let qty = data.column("lineitem", "l_quantity").as_f64();
        let ship = data.column("lineitem", "l_shipdate").as_i64();
        let disc = data.column("lineitem", "l_discount").as_f64();
        let price = data.column("lineitem", "l_extendedprice").as_f64();
        let d0 = 5.0 * YEAR_DAYS;
        let d1 = d0 + YEAR_DAYS;
        (0..qty.len())
            .filter(|&i| {
                let s = ship[i] as f64;
                s >= d0 && s < d1 && disc[i] >= 0.06 && disc[i] <= 0.08 && qty[i] < 24.0
            })
            .map(|i| price[i] * disc[i])
            .sum()
    }

    #[test]
    fn handcoded_q6_computes_correct_revenue() {
        let data = TpchData::generate(TpchScale::test_tiny());
        let out = run_handcoded(&data, CAffinity::Os, 1, 4, 1, SimDuration::from_secs(60));
        assert_eq!(out.runs.len(), 1);
        let want = reference_revenue(&data);
        let got = out.runs[0].1;
        assert!(
            (got - want).abs() <= want.abs() * 1e-9 + 1e-6,
            "revenue mismatch: got {got} want {want}"
        );
        assert!(out.throughput_qps() > 0.0);
    }

    #[test]
    fn dense_affinity_stays_on_node0() {
        let data = TpchData::generate(TpchScale::test_tiny());
        let out = run_handcoded(&data, CAffinity::Dense, 2, 4, 1, SimDuration::from_secs(60));
        assert_eq!(out.runs.len(), 2);
        // All compute on node 0's cores (0..4); loader also ran there.
        let busy: Vec<u64> = out
            .hw_after
            .busy_ns
            .iter()
            .zip(&out.hw_before.busy_ns)
            .map(|(&a, &b)| a - b)
            .collect();
        let off_node0: u64 = busy[4..].iter().sum();
        assert_eq!(off_node0, 0, "dense teams escaped node 0: {busy:?}");
        // Dense over local data crosses no links.
        assert_eq!(out.ht_bytes(), 0);
    }

    #[test]
    fn sparse_affinity_crosses_links() {
        let data = TpchData::generate(TpchScale::test_tiny());
        let out = run_handcoded(
            &data,
            CAffinity::Sparse,
            1,
            8,
            1,
            SimDuration::from_secs(60),
        );
        // Teams on nodes 1..3 read node-0-homed data: HT traffic appears.
        assert!(out.ht_bytes() > 0, "sparse must generate link traffic");
        assert!(out.fault_rate() >= 0.0);
    }
}
