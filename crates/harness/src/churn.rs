//! Serverless tenant churn: the `churn=` axis of
//! [`ExperimentSpec`](crate::ExperimentSpec) (`--churn` / `EMCA_CHURN`)
//! and the runner that executes it.
//!
//! The classic `mt_*` runner installs every tenant up front and keeps
//! them resident for the whole run. The DBaaS shape the ROADMAP targets
//! is different: dozens–hundreds of tenants *churn* through a machine
//! that can only hold a few at a time. [`ChurnSpec`] describes that
//! population (`64:resident=12:skew=0.8:spread=6`), [`ChurnPlan`]
//! expands it — deterministically, from the experiment seed — into
//! per-tenant demand drawn from a Zipf distribution over a shuffled
//! rank order, and [`run_tenants_churn`] executes the lifecycle:
//!
//! - **arrive**: a tenant is admitted when its arrival time has passed
//!   *and* a resident slot plus a seed core are available; admission is
//!   a cold start (its own engine is built, data loaded, workers
//!   started and the first core claimed at admit time, so first-query
//!   latency includes the cold-start cost);
//! - **depart**: when a tenant's clients finish, its results are
//!   drained, its [`TenantArbiter`] registration is dropped
//!   ([`TenantArbiter::deregister`]) and its cores return to the free
//!   pool for redistribution — the arbiter slot itself is reused by a
//!   later arrival;
//! - **queue**: arrivals beyond the resident cap wait, serverless
//!   style; queue time is observable as `started_at - start_after`.
//!
//! With [`MultiTenantConfig::static_partition`] the same lifecycle runs
//! against a *static partitioner* — each resident slot owns a fixed
//! 1/cap slice of the machine and no elastic mechanism runs. That is
//! the baseline the `mt_churn` `--check` gate compares adaptive
//! arbitration against.
//!
//! Per-tenant SLA core budgets still reach the arbiter (BudgetCapped
//! ceilings hold); the power/traffic SLA governor wrap of the resident
//! runner is not applied here — churn tenants are generated
//! unconstrained.
//!
//! Arbitration cost is measured for real: every control tick executed
//! by a resident mechanism is timed on the host clock and accumulated
//! into [`MultiTenantOutput::arbiter_ticks`] / `arbiter_ns`. The
//! measurement never feeds back into the simulation, so sim results
//! stay a pure function of the seed.

use crate::backend::Backend;
use crate::config::Warmup;
use crate::spec::SpecError;
use crate::tenants::{MultiTenantConfig, MultiTenantOutput, TenantOutput, TenantRunConfig};
use elastic_core::{ElasticMechanism, MechanismConfig, PolicyId, TenantArbiter, TenantBinding};
use emca_metrics::{SimDuration, SimTime, TimeSeries};
use numa_sim::{CoreId, Machine, MachineConfig};
use os_sim::{CoreMask, Kernel, KernelConfig, ThreadState, Tid};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::rc::Rc;
// emca-lint: allow(determinism) — host-clock probe for arbitration overhead; measurement-only, never feeds a sim decision
use std::time::Instant;
use volcano_db::client::{spawn_clients, SharedLog, Workload};
use volcano_db::exec::engine::{Engine, EngineConfig};
use volcano_db::tpch::{QuerySpec, TpchData};

/// Default cap on simultaneously resident tenants.
const DEFAULT_RESIDENT: u32 = 8;
/// Default Zipf exponent for the demand distribution (0 = uniform).
const DEFAULT_SKEW: f64 = 0.8;
/// Default arrival spread in simulated seconds.
const DEFAULT_SPREAD: f64 = 4.0;

/// The parsed `churn=` axis: `<n>[:resident=<r>][:skew=<s>][:spread=<secs>]`.
///
/// `n` is the total tenant population over the run's lifetime;
/// `resident` caps how many are installed at once (the "machine size"
/// in slots); `skew` is the Zipf exponent shaping per-tenant demand
/// (0 = uniform, larger = heavier head); `spread` is the window of
/// simulated seconds the arrivals are scattered over.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Total tenants over the run's lifetime.
    pub n: u32,
    /// Resident-set cap; `None` defaults to [`ChurnSpec::resident`].
    pub resident: Option<u32>,
    /// Zipf exponent; `None` defaults to [`ChurnSpec::skew`].
    pub skew: Option<f64>,
    /// Arrival spread (simulated seconds); `None` defaults to
    /// [`ChurnSpec::spread`].
    pub spread: Option<f64>,
}

impl ChurnSpec {
    /// A churn population of `n` tenants with every knob defaulted.
    pub fn new(n: u32) -> Self {
        ChurnSpec {
            n,
            resident: None,
            skew: None,
            spread: None,
        }
    }

    /// The resident-set cap (defaulted).
    pub fn resident(&self) -> u32 {
        self.resident.unwrap_or(DEFAULT_RESIDENT)
    }

    /// The Zipf exponent (defaulted).
    pub fn skew(&self) -> f64 {
        self.skew.unwrap_or(DEFAULT_SKEW)
    }

    /// The arrival spread in simulated seconds (defaulted).
    pub fn spread(&self) -> f64 {
        self.spread.unwrap_or(DEFAULT_SPREAD)
    }

    /// Parses `<n>[:resident=<r>][:skew=<s>][:spread=<secs>]`.
    pub(crate) fn parse(value: &str) -> Result<Self, SpecError> {
        let bad = |reason: &str| SpecError::malformed("churn", value, reason);
        let mut parts = value.split(':');
        let head = parts.next().unwrap_or("");
        let n: u32 = head
            .parse()
            .map_err(|_| bad("tenant count must be an integer"))?;
        if n == 0 {
            return Err(bad("tenant count must be at least 1"));
        }
        let mut spec = ChurnSpec::new(n);
        for part in parts {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| bad("options take the form key=value"))?;
            match key {
                "resident" => {
                    let r: u32 = val
                        .parse()
                        .map_err(|_| bad("resident must be an integer"))?;
                    if r == 0 {
                        return Err(bad("resident must be at least 1"));
                    }
                    spec.resident = Some(r);
                }
                "skew" => {
                    let s: f64 = val.parse().map_err(|_| bad("skew must be a number"))?;
                    if !s.is_finite() || s < 0.0 {
                        return Err(bad("skew must be finite and non-negative"));
                    }
                    spec.skew = Some(s);
                }
                "spread" => {
                    let s: f64 = val.parse().map_err(|_| bad("spread must be a number"))?;
                    if !s.is_finite() || s < 0.0 {
                        return Err(bad("spread must be finite and non-negative"));
                    }
                    spec.spread = Some(s);
                }
                _ => return Err(bad("unknown option (want resident, skew or spread)")),
            }
        }
        Ok(spec)
    }

    /// Expands the spec into a concrete, seeded plan. `max_clients` and
    /// `max_iters` bound the per-tenant demand the Zipf curve scales
    /// inside (the heaviest rank gets the maxima, the tail gets 1).
    pub fn plan(&self, seed: u64, max_clients: usize, max_iters: u32) -> ChurnPlan {
        let n = self.n as usize;
        // Decorrelate from the workload-generator streams that also key
        // off the experiment seed.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
        // Zipf ranks 1..=n, shuffled so rank is independent of arrival
        // order (Fisher–Yates).
        let mut ranks: Vec<u32> = (1..=self.n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            ranks.swap(i, j);
        }
        let skew = self.skew();
        let spread = self.spread();
        let mut tenants: Vec<ChurnTenant> = (0..n)
            .map(|i| {
                // z ∈ (0, 1]: 1 for rank 1, 1/rank^skew down the tail.
                let z = 1.0 / f64::from(ranks[i]).powf(skew);
                let clients = (1.0 + z * (max_clients.saturating_sub(1)) as f64).round() as usize;
                let iters = (1.0 + z * f64::from(max_iters.saturating_sub(1))).round() as u32;
                let weight = 1 + (z * 3.0).round() as u32;
                let arrival = if spread > 0.0 {
                    SimDuration::from_secs_f64(rng.random_range(0.0..1.0) * spread)
                } else {
                    SimDuration::ZERO
                };
                ChurnTenant {
                    name: String::new(),
                    rank: ranks[i],
                    clients,
                    iters,
                    weight,
                    arrival,
                }
            })
            .collect();
        tenants.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.rank.cmp(&b.rank)));
        for (i, t) in tenants.iter_mut().enumerate() {
            t.name = format!("t{i:03}");
        }
        ChurnPlan {
            tenants,
            resident: self.resident() as usize,
        }
    }
}

impl fmt::Display for ChurnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.n)?;
        if let Some(r) = self.resident {
            write!(f, ":resident={r}")?;
        }
        if let Some(s) = self.skew {
            write!(f, ":skew={s}")?;
        }
        if let Some(s) = self.spread {
            write!(f, ":spread={s}")?;
        }
        Ok(())
    }
}

/// One tenant of a [`ChurnPlan`]: Zipf rank, scaled demand, arrival.
#[derive(Clone, Debug)]
pub struct ChurnTenant {
    /// `t000`-style name, in arrival order.
    pub name: String,
    /// Zipf rank (1 = heaviest).
    pub rank: u32,
    /// Concurrent clients.
    pub clients: usize,
    /// Query iterations per client.
    pub iters: u32,
    /// Arbiter fair-share weight (heavier tenants weigh more).
    pub weight: u32,
    /// Arrival offset from run start.
    pub arrival: SimDuration,
}

/// A fully expanded churn plan — a pure function of
/// `(ChurnSpec, seed, max_clients, max_iters)`, identical on both
/// backends.
#[derive(Clone, Debug)]
pub struct ChurnPlan {
    /// Tenants in arrival order.
    pub tenants: Vec<ChurnTenant>,
    /// Resident-set cap.
    pub resident: usize,
}

impl ChurnPlan {
    /// Exact total completions the plan must produce (the zero-lost
    /// accounting gate: every client runs a fixed `Repeat` workload).
    pub fn expected_completions(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| t.clients as u64 * u64::from(t.iters))
            .sum()
    }

    /// The plan as runner tenant configs (Q6 `Repeat` workloads, so
    /// completion counts are exact).
    pub fn tenant_configs(&self) -> Vec<TenantRunConfig> {
        self.tenants
            .iter()
            .map(|t| {
                let workload = Workload::Repeat {
                    spec: QuerySpec::Q6 { variant: 0 },
                    iterations: t.iters,
                };
                TenantRunConfig::new(t.name.clone(), workload, t.clients)
                    .with_weight(t.weight)
                    .with_start_after(t.arrival)
            })
            .collect()
    }
}

/// Per-tenant live state while resident.
struct ChurnLive {
    group: os_sim::GroupId,
    /// Never read after construction, but owns the tenant's address
    /// space — dropped at departure with the rest of the record.
    #[allow(dead_code)]
    engine: Engine,
    /// `None` on the static-partition baseline.
    mechanism: Option<ElasticMechanism>,
    /// Arbiter registration (elastic only).
    tid: Option<elastic_core::TenantId>,
    /// Fixed machine slice (static baseline only).
    static_slot: Option<usize>,
    logs: Vec<SharedLog>,
    client_tids: Vec<Tid>,
    load_sampler: os_sim::LoadSampler,
    cores_series: TimeSeries,
    load_series: TimeSeries,
    qps_series: TimeSeries,
    seen: Vec<usize>,
    window_completions: u64,
    started_at: SimTime,
}

/// Runs a churn experiment on the sim backend (dispatching to the
/// threads mirror when [`MultiTenantConfig::backend`] says so). Reached
/// from [`crate::tenants::run_tenants`] whenever `resident_cap` or
/// `static_partition` is set.
pub fn run_tenants_churn(config: MultiTenantConfig, data: &TpchData) -> MultiTenantOutput {
    if config.backend == Backend::Threads {
        return crate::runner_threads::run_tenants_churn_threads(config, data);
    }
    let kernel_cfg = KernelConfig::default();
    let machine = Machine::new(MachineConfig::opteron_4x4(), kernel_cfg.tick);
    let mut kernel = Kernel::new(machine, kernel_cfg);
    let topo = kernel.machine().topology().clone();
    let ntotal = topo.n_cores() as u32;
    let n = config.tenants.len();
    let resident_cap = config.resident_cap.unwrap_or(n).clamp(1, ntotal as usize);
    let slice = ntotal as usize / resident_cap;
    let arbiter = TenantArbiter::shared(config.arbiter, ntotal);

    // Admission queue: tenant indices by (arrival, index).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (config.tenants[i].start_after, i));
    let mut next_pending = 0usize;

    let mut lives: Vec<Option<ChurnLive>> = (0..n).map(|_| None).collect();
    let mut outputs: Vec<Option<TenantOutput>> = (0..n).map(|_| None).collect();
    let mut static_free: Vec<bool> = vec![true; resident_cap];
    let mut n_live = 0usize;
    let mut errors: Vec<String> = Vec::new();
    let mut arbiter_ticks = 0u64;
    let mut arbiter_ns = 0u64;

    let start = kernel.now();
    let deadline = start + config.deadline;
    let mut next_sample = start + config.sample_every;
    let mut drained_from: Option<SimTime> = None;
    let mut last_finish: Option<SimTime> = None;

    loop {
        let now = kernel.now();
        if now >= deadline {
            break;
        }

        // Departures: a resident tenant whose clients all finished
        // leaves — results drained, arbiter slot deregistered, cores
        // freed for redistribution. The departed group keeps its (now
        // inert) workers; they are blocked with no submitters, so they
        // never contend for the reclaimed cores.
        for i in 0..n {
            let done = lives[i].as_ref().is_some_and(|l| {
                l.client_tids
                    .iter()
                    .all(|&tid| kernel.thread_state(tid) == ThreadState::Finished)
            });
            if !done {
                continue;
            }
            if let Some(l) = lives[i].take() {
                let tcfg = &config.tenants[i];
                let results = volcano_db::client::drain_results(&l.logs);
                errors.extend(
                    volcano_db::client::drain_errors(&l.logs)
                        .into_iter()
                        .map(|e| format!("{}: {e}", tcfg.name)),
                );
                if let Some(tid) = l.tid {
                    arbiter.borrow_mut().deregister(tid);
                }
                if let Some(k) = l.static_slot {
                    static_free[k] = true;
                }
                outputs[i] = Some(TenantOutput {
                    config: tcfg.clone(),
                    results,
                    cores_series: l.cores_series,
                    load_series: l.load_series,
                    qps_series: l.qps_series,
                    started_at: l.started_at,
                    finished_at: now,
                    sla_violations: 0,
                    control_steps: l.mechanism.as_ref().map_or(0, |m| m.steps),
                });
                n_live -= 1;
                last_finish = Some(now);
            }
        }

        // Admissions, in arrival order: need a resident slot and (on
        // the elastic path) at least one free core for the initial
        // claim — otherwise the arrival queues until a departure.
        while next_pending < n && n_live < resident_cap {
            let i = order[next_pending];
            let tcfg = &config.tenants[i];
            if now.since(start) < tcfg.start_after {
                break;
            }
            if !config.static_partition && arbiter.borrow().free_cores() == 0 {
                break;
            }
            // Cold start: build the tenant's engine, load its data and
            // start workers at admit time.
            let group = kernel.create_group(CoreMask::all(&topo));
            let engine = Engine::new(
                EngineConfig {
                    flavor: config.flavor,
                    memo_capacity: 4096,
                    faults: config.faults.clone(),
                    fault_seed: config.scale.seed,
                    ..EngineConfig::default()
                },
                topo.n_nodes(),
            );
            let loader = match config.warmup {
                Warmup::Loader => Some(CoreId(0)),
                Warmup::Interleave | Warmup::None => None,
            };
            engine.load(kernel.machine_mut(), data, loader);
            if config.warmup == Warmup::Interleave {
                engine.interleave_base(kernel.machine_mut());
            }
            engine.start_workers(&mut kernel, group);

            let (mechanism, tid, static_slot) = if config.static_partition {
                let k = static_free
                    .iter()
                    .position(|&f| f)
                    .expect("n_live < resident_cap guarantees a free slot");
                static_free[k] = false;
                let lo = k * slice;
                let hi = if k + 1 == resident_cap {
                    ntotal as usize
                } else {
                    lo + slice
                };
                let mask = CoreMask::from_cores((lo..hi).map(|c| CoreId(c as u16)));
                kernel.set_group_mask(group, mask);
                (None, None, Some(k))
            } else {
                let tid = arbiter.borrow_mut().register(
                    tcfg.name.clone(),
                    tcfg.weight,
                    tcfg.sla.max_cores,
                );
                let mut mech_cfg =
                    MechanismConfig::cpu_load().with_mode_latency(tcfg.policy.name());
                if let Some(interval) = config.mech_interval {
                    mech_cfg.interval = interval;
                    mech_cfg.min_interval = interval;
                    mech_cfg.actuation_latency = mech_cfg.actuation_latency.min(interval / 2);
                }
                if tcfg.policy == PolicyId::HillClimb {
                    mech_cfg.saturation_guard = None;
                }
                let binding = TenantBinding::new(Rc::clone(&arbiter), tid);
                let mech = ElasticMechanism::install_tenant(
                    &mut kernel,
                    group,
                    engine.space(),
                    tcfg.policy.build(),
                    mech_cfg,
                    binding,
                );
                (Some(mech), Some(tid), None)
            };

            let before = kernel.n_threads();
            let logs = spawn_clients(
                &mut kernel,
                &engine,
                group,
                tcfg.clients,
                tcfg.workload.clone(),
            );
            let client_tids: Vec<Tid> = (before as u32..kernel.n_threads() as u32)
                .map(Tid)
                .collect();
            let seen = vec![0; logs.len()];
            let load_sampler = os_sim::LoadSampler::new(&kernel, group);
            lives[i] = Some(ChurnLive {
                group,
                engine,
                mechanism,
                tid,
                static_slot,
                logs,
                client_tids,
                load_sampler,
                cores_series: TimeSeries::new(format!("{}_cores", tcfg.name)),
                load_series: TimeSeries::new(format!("{}_load", tcfg.name)),
                qps_series: TimeSeries::new(format!("{}_qps", tcfg.name)),
                seen,
                window_completions: 0,
                started_at: now,
            });
            next_pending += 1;
            n_live += 1;
        }

        let all_done = outputs.iter().all(|o| o.is_some());
        if all_done {
            let from = *drained_from.get_or_insert(now);
            if now.since(from) >= config.drain {
                break;
            }
        }
        kernel.run_tick();

        // Control: poll each resident mechanism, timing executed
        // control ticks on the host clock (measurement only — the
        // elapsed time is recorded, never consulted).
        for l in lives.iter_mut().flatten() {
            if let Some(m) = l.mechanism.as_mut() {
                let before = m.steps;
                // emca-lint: allow(determinism) — host-clock probe for arbitration overhead; measurement-only, never feeds a sim decision
                let t_tick = Instant::now();
                m.poll(&mut kernel);
                if m.steps > before {
                    arbiter_ns += t_tick.elapsed().as_nanos() as u64;
                    arbiter_ticks += m.steps - before;
                }
            }
            for (log, cursor) in l.logs.iter().zip(&mut l.seen) {
                let log = log.borrow();
                for r in &log.results[*cursor..] {
                    if let Some(m) = l.mechanism.as_mut() {
                        m.note_response(r.response());
                    }
                    l.window_completions += 1;
                }
                *cursor = log.results.len();
            }
        }

        if kernel.now() >= next_sample {
            let now = kernel.now();
            let dt = config.sample_every.as_secs_f64();
            for l in lives.iter_mut().flatten() {
                l.cores_series
                    .push(now, kernel.group_mask(l.group).count() as f64);
                let sample = l.load_sampler.sample(&kernel);
                l.load_series.push(now, sample.group_load_pct());
                l.qps_series.push(now, l.window_completions as f64 / dt);
                l.window_completions = 0;
            }
            next_sample = now + config.sample_every;
        }
    }
    let end = kernel.now();
    assert!(
        outputs.iter().all(|o| o.is_some()),
        "churn run hit the deadline ({:?}) with tenants unfinished — raise \
         MultiTenantConfig::deadline",
        config.deadline
    );

    let (denials, yields) = {
        let arb = arbiter.borrow();
        (arb.denials, arb.yields)
    };
    let tenants: Vec<TenantOutput> = outputs.into_iter().flatten().collect();
    MultiTenantOutput {
        tenants,
        wall: last_finish.unwrap_or(end).since(start),
        ntotal,
        arbiter_denials: denials,
        arbiter_yields: yields,
        arbiter_ticks,
        arbiter_ns,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::ArbiterMode;
    use volcano_db::tpch::TpchScale;

    #[test]
    fn churn_spec_parses_and_round_trips() {
        let full = ChurnSpec::parse("64:resident=12:skew=0.8:spread=6").unwrap();
        assert_eq!(full.n, 64);
        assert_eq!(full.resident(), 12);
        assert_eq!(full.skew(), 0.8);
        assert_eq!(full.spread(), 6.0);
        assert_eq!(full.to_string().parse::<u32>().ok(), None);
        assert_eq!(ChurnSpec::parse(&full.to_string()).unwrap(), full);

        let bare = ChurnSpec::parse("16").unwrap();
        assert_eq!(bare, ChurnSpec::new(16));
        assert_eq!(bare.to_string(), "16");
        assert_eq!(bare.resident(), DEFAULT_RESIDENT);
    }

    #[test]
    fn churn_spec_rejects_malformed_input() {
        for bad in [
            "",
            "0",
            "x",
            "8:resident=0",
            "8:resident=x",
            "8:skew=-1",
            "8:skew=nan",
            "8:spread=-2",
            "8:wat=1",
            "8:resident",
        ] {
            assert!(ChurnSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn plans_are_deterministic_and_exactly_sized() {
        let spec = ChurnSpec::parse("64:skew=1.0").unwrap();
        let a = spec.plan(42, 4, 3);
        let b = spec.plan(42, 4, 3);
        assert_eq!(a.tenants.len(), 64);
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.rank, y.rank);
            assert_eq!(x.clients, y.clients);
            assert_eq!(x.iters, y.iters);
            assert_eq!(x.weight, y.weight);
            assert_eq!(x.arrival, y.arrival);
        }
        let c = spec.plan(43, 4, 3);
        assert!(
            a.tenants
                .iter()
                .zip(&c.tenants)
                .any(|(x, y)| { x.rank != y.rank || x.arrival != y.arrival }),
            "a different seed must reshuffle the plan"
        );
        // Arrival order is the naming order.
        for w in a.tenants.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        // Every rank appears exactly once.
        let mut ranks: Vec<u32> = a.tenants.iter().map(|t| t.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_skew_shapes_demand() {
        let spec = ChurnSpec::parse("32:skew=1.2").unwrap();
        let plan = spec.plan(7, 8, 5);
        let heavy = plan.tenants.iter().find(|t| t.rank == 1).unwrap();
        let light = plan.tenants.iter().find(|t| t.rank == 32).unwrap();
        assert_eq!(heavy.clients, 8);
        assert_eq!(heavy.iters, 5);
        assert!(heavy.weight > light.weight);
        assert!(light.clients <= 2);
        // Uniform (skew 0) gives everyone the maxima.
        let flat = ChurnSpec::parse("8:skew=0").unwrap().plan(7, 4, 3);
        assert!(flat.tenants.iter().all(|t| t.clients == 4 && t.iters == 3));
        // Expected completions are an exact sum.
        assert_eq!(flat.expected_completions(), 8 * 4 * 3);
    }

    #[test]
    fn churn_run_completes_with_zero_lost_queries() {
        let data = TpchData::generate(TpchScale::test_tiny());
        let spec = ChurnSpec::parse("6:resident=3:spread=0.05").unwrap();
        let plan = spec.plan(42, 2, 2);
        let cfg = MultiTenantConfig::new(ArbiterMode::FairShare, plan.tenant_configs())
            .with_scale(data.scale)
            .with_mech_interval(SimDuration::from_millis(2))
            .with_resident_cap(plan.resident);
        let out = run_tenants_churn(cfg, &data);
        assert_eq!(out.tenants.len(), 6);
        let total: u64 = out.tenants.iter().map(|t| t.results.len() as u64).sum();
        assert_eq!(total, plan.expected_completions(), "zero lost queries");
        assert!(out.arbiter_ticks > 0, "control ticks must be measured");
        assert!(out.errors.is_empty());
    }

    #[test]
    fn static_partition_pins_each_tenant_to_its_slice() {
        let data = TpchData::generate(TpchScale::test_tiny());
        let spec = ChurnSpec::parse("4:resident=4:spread=0").unwrap();
        let plan = spec.plan(1, 2, 1);
        let cfg = MultiTenantConfig::new(ArbiterMode::FairShare, plan.tenant_configs())
            .with_scale(data.scale)
            .with_resident_cap(plan.resident)
            .with_static_partition();
        let out = run_tenants_churn(cfg, &data);
        let total: u64 = out.tenants.iter().map(|t| t.results.len() as u64).sum();
        assert_eq!(total, plan.expected_completions());
        // 16 cores / 4 slots: nobody ever exceeds their 4-core slice.
        for t in &out.tenants {
            assert!(
                t.cores_max() <= 4.0,
                "{} exceeded its static slice: {}",
                t.config.name,
                t.cores_max()
            );
        }
        assert_eq!(out.arbiter_ticks, 0, "no mechanism runs on the baseline");
    }

    #[test]
    fn arrivals_beyond_the_cap_queue_until_a_departure() {
        let data = TpchData::generate(TpchScale::test_tiny());
        let spec = ChurnSpec::parse("4:resident=1:spread=0").unwrap();
        let plan = spec.plan(3, 1, 1);
        let cfg = MultiTenantConfig::new(ArbiterMode::FairShare, plan.tenant_configs())
            .with_scale(data.scale)
            .with_mech_interval(SimDuration::from_millis(2))
            .with_resident_cap(1);
        let out = run_tenants_churn(cfg, &data);
        // One resident at a time: admissions are serialized, so the
        // active windows never overlap.
        let mut spans: Vec<(SimTime, SimTime)> = out
            .tenants
            .iter()
            .map(|t| (t.started_at, t.finished_at))
            .collect();
        spans.sort_by_key(|s| s.0);
        for w in spans.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "resident_cap=1 must serialize tenants: {spans:?}"
            );
        }
    }
}
