//! The scenario registry — every figure, table and diagnostic of the
//! reproduction as a named, runnable unit.
//!
//! A [`Scenario`] is setup + sweep + declared CSV schema behind one
//! `run(&ExperimentSpec)` entry point. The [`ScenarioRegistry`] maps
//! names to scenarios so one CLI (`emca list` / `emca run <name>`) can
//! drive all of them, and user code can [`ScenarioRegistry::register`]
//! its own (see `examples/custom_policy.rs`). Declared schemas double as
//! the validation source for `emca check`, via [`validate_csv`].

use crate::spec::{ExperimentSpec, SpecError};
use std::collections::BTreeMap;
use std::path::Path;

/// Every non-universal spec key a scenario may declare support for —
/// the default for scenarios that do not narrow their surface.
pub const ALL_SCENARIO_KEYS: &[&str] = &[
    "flavor",
    "policy",
    "users",
    "iters",
    "sf",
    "warmup",
    "guard",
    "interval_ms",
    "tenants",
    "backend",
    "arrival",
    "duration",
    "admission",
    "sla_ms",
];

/// A scenario failure (fidelity violation, missing data, bad config).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError(pub String);

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ScenarioError {}

impl From<String> for ScenarioError {
    fn from(s: String) -> Self {
        ScenarioError(s)
    }
}

impl From<&str> for ScenarioError {
    fn from(s: &str) -> Self {
        ScenarioError(s.to_string())
    }
}

/// A named experiment: one of the paper's figures/tables, or anything
/// user code wants driveable through the same surface.
pub trait Scenario {
    /// Registry key (`fig04`, `tab_summary`, …).
    fn name(&self) -> &str;

    /// One-line description for `emca list`.
    fn about(&self) -> &str;

    /// CSV files this scenario writes: `(file name, header)`. Used by
    /// `emca check` and the scenario smoke tests; empty for scenarios
    /// that only print.
    fn csv_schemas(&self) -> &[(&'static str, &'static str)] {
        &[]
    }

    /// The non-universal spec keys this scenario honours. A spec
    /// pinning any other key is rejected with
    /// [`SpecError::Unsupported`] before the run starts — a scenario
    /// silently ignoring a pinned field ran the wrong experiment
    /// without a word. Defaults to every key, so custom scenarios opt
    /// into narrowing rather than being rejected by default.
    fn supported_keys(&self) -> &[&'static str] {
        ALL_SCENARIO_KEYS
    }

    /// Runs the scenario under the given spec.
    fn run(&self, spec: &ExperimentSpec) -> Result<(), ScenarioError>;
}

/// A scenario built from plain parts — the registration vehicle for
/// both the built-in figures and user scenarios.
pub struct FnScenario {
    /// Registry key.
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// Declared CSV outputs.
    pub schemas: &'static [(&'static str, &'static str)],
    /// Honoured non-universal spec keys (see
    /// [`Scenario::supported_keys`]).
    pub keys: &'static [&'static str],
    /// The body.
    pub run: fn(&ExperimentSpec) -> Result<(), ScenarioError>,
}

impl Scenario for FnScenario {
    fn name(&self) -> &str {
        self.name
    }

    fn about(&self) -> &str {
        self.about
    }

    fn csv_schemas(&self) -> &[(&'static str, &'static str)] {
        self.schemas
    }

    fn supported_keys(&self) -> &[&'static str] {
        self.keys
    }

    fn run(&self, spec: &ExperimentSpec) -> Result<(), ScenarioError> {
        (self.run)(spec)
    }
}

/// Name-ordered collection of scenarios.
#[derive(Default)]
pub struct ScenarioRegistry {
    items: BTreeMap<String, Box<dyn Scenario>>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a scenario; duplicate names are an error.
    pub fn register(&mut self, scenario: Box<dyn Scenario>) -> Result<(), ScenarioError> {
        let name = scenario.name().to_string();
        if self.items.contains_key(&name) {
            return Err(ScenarioError(format!("duplicate scenario name {name:?}")));
        }
        self.items.insert(name, scenario);
        Ok(())
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Scenario> {
        self.items.get(name).map(|s| s.as_ref())
    }

    /// All names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.items.keys().map(|s| s.as_str()).collect()
    }

    /// All scenarios, name-ordered.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scenario> {
        self.items.values().map(|s| s.as_ref())
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Checks every key `spec` pins against `name`'s declared support;
    /// the first unsupported pinned key is a hard
    /// [`SpecError::Unsupported`]. An unknown scenario name passes —
    /// [`ScenarioRegistry::run`] reports it with the valid-name list.
    pub fn validate_spec(&self, name: &str, spec: &ExperimentSpec) -> Result<(), SpecError> {
        let Some(s) = self.get(name) else {
            return Ok(());
        };
        let supported = s.supported_keys();
        for (key, value) in spec.set_keys() {
            if !supported.contains(&key) {
                return Err(SpecError::Unsupported {
                    scenario: name.to_string(),
                    key: key.to_string(),
                    value,
                });
            }
        }
        Ok(())
    }

    /// Clears every pinned key `name` does not support and returns the
    /// dropped `(key, value)` pairs — the `--prune-unsupported` path
    /// for generic sweep drivers that pass one spec to every scenario.
    pub fn prune_unsupported(
        &self,
        name: &str,
        spec: &mut ExperimentSpec,
    ) -> Vec<(&'static str, String)> {
        let Some(s) = self.get(name) else {
            return Vec::new();
        };
        let supported = s.supported_keys();
        let dropped: Vec<(&'static str, String)> = spec
            .set_keys()
            .into_iter()
            .filter(|(key, _)| !supported.contains(key))
            .collect();
        for (key, _) in &dropped {
            spec.clear(key);
        }
        dropped
    }

    /// Runs `name` under `spec`; an unknown name is an error listing
    /// the valid scenarios (no panic), and a spec pinning a key the
    /// scenario ignores is rejected (see
    /// [`ScenarioRegistry::validate_spec`]).
    pub fn run(&self, name: &str, spec: &ExperimentSpec) -> Result<(), ScenarioError> {
        match self.get(name) {
            Some(s) => {
                self.validate_spec(name, spec)
                    .map_err(|e| ScenarioError(e.to_string()))?;
                s.run(spec)
            }
            None => Err(ScenarioError(format!(
                "unknown scenario {name:?} (valid: {})",
                self.names().join(", ")
            ))),
        }
    }
}

/// Counts RFC-4180-ish CSV fields (the quoting `Table::to_csv` emits).
fn n_fields(line: &str) -> usize {
    let mut n = 1;
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => n += 1,
            _ => {}
        }
    }
    n
}

/// Validates one CSV file against its declared header: the header line
/// must match exactly and every data row must have the header's column
/// count. This is the `csv_check` validation as a library call, shared
/// by `emca check` and the scenario smoke tests.
pub fn validate_csv(path: &Path, header: &str) -> Result<(), String> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let content = std::fs::read_to_string(path).map_err(|e| format!("{name}: unreadable ({e})"))?;
    let mut lines = content.lines();
    match lines.next() {
        Some(first) if first == header => {}
        Some(first) => {
            return Err(format!(
                "{name}: header mismatch\n  expected: {header}\n  found:    {first}"
            ))
        }
        None => return Err(format!("{name}: empty file")),
    }
    let want = n_fields(header);
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let got = n_fields(line);
        if got != want {
            return Err(format!(
                "{name}: row {} has {got} columns, header has {want}",
                i + 2
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop(name: &'static str) -> Box<dyn Scenario> {
        Box::new(FnScenario {
            name,
            about: "test scenario",
            schemas: &[],
            keys: ALL_SCENARIO_KEYS,
            run: |_| Ok(()),
        })
    }

    #[test]
    fn register_get_and_list() {
        let mut r = ScenarioRegistry::new();
        assert!(r.is_empty());
        r.register(noop("beta")).unwrap();
        r.register(noop("alpha")).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.names(), vec!["alpha", "beta"], "names are sorted");
        assert!(r.get("alpha").is_some());
        assert!(r.get("gamma").is_none());
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut r = ScenarioRegistry::new();
        r.register(noop("x")).unwrap();
        let err = r.register(noop("x")).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn unknown_scenario_error_lists_valid_names() {
        let mut r = ScenarioRegistry::new();
        r.register(noop("fig04")).unwrap();
        r.register(noop("tab_summary")).unwrap();
        let err = r.run("fig99", &ExperimentSpec::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("fig99"), "{msg}");
        assert!(
            msg.contains("fig04") && msg.contains("tab_summary"),
            "{msg}"
        );
    }

    #[test]
    fn run_dispatches() {
        let mut r = ScenarioRegistry::new();
        r.register(Box::new(FnScenario {
            name: "fails",
            about: "always fails",
            schemas: &[],
            keys: ALL_SCENARIO_KEYS,
            run: |_| Err("boom".into()),
        }))
        .unwrap();
        assert_eq!(
            r.run("fails", &ExperimentSpec::default()),
            Err(ScenarioError("boom".into()))
        );
    }

    #[test]
    fn unsupported_pinned_keys_are_rejected_not_ignored() {
        let mut r = ScenarioRegistry::new();
        r.register(Box::new(FnScenario {
            name: "narrow",
            about: "supports only sf",
            schemas: &[],
            keys: &["sf"],
            run: |_| Ok(()),
        }))
        .unwrap();
        let spec: ExperimentSpec = "scenario=narrow sf=0.1 seed=7 check=1".parse().unwrap();
        assert_eq!(
            r.validate_spec("narrow", &spec),
            Ok(()),
            "universal keys pass"
        );
        assert!(r.run("narrow", &spec).is_ok());

        let spec: ExperimentSpec = "scenario=narrow sf=0.1 users=4".parse().unwrap();
        let err = r.validate_spec("narrow", &spec).unwrap_err();
        assert_eq!(
            err,
            SpecError::Unsupported {
                scenario: "narrow".into(),
                key: "users".into(),
                value: "4".into(),
            }
        );
        let err = r.run("narrow", &spec).unwrap_err();
        assert!(err.to_string().contains("users=4"), "{err}");

        // Unknown scenario names pass validation; `run` reports them.
        assert_eq!(r.validate_spec("ghost", &spec), Ok(()));
    }

    #[test]
    fn prune_unsupported_clears_and_reports() {
        let mut r = ScenarioRegistry::new();
        r.register(Box::new(FnScenario {
            name: "narrow",
            about: "supports only sf",
            schemas: &[],
            keys: &["sf"],
            run: |_| Ok(()),
        }))
        .unwrap();
        let mut spec: ExperimentSpec = "scenario=narrow sf=0.1 users=4 backend=threads"
            .parse()
            .unwrap();
        let dropped = r.prune_unsupported("narrow", &mut spec);
        assert_eq!(
            dropped,
            vec![
                ("users", "4".to_string()),
                ("backend", "threads".to_string())
            ]
        );
        assert_eq!(r.validate_spec("narrow", &spec), Ok(()));
        assert_eq!(spec.sf, Some(0.1), "supported keys survive the prune");
        assert!(r.prune_unsupported("ghost", &mut spec).is_empty());
    }

    #[test]
    fn csv_validation_catches_drift() {
        let dir = std::env::temp_dir().join("emca_scenario_validate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ok = dir.join("ok.csv");
        std::fs::write(&ok, "a,b,c\n1,2,3\n").unwrap();
        assert_eq!(validate_csv(&ok, "a,b,c"), Ok(()));
        assert!(validate_csv(&ok, "a,b").unwrap_err().contains("header"));
        let ragged = dir.join("ragged.csv");
        std::fs::write(&ragged, "a,b,c\n1,2\n").unwrap();
        assert!(validate_csv(&ragged, "a,b,c")
            .unwrap_err()
            .contains("2 columns"));
        let quoted = dir.join("quoted.csv");
        std::fs::write(&quoted, "a,b\n\"x,y\",2\n").unwrap();
        assert_eq!(validate_csv(&quoted, "a,b"), Ok(()));
        assert!(validate_csv(&dir.join("missing.csv"), "a").is_err());
        let _ = std::fs::remove_dir_all(dir);
    }
}
