//! The experiment runner: builds the whole simulated stack from a
//! [`RunConfig`], drives it to completion, and collects every metric the
//! paper's figures need.

use crate::config::{Alloc, RunConfig};
use elastic_core::{ElasticMechanism, MechanismConfig, PolicyId, TransitionEvent};
use emca_metrics::{SimDuration, TimeSeries};
use numa_sim::{HwSnapshot, Machine, MachineConfig};
use os_sim::{CoreMask, Kernel, KernelConfig, SchedStats, SchedTrace, ThreadState, Tid};
use volcano_db::client::{drain_results, spawn_clients};
use volcano_db::exec::engine::{Engine, EngineConfig, EngineStats, QueryResult};
use volcano_db::exec::tomograph::Tomograph;
use volcano_db::tpch::TpchData;

/// Everything measured during one run.
pub struct RunOutput {
    /// The configuration that produced it.
    pub config: RunConfig,
    /// Every completed query.
    pub results: Vec<QueryResult>,
    /// Simulated time from start to the last client finishing.
    pub wall: SimDuration,
    /// Hardware counters at workload start.
    pub hw_before: HwSnapshot,
    /// Hardware counters at workload end.
    pub hw_after: HwSnapshot,
    /// Scheduler statistics (migrations, steals...).
    pub sched: SchedStats,
    /// Engine statistics (tasks, queries...).
    pub engine: EngineStats,
    /// Per-socket memory throughput (GB/s), one series per socket.
    pub imc_series: Vec<TimeSeries>,
    /// Machine-wide HT traffic (GB/s).
    pub ht_series: TimeSeries,
    /// DBMS-group CPU load (%).
    pub load_series: TimeSeries,
    /// Allocated cores over time.
    pub cores_series: TimeSeries,
    /// Mechanism transition log (empty for the OS baseline).
    pub transitions: Vec<TransitionEvent>,
    /// Scheduler spans (when tracing was enabled).
    pub trace: Option<SchedTrace>,
    /// Per-operator statistics.
    pub tomograph: Tomograph,
    /// Query failures surfaced by the engine, one rendered
    /// [`QueryError`](volcano_db::exec::QueryError) per failed query
    /// (the threads backend prefixes `"client <n>: "`). Empty on
    /// fault-free runs; under a fault plan a failed query lands here
    /// instead of silently aliasing an unfinished one.
    pub errors: Vec<String>,
}

impl RunOutput {
    /// Per-socket L3 load-miss deltas.
    pub fn l3_misses_per_socket(&self) -> Vec<u64> {
        delta(&self.hw_after.l3_misses, &self.hw_before.l3_misses)
    }

    /// Per-socket IMC byte deltas.
    pub fn imc_bytes_per_socket(&self) -> Vec<u64> {
        delta(&self.hw_after.imc_bytes, &self.hw_before.imc_bytes)
    }

    /// Machine-wide HT byte delta.
    pub fn ht_bytes(&self) -> u64 {
        delta(&self.hw_after.link_bytes, &self.hw_before.link_bytes)
            .iter()
            .sum()
    }

    /// Machine-wide minor-fault delta.
    pub fn minor_faults(&self) -> u64 {
        delta(&self.hw_after.minor_faults, &self.hw_before.minor_faults)
            .iter()
            .sum()
    }

    /// Per-core busy-time deltas (ns).
    pub fn busy_ns(&self) -> Vec<u64> {
        delta(&self.hw_after.busy_ns, &self.hw_before.busy_ns)
    }

    /// Queries per second over the measured wall time.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.results.len() as f64 / self.wall.as_secs_f64()
        }
    }

    /// Mean response time across all queries.
    pub fn mean_response(&self) -> SimDuration {
        if self.results.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = self.results.iter().map(|r| r.response()).sum();
        total / self.results.len() as u64
    }

    /// Mean HT traffic rate over the run (bytes/s).
    pub fn ht_rate(&self) -> f64 {
        self.wall.rate_per_sec(self.ht_bytes())
    }

    /// Minor faults per second over the run.
    pub fn fault_rate(&self) -> f64 {
        self.wall.rate_per_sec(self.minor_faults())
    }
}

fn delta(after: &[u64], before: &[u64]) -> Vec<u64> {
    after
        .iter()
        .zip(before)
        .map(|(&a, &b)| a.saturating_sub(b))
        .collect()
}

/// The simulated stack one run executes on: kernel, DBMS thread group,
/// and a loaded engine with its workers started. Shared between the
/// closed-loop runner ([`run`]) and the serving layer
/// ([`crate::serve`]).
pub(crate) struct SimStack {
    pub kernel: Kernel,
    pub group: os_sim::GroupId,
    pub engine: Engine,
}

/// Builds the simulated machine, engine, and worker group for `config`.
pub(crate) fn build_sim_stack(config: &RunConfig, data: &TpchData) -> SimStack {
    let kernel_cfg = KernelConfig::default();
    let machine = Machine::new(MachineConfig::opteron_4x4(), kernel_cfg.tick);
    let mut kernel = Kernel::new(machine, kernel_cfg);
    if config.trace_sched {
        kernel.enable_trace();
    }

    let group = kernel.create_group(CoreMask::all(kernel.machine().topology()));
    let engine = Engine::new(
        EngineConfig {
            flavor: config.flavor,
            memo_capacity: 4096,
            faults: config.faults.clone(),
            fault_seed: config.scale.seed,
            ..EngineConfig::default()
        },
        kernel.machine().topology().n_nodes(),
    );
    // The paper measures a warm, long-running server; base-data homing is
    // an explicit policy applied identically to every flavor (see
    // [`Warmup`]). `Loader` reproduces Fig. 18(a)'s single-node placement,
    // `Interleave` spreads segments round-robin, `None` leaves pages
    // unhomed so the first queries place them (cold-start ablation).
    let loader = match config.warmup {
        crate::config::Warmup::Loader => Some(numa_sim::CoreId(0)),
        crate::config::Warmup::Interleave | crate::config::Warmup::None => None,
    };
    engine.load(kernel.machine_mut(), data, loader);
    if config.warmup == crate::config::Warmup::Interleave {
        engine.interleave_base(kernel.machine_mut());
    }
    engine.start_workers(&mut kernel, group);
    SimStack {
        kernel,
        group,
        engine,
    }
}

/// Installs the elastic mechanism `config` asks for (none for the OS
/// baseline), with the guard/interval/mode-latency overrides applied.
pub(crate) fn build_mechanism(
    config: &RunConfig,
    kernel: &mut Kernel,
    group: os_sim::GroupId,
    engine: &Engine,
) -> Option<ElasticMechanism> {
    let policy_spec: Option<(&'static str, Option<PolicyId>)> = match &config.custom_policy {
        Some(factory) => Some((factory.name(), None)),
        None => config.alloc.policy_id().map(|id| (id.name(), Some(id))),
    };
    policy_spec.map(|(name, id)| {
        let mut mech_cfg = match config.metric {
            elastic_core::MetricKind::HtImcRatio => MechanismConfig::ht_imc(),
            metric => MechanismConfig {
                metric,
                ..MechanismConfig::cpu_load()
            },
        }
        .with_mode_latency(name);
        if let Some(interval) = config.mech_interval {
            // Pinned interval: disables both the AIMD adaptation and the
            // service-time scaling (min == max == the override).
            mech_cfg.interval = interval;
            mech_cfg.min_interval = interval;
            mech_cfg.actuation_latency = mech_cfg.actuation_latency.min(interval / 2);
        }
        // The hill climber finds the LONC knee from throughput feedback;
        // running it under the tuned Eq. 1 guard would mask exactly the
        // behaviour it exists to replace, so the guard defaults off for
        // it (an explicit `mech_guard` still wins).
        if id == Some(PolicyId::HillClimb) {
            mech_cfg.saturation_guard = None;
        }
        if let Some(guard) = config.mech_guard {
            mech_cfg.saturation_guard = guard;
        }
        let policy = match (&config.custom_policy, id) {
            (Some(factory), _) => factory.build(),
            (None, Some(id)) => id.build(),
            (None, None) => unreachable!("policy_spec guarantees a source"),
        };
        ElasticMechanism::install(kernel, group, engine.space(), policy, mech_cfg)
    })
}

/// Runs one experiment. `data` is shared across runs of a sweep so
/// generation cost is paid once.
pub fn run(config: RunConfig, data: &TpchData) -> RunOutput {
    if config.backend == crate::backend::Backend::Threads {
        return crate::runner_threads::run_threads(config, data);
    }
    let SimStack {
        mut kernel,
        group,
        engine,
    } = build_sim_stack(&config, data);
    let mut mechanism = build_mechanism(&config, &mut kernel, group, &engine);

    let logs = spawn_clients(
        &mut kernel,
        &engine,
        group,
        config.clients,
        config.workload.clone(),
    );
    let hw_before = kernel.machine().counters().snapshot();
    let start = kernel.now();

    let n_sockets = kernel.machine().topology().n_nodes();
    let mut imc_series: Vec<TimeSeries> = (0..n_sockets)
        .map(|s| TimeSeries::new(format!("S{s}")))
        .collect();
    let mut ht_series = TimeSeries::new("HT");
    let mut load_series = TimeSeries::new("cpu_load");
    let mut cores_series = TimeSeries::new("cores");
    let mut load_sampler = os_sim::LoadSampler::new(&kernel, group);
    let mut prev_imc = hw_before.imc_bytes.clone();
    let mut prev_ht: u64 = hw_before.link_bytes.iter().sum();
    let mut next_sample = start + config.sample_every;

    let deadline = start + config.deadline;
    let client_tids: Vec<Tid> = (0..kernel.n_threads() as u32)
        .map(Tid)
        .filter(|&t| kernel.thread_name(t).starts_with("client"))
        .collect();

    // Completed-result cursors per client log, for feeding observed
    // response times into the mechanism's interval scaler.
    let mut seen: Vec<usize> = vec![0; logs.len()];

    let mut finished_at = None;
    while kernel.now() < deadline {
        let all_done = client_tids
            .iter()
            .all(|&t| kernel.thread_state(t) == ThreadState::Finished);
        if all_done {
            finished_at = Some(kernel.now());
            break;
        }
        kernel.run_tick();
        if let Some(m) = mechanism.as_mut() {
            m.poll(&mut kernel);
            // Feed completed responses unconditionally: they drive the
            // interval scaler (inert when the interval is pinned) and the
            // completion counter behind `Policy::observe` (hill climbing).
            for (log, cursor) in logs.iter().zip(&mut seen) {
                let log = log.borrow();
                for r in &log.results[*cursor..] {
                    m.note_response(r.response());
                }
                *cursor = log.results.len();
            }
        }
        if kernel.now() >= next_sample {
            let now = kernel.now();
            let dt = config.sample_every.as_secs_f64();
            let imc = kernel.machine().counters().imc_bytes.snapshot();
            for (s, series) in imc_series.iter_mut().enumerate() {
                let gbps = (imc[s].saturating_sub(prev_imc[s])) as f64 / dt / 1e9;
                series.push(now, gbps);
            }
            prev_imc = imc;
            let ht: u64 = kernel
                .machine()
                .counters()
                .link_bytes
                .snapshot()
                .iter()
                .sum();
            ht_series.push(now, (ht.saturating_sub(prev_ht)) as f64 / dt / 1e9);
            prev_ht = ht;
            load_series.push(now, load_sampler.sample(&kernel).group_load_pct());
            cores_series.push(now, kernel.group_mask(group).count() as f64);
            next_sample = now + config.sample_every;
        }
    }
    let end = finished_at.unwrap_or_else(|| kernel.now());
    assert!(
        finished_at.is_some(),
        "{}",
        crate::timing::RunAborted {
            label: "run".to_string(),
            deadline_s: config.deadline.as_secs_f64(),
            hint: "RunConfig::deadline",
        }
    );

    let hw_after = kernel.machine().counters().snapshot();
    let results = drain_results(&logs);
    let errors = volcano_db::client::drain_errors(&logs);
    let sched = kernel.stats();
    let engine_stats = engine.stats();
    let tomograph = engine.core_ref().tomograph.clone();
    let trace = config.trace_sched.then(|| kernel.take_trace());
    let transitions = mechanism.map(|m| m.events).unwrap_or_default();

    RunOutput {
        config,
        results,
        wall: end.since(start),
        hw_before,
        hw_after,
        sched,
        engine: engine_stats,
        imc_series,
        ht_series,
        load_series,
        cores_series,
        transitions,
        trace,
        tomograph,
        errors,
    }
}

/// Sweeps the same workload across the four allocation policies
/// (OS/Dense/Sparse/Adaptive), as most paper figures require.
pub fn run_all_allocs(base: &RunConfig, data: &TpchData) -> Vec<RunOutput> {
    Alloc::all()
        .into_iter()
        .map(|alloc| {
            let mut cfg = base.clone();
            cfg.alloc = alloc;
            run(cfg, data)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_db::client::Workload;
    use volcano_db::tpch::{QuerySpec, TpchScale};

    fn tiny_data() -> TpchData {
        TpchData::generate(TpchScale::test_tiny())
    }

    fn q6_workload(iters: u32) -> Workload {
        Workload::Repeat {
            spec: QuerySpec::Q6 { variant: 0 },
            iterations: iters,
        }
    }

    #[test]
    fn os_baseline_runs_to_completion() {
        let data = tiny_data();
        let cfg = RunConfig::new(Alloc::OsAll, 2, q6_workload(2)).with_scale(data.scale);
        let out = run(cfg, &data);
        assert_eq!(out.results.len(), 4);
        assert!(out.wall > SimDuration::ZERO);
        assert!(out.throughput_qps() > 0.0);
        assert!(out.imc_bytes_per_socket().iter().sum::<u64>() > 0);
        assert!(out.transitions.is_empty(), "baseline has no mechanism");
    }

    #[test]
    fn adaptive_runs_and_logs_transitions() {
        let data = tiny_data();
        let cfg = RunConfig::new(Alloc::Adaptive, 4, q6_workload(3))
            .with_scale(data.scale)
            .with_mech_interval(SimDuration::from_millis(2));
        let out = run(cfg, &data);
        assert_eq!(out.results.len(), 12);
        assert!(
            !out.transitions.is_empty(),
            "mechanism must record transitions"
        );
        // The cores series exists and stays within machine bounds.
        if let Some(max) = out.cores_series.max() {
            assert!(max <= 16.0);
        }
    }

    #[test]
    fn sim_faults_are_deterministic_and_lose_nothing() {
        use volcano_db::exec::FaultPlan;
        let data = tiny_data();
        let run_once = |data: &TpchData| {
            let plan = FaultPlan::default()
                .with_kill(0, SimDuration::from_millis(1))
                .with_badquery(0.25);
            let cfg = RunConfig::new(Alloc::Adaptive, 4, q6_workload(3))
                .with_scale(data.scale)
                .with_faults(plan);
            run(cfg, data)
        };
        let a = run_once(&data);
        // A worker kill requeues its work and a poisoned query surfaces
        // as an error: every one of the 12 queries is accounted for.
        assert_eq!(
            a.results.len() + a.errors.len(),
            12,
            "no query may be lost to the fault plane"
        );
        assert!(
            a.engine.engine_recoveries >= 1,
            "the 1ms kill must fire and be recovered"
        );
        assert!(a.engine.mttr_ms().is_finite() && a.engine.mttr_ms() > 0.0);
        // Same seed + same plan ⇒ byte-identical outputs, kill and all.
        let b = run_once(&data);
        let digest = |o: &RunOutput| {
            o.results
                .iter()
                .map(|r| (r.label.clone(), r.finished, r.result.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(digest(&a), digest(&b), "faulted sim runs must replay");
        assert_eq!(a.errors, b.errors, "error sets must replay too");
        assert_eq!(a.engine.engine_recoveries, b.engine.engine_recoveries);
        assert_eq!(a.wall, b.wall, "even the clock must agree");
    }

    #[test]
    fn trace_collects_spans() {
        let data = tiny_data();
        let cfg = RunConfig::new(Alloc::OsAll, 1, q6_workload(1))
            .with_scale(data.scale)
            .with_trace();
        let out = run(cfg, &data);
        let trace = out.trace.expect("tracing enabled");
        assert!(!trace.spans().is_empty());
    }
}
