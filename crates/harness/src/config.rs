//! Experiment configurations.

use crate::backend::Backend;
use elastic_core::{MetricKind, Policy, PolicyId};
use emca_metrics::SimDuration;
use std::sync::Arc;
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::exec::FaultPlan;
use volcano_db::tpch::TpchScale;

// Centralised `EMCA_*` environment parsing lives with the spec; this
// re-export keeps the documented `config::from_env()` path.
pub use crate::spec::{from_env, from_vars};

/// Core-allocation policy of a run: the paper's four configurations
/// plus the throughput hill climber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Alloc {
    /// No mechanism: all cores handed to the OS (the baseline).
    OsAll,
    /// Mechanism with the dense mode.
    Dense,
    /// Mechanism with the sparse mode.
    Sparse,
    /// Mechanism with the adaptive priority mode.
    Adaptive,
    /// Mechanism with the hill-climbing LONC policy (adaptive placement
    /// plus throughput-feedback growth/revert).
    HillClimb,
}

impl Alloc {
    /// Display name matching the paper's figure legends.
    pub fn label(&self, flavor: Flavor) -> String {
        let engine = match flavor {
            Flavor::MonetDb => "MonetDB",
            Flavor::SqlServer => "SQL Server",
        };
        match self {
            Alloc::OsAll => format!("OS/{engine}"),
            Alloc::Dense => "Dense".to_string(),
            Alloc::Sparse => "Sparse".to_string(),
            Alloc::Adaptive => "Adaptive".to_string(),
            Alloc::HillClimb => "HillClimb".to_string(),
        }
    }

    /// The mechanism policy, if this allocation uses the mechanism.
    pub fn policy_id(&self) -> Option<PolicyId> {
        match self {
            Alloc::OsAll => None,
            Alloc::Dense => Some(PolicyId::Dense),
            Alloc::Sparse => Some(PolicyId::Sparse),
            Alloc::Adaptive => Some(PolicyId::Adaptive),
            Alloc::HillClimb => Some(PolicyId::HillClimb),
        }
    }

    /// Mechanism policy name, if this allocation uses the mechanism.
    pub fn mode_name(&self) -> Option<&'static str> {
        self.policy_id().map(PolicyId::name)
    }

    /// The four policies in figure order (the paper's grid; the hill
    /// climber replaces the adaptive slot via
    /// [`crate::spec::ExperimentSpec::alloc_sweep`] instead of widening
    /// every figure).
    pub fn all() -> [Alloc; 4] {
        [Alloc::OsAll, Alloc::Dense, Alloc::Sparse, Alloc::Adaptive]
    }
}

impl From<PolicyId> for Alloc {
    fn from(p: PolicyId) -> Self {
        match p {
            PolicyId::Dense => Alloc::Dense,
            PolicyId::Sparse => Alloc::Sparse,
            PolicyId::Adaptive => Alloc::Adaptive,
            PolicyId::HillClimb => Alloc::HillClimb,
        }
    }
}

/// A cloneable factory for user-defined [`Policy`] implementations, so
/// a [`RunConfig`] (which is `Clone`) can carry a custom policy through
/// the standard runner (`examples/custom_policy.rs`).
#[derive(Clone)]
pub struct PolicyFactory {
    name: &'static str,
    make: Arc<dyn Fn() -> Box<dyn Policy> + Send + Sync>,
}

impl PolicyFactory {
    /// Wraps a constructor for a custom policy.
    pub fn new(
        name: &'static str,
        make: impl Fn() -> Box<dyn Policy> + Send + Sync + 'static,
    ) -> Self {
        PolicyFactory {
            name,
            make: Arc::new(make),
        }
    }

    /// The policy's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Builds a fresh policy instance.
    pub fn build(&self) -> Box<dyn Policy> {
        (self.make)()
    }
}

impl std::fmt::Debug for PolicyFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyFactory")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Base-data placement before the measured run starts (§II-A / Fig. 18).
///
/// The paper measures a warm, long-running server; how its base pages
/// were homed decides which flavor starts with a locality advantage, so
/// the policy is explicit and applied identically to every flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Warmup {
    /// A single-threaded loader first-touches every base segment from
    /// core 0: all base data homed on node 0 (the paper's MonetDB server,
    /// Fig. 18(a)).
    #[default]
    Loader,
    /// Base segments homed round-robin across all NUMA nodes (a
    /// `numactl --interleave` server): neutral placement that hands no
    /// flavor a head start.
    Interleave,
    /// Cold start: pages are homed by whichever worker first scans them
    /// (mmap-style lazy loading, the cold-start ablation).
    None,
}

/// Full description of one simulation run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Engine flavor.
    pub flavor: Flavor,
    /// Allocation policy.
    pub alloc: Alloc,
    /// Mechanism metric (ignored for [`Alloc::OsAll`]).
    pub metric: MetricKind,
    /// Number of concurrent clients.
    pub clients: usize,
    /// The workload every client runs.
    pub workload: Workload,
    /// Database scale.
    pub scale: TpchScale,
    /// Safety cap on simulated time.
    pub deadline: SimDuration,
    /// Time-series sampling interval.
    pub sample_every: SimDuration,
    /// Record scheduler spans (Figs. 5/16) — expensive, off by default.
    pub trace_sched: bool,
    /// Override of the mechanism control interval (`None` = service-time
    /// scaled, see [`crate::runner::run`]). Setting this pins the
    /// interval, disabling the adaptive scaling.
    pub mech_interval: Option<SimDuration>,
    /// Override of the Eq. 1 memory-saturation guard threshold
    /// (`None` = mechanism default; `Some(None)` = guard disabled).
    pub mech_guard: Option<Option<f64>>,
    /// Base-data placement policy (identical for every flavor).
    pub warmup: Warmup,
    /// User-defined mechanism policy; when set it replaces the policy
    /// [`RunConfig::alloc`] names (the alloc still provides the label
    /// and must not be [`Alloc::OsAll`]).
    pub custom_policy: Option<PolicyFactory>,
    /// Execution backend (simulated workers vs real OS threads).
    pub backend: Backend,
    /// Deterministic fault-injection plan (the `faults=` spec field).
    /// `None` — the default — leaves the fault plane fully inert: no
    /// injection site is consulted and results are byte-identical to
    /// the pre-fault-plane runner.
    pub faults: Option<FaultPlan>,
}

impl RunConfig {
    /// A sensible default for microbenchmark-style runs.
    pub fn new(alloc: Alloc, clients: usize, workload: Workload) -> Self {
        RunConfig {
            flavor: Flavor::MonetDb,
            alloc,
            metric: MetricKind::CpuLoad,
            clients,
            workload,
            scale: TpchScale::harness_default(),
            deadline: SimDuration::from_secs(600),
            sample_every: SimDuration::from_millis(100),
            trace_sched: false,
            mech_interval: None,
            mech_guard: None,
            warmup: Warmup::default(),
            custom_policy: None,
            backend: Backend::default(),
            faults: None,
        }
    }

    /// Disables the warm-up pass (cold-start experiments).
    pub fn without_warmup(mut self) -> Self {
        self.warmup = Warmup::None;
        self
    }

    /// Sets the base-data placement policy.
    pub fn with_warmup(mut self, warmup: Warmup) -> Self {
        self.warmup = warmup;
        self
    }

    /// Overrides the Eq. 1 saturation-guard threshold (`None` disables
    /// the guard).
    pub fn with_guard(mut self, guard: Option<f64>) -> Self {
        self.mech_guard = Some(guard);
        self
    }

    /// Overrides the mechanism control interval (fast-reacting runs and
    /// small-scale tests).
    pub fn with_mech_interval(mut self, interval: SimDuration) -> Self {
        self.mech_interval = Some(interval);
        self
    }

    /// Switches the engine flavor.
    pub fn with_flavor(mut self, flavor: Flavor) -> Self {
        self.flavor = flavor;
        self
    }

    /// Switches the mechanism metric.
    pub fn with_metric(mut self, metric: MetricKind) -> Self {
        self.metric = metric;
        self
    }

    /// Switches the database scale.
    pub fn with_scale(mut self, scale: TpchScale) -> Self {
        self.scale = scale;
        self
    }

    /// Enables scheduler span tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace_sched = true;
        self
    }

    /// Switches the execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Arms a deterministic fault-injection plan. Empty plans are kept
    /// as `None` so the fault plane stays inert.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = (!plan.is_empty()).then_some(plan);
        self
    }

    /// Runs the mechanism with a user-defined policy instead of one of
    /// the built-ins (the alloc is forced off the OS baseline so the
    /// mechanism installs).
    pub fn with_custom_policy(mut self, factory: PolicyFactory) -> Self {
        if self.alloc == Alloc::OsAll {
            self.alloc = Alloc::Adaptive;
        }
        self.custom_policy = Some(factory);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_db::tpch::QuerySpec;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Alloc::OsAll.label(Flavor::MonetDb), "OS/MonetDB");
        assert_eq!(Alloc::OsAll.label(Flavor::SqlServer), "OS/SQL Server");
        assert_eq!(Alloc::Adaptive.label(Flavor::MonetDb), "Adaptive");
    }

    #[test]
    fn mode_names() {
        assert_eq!(Alloc::OsAll.mode_name(), None);
        assert_eq!(Alloc::Dense.mode_name(), Some("dense"));
        assert_eq!(Alloc::HillClimb.mode_name(), Some("hillclimb"));
        assert_eq!(Alloc::HillClimb.label(Flavor::MonetDb), "HillClimb");
        assert_eq!(Alloc::all().len(), 4, "figure sweeps stay the paper's four");
    }

    #[test]
    fn alloc_maps_policy_ids_both_ways() {
        for id in elastic_core::PolicyId::ALL {
            assert_eq!(Alloc::from(id).policy_id(), Some(id));
        }
        assert_eq!(Alloc::OsAll.policy_id(), None);
    }

    #[test]
    fn custom_policy_forces_mechanism_alloc() {
        let factory = PolicyFactory::new("noop", || elastic_core::PolicyId::Dense.build());
        assert_eq!(factory.name(), "noop");
        assert_eq!(factory.build().name(), "dense");
        let cfg = RunConfig::new(
            Alloc::OsAll,
            1,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 1,
            },
        )
        .with_custom_policy(factory);
        assert_ne!(cfg.alloc, Alloc::OsAll, "mechanism must install");
        assert!(cfg.custom_policy.is_some());
    }

    #[test]
    fn builder_chains() {
        let cfg = RunConfig::new(
            Alloc::Adaptive,
            4,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 1,
            },
        )
        .with_flavor(Flavor::SqlServer)
        .with_metric(MetricKind::HtImcRatio)
        .with_trace();
        assert_eq!(cfg.flavor, Flavor::SqlServer);
        assert_eq!(cfg.metric, MetricKind::HtImcRatio);
        assert!(cfg.trace_sched);
    }
}
