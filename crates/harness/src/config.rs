//! Experiment configurations.

use elastic_core::MetricKind;
use emca_metrics::SimDuration;
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::TpchScale;

/// Core-allocation policy of a run (the paper's four configurations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Alloc {
    /// No mechanism: all cores handed to the OS (the baseline).
    OsAll,
    /// Mechanism with the dense mode.
    Dense,
    /// Mechanism with the sparse mode.
    Sparse,
    /// Mechanism with the adaptive priority mode.
    Adaptive,
}

impl Alloc {
    /// Display name matching the paper's figure legends.
    pub fn label(&self, flavor: Flavor) -> String {
        let engine = match flavor {
            Flavor::MonetDb => "MonetDB",
            Flavor::SqlServer => "SQL Server",
        };
        match self {
            Alloc::OsAll => format!("OS/{engine}"),
            Alloc::Dense => "Dense".to_string(),
            Alloc::Sparse => "Sparse".to_string(),
            Alloc::Adaptive => "Adaptive".to_string(),
        }
    }

    /// Mechanism mode name, if this policy uses the mechanism.
    pub fn mode_name(&self) -> Option<&'static str> {
        match self {
            Alloc::OsAll => None,
            Alloc::Dense => Some("dense"),
            Alloc::Sparse => Some("sparse"),
            Alloc::Adaptive => Some("adaptive"),
        }
    }

    /// The four policies in figure order.
    pub fn all() -> [Alloc; 4] {
        [Alloc::OsAll, Alloc::Dense, Alloc::Sparse, Alloc::Adaptive]
    }
}

/// Base-data placement before the measured run starts (§II-A / Fig. 18).
///
/// The paper measures a warm, long-running server; how its base pages
/// were homed decides which flavor starts with a locality advantage, so
/// the policy is explicit and applied identically to every flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Warmup {
    /// A single-threaded loader first-touches every base segment from
    /// core 0: all base data homed on node 0 (the paper's MonetDB server,
    /// Fig. 18(a)).
    #[default]
    Loader,
    /// Base segments homed round-robin across all NUMA nodes (a
    /// `numactl --interleave` server): neutral placement that hands no
    /// flavor a head start.
    Interleave,
    /// Cold start: pages are homed by whichever worker first scans them
    /// (mmap-style lazy loading, the cold-start ablation).
    None,
}

/// Full description of one simulation run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Engine flavor.
    pub flavor: Flavor,
    /// Allocation policy.
    pub alloc: Alloc,
    /// Mechanism metric (ignored for [`Alloc::OsAll`]).
    pub metric: MetricKind,
    /// Number of concurrent clients.
    pub clients: usize,
    /// The workload every client runs.
    pub workload: Workload,
    /// Database scale.
    pub scale: TpchScale,
    /// Safety cap on simulated time.
    pub deadline: SimDuration,
    /// Time-series sampling interval.
    pub sample_every: SimDuration,
    /// Record scheduler spans (Figs. 5/16) — expensive, off by default.
    pub trace_sched: bool,
    /// Override of the mechanism control interval (`None` = service-time
    /// scaled, see [`crate::runner::run`]). Setting this pins the
    /// interval, disabling the adaptive scaling.
    pub mech_interval: Option<SimDuration>,
    /// Override of the Eq. 1 memory-saturation guard threshold
    /// (`None` = mechanism default; `Some(None)` = guard disabled).
    pub mech_guard: Option<Option<f64>>,
    /// Base-data placement policy (identical for every flavor).
    pub warmup: Warmup,
}

impl RunConfig {
    /// A sensible default for microbenchmark-style runs.
    pub fn new(alloc: Alloc, clients: usize, workload: Workload) -> Self {
        RunConfig {
            flavor: Flavor::MonetDb,
            alloc,
            metric: MetricKind::CpuLoad,
            clients,
            workload,
            scale: TpchScale::harness_default(),
            deadline: SimDuration::from_secs(600),
            sample_every: SimDuration::from_millis(100),
            trace_sched: false,
            mech_interval: None,
            mech_guard: None,
            warmup: Warmup::default(),
        }
    }

    /// Disables the warm-up pass (cold-start experiments).
    pub fn without_warmup(mut self) -> Self {
        self.warmup = Warmup::None;
        self
    }

    /// Sets the base-data placement policy.
    pub fn with_warmup(mut self, warmup: Warmup) -> Self {
        self.warmup = warmup;
        self
    }

    /// Overrides the Eq. 1 saturation-guard threshold (`None` disables
    /// the guard).
    pub fn with_guard(mut self, guard: Option<f64>) -> Self {
        self.mech_guard = Some(guard);
        self
    }

    /// Overrides the mechanism control interval (fast-reacting runs and
    /// small-scale tests).
    pub fn with_mech_interval(mut self, interval: SimDuration) -> Self {
        self.mech_interval = Some(interval);
        self
    }

    /// Switches the engine flavor.
    pub fn with_flavor(mut self, flavor: Flavor) -> Self {
        self.flavor = flavor;
        self
    }

    /// Switches the mechanism metric.
    pub fn with_metric(mut self, metric: MetricKind) -> Self {
        self.metric = metric;
        self
    }

    /// Switches the database scale.
    pub fn with_scale(mut self, scale: TpchScale) -> Self {
        self.scale = scale;
        self
    }

    /// Enables scheduler span tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace_sched = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_db::tpch::QuerySpec;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Alloc::OsAll.label(Flavor::MonetDb), "OS/MonetDB");
        assert_eq!(Alloc::OsAll.label(Flavor::SqlServer), "OS/SQL Server");
        assert_eq!(Alloc::Adaptive.label(Flavor::MonetDb), "Adaptive");
    }

    #[test]
    fn mode_names() {
        assert_eq!(Alloc::OsAll.mode_name(), None);
        assert_eq!(Alloc::Dense.mode_name(), Some("dense"));
        assert_eq!(Alloc::all().len(), 4);
    }

    #[test]
    fn builder_chains() {
        let cfg = RunConfig::new(
            Alloc::Adaptive,
            4,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 1,
            },
        )
        .with_flavor(Flavor::SqlServer)
        .with_metric(MetricKind::HtImcRatio)
        .with_trace();
        assert_eq!(cfg.flavor, Flavor::SqlServer);
        assert_eq!(cfg.metric, MetricKind::HtImcRatio);
        assert!(cfg.trace_sched);
    }
}
