//! Wall-clock timing surface.
//!
//! The simulation meters *simulated* time; this module meters the real
//! time an invocation costs, which is what the engine hot-path work
//! optimises and what CI budgets. The `emca` CLI stamps every scenario
//! run with a [`WallTimer`] and, when `EMCA_WALL_BUDGET_S` is set,
//! turns a blown budget into a hard failure — so hot-path regressions
//! fail loudly instead of silently inflating the fidelity job.

use std::time::Instant;

/// Environment variable carrying the wall-time budget, in seconds.
pub const WALL_BUDGET_ENV: &str = "EMCA_WALL_BUDGET_S";

/// A started wall-clock measurement of one named phase.
pub struct WallTimer {
    label: String,
    start: Instant,
}

impl WallTimer {
    /// Starts timing `label`.
    pub fn start(label: impl Into<String>) -> Self {
        WallTimer {
            label: label.into(),
            start: Instant::now(),
        }
    }

    /// Seconds elapsed so far.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Finishes the measurement: logs `[wall] <label>=<secs>s` to
    /// stderr and returns the elapsed seconds.
    pub fn finish(self) -> f64 {
        let secs = self.elapsed_s();
        eprintln!("[wall] {}={secs:.2}s", self.label);
        secs
    }
}

/// The wall budget from the environment, if set. Malformed values are
/// hard errors (a typo must not disarm the gate).
pub fn wall_budget_from_env() -> Result<Option<f64>, String> {
    match std::env::var(WALL_BUDGET_ENV) {
        Err(_) => Ok(None),
        Ok(s) => match s.parse::<f64>() {
            Ok(v) if v > 0.0 => Ok(Some(v)),
            _ => Err(format!(
                "{WALL_BUDGET_ENV} must be a positive number of seconds, got {s:?}"
            )),
        },
    }
}

/// Asserts `elapsed_s` against `budget_s`: `Err` describes the blown
/// budget, `Ok` restates the margin.
pub fn enforce_wall_budget(label: &str, elapsed_s: f64, budget_s: f64) -> Result<String, String> {
    if elapsed_s > budget_s {
        Err(format!(
            "wall budget blown: {label} took {elapsed_s:.2}s > budget {budget_s:.2}s"
        ))
    } else {
        Ok(format!(
            "wall budget held: {label} took {elapsed_s:.2}s of {budget_s:.2}s"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_and_logs() {
        let t = WallTimer::start("unit");
        assert!(t.elapsed_s() >= 0.0);
        let secs = t.finish();
        assert!(secs >= 0.0);
    }

    #[test]
    fn budget_enforcement() {
        assert!(enforce_wall_budget("x", 1.0, 2.0).is_ok());
        let err = enforce_wall_budget("x", 3.0, 2.0).unwrap_err();
        assert!(err.contains("blown"));
        assert!(err.contains("3.00s"));
    }

    #[test]
    fn budget_env_parses() {
        // Do not mutate the global env (tests run concurrently);
        // exercise only the unset path plus the parser via
        // enforce_wall_budget above.
        if std::env::var(WALL_BUDGET_ENV).is_err() {
            assert_eq!(wall_budget_from_env().unwrap(), None);
        }
    }
}
