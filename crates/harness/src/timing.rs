//! Wall-clock timing surface.
//!
//! The simulation meters *simulated* time; this module meters the real
//! time an invocation costs, which is what the engine hot-path work
//! optimises and what CI budgets. The `emca` CLI stamps every scenario
//! run with a [`WallTimer`] and, when `EMCA_WALL_BUDGET_S` is set,
//! turns a blown budget into a hard failure — so hot-path regressions
//! fail loudly instead of silently inflating the fidelity job.

use std::fmt;
use std::time::Instant;

/// Environment variable carrying the wall-time budget, in seconds.
pub const WALL_BUDGET_ENV: &str = "EMCA_WALL_BUDGET_S";

/// Environment variable carrying the run-abort deadline, in seconds.
///
/// Distinct from [`WALL_BUDGET_ENV`]: the budget judges a *finished*
/// run after the fact (the CI fidelity gate), while the deadline aborts
/// a run that is still going — the threads backend's hang watchdog.
/// When only the budget is set it doubles as the deadline, preserving
/// the pre-split behaviour of CI smoke jobs.
pub const RUN_DEADLINE_ENV: &str = "EMCA_RUN_DEADLINE_S";

/// A started wall-clock measurement of one named phase.
pub struct WallTimer {
    label: String,
    start: Instant,
}

impl WallTimer {
    /// Starts timing `label`.
    pub fn start(label: impl Into<String>) -> Self {
        WallTimer {
            label: label.into(),
            start: Instant::now(),
        }
    }

    /// Seconds elapsed so far.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Finishes the measurement: logs `[wall] <label>=<secs>s` to
    /// stderr and returns the elapsed seconds.
    pub fn finish(self) -> f64 {
        let secs = self.elapsed_s();
        eprintln!("[wall] {}={secs:.2}s", self.label);
        secs
    }
}

/// The wall budget from the environment, if set. Malformed values are
/// hard errors (a typo must not disarm the gate).
pub fn wall_budget_from_env() -> Result<Option<f64>, String> {
    match std::env::var(WALL_BUDGET_ENV) {
        Err(_) => Ok(None),
        Ok(s) => match s.parse::<f64>() {
            Ok(v) if v > 0.0 => Ok(Some(v)),
            _ => Err(format!(
                "{WALL_BUDGET_ENV} must be a positive number of seconds, got {s:?}"
            )),
        },
    }
}

/// The run-abort deadline from the environment, if set. Same contract
/// as [`wall_budget_from_env`]: malformed values are hard errors.
pub fn run_deadline_from_env() -> Result<Option<f64>, String> {
    match std::env::var(RUN_DEADLINE_ENV) {
        Err(_) => Ok(None),
        Ok(s) => match s.parse::<f64>() {
            Ok(v) if v > 0.0 => Ok(Some(v)),
            _ => Err(format!(
                "{RUN_DEADLINE_ENV} must be a positive number of seconds, got {s:?}"
            )),
        },
    }
}

/// Typed outcome of a blown wall budget: the run *finished*, but took
/// longer than the fidelity gate allows.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetExceeded {
    /// What was being timed.
    pub label: String,
    /// Measured wall seconds.
    pub elapsed_s: f64,
    /// The budget it blew.
    pub budget_s: f64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wall budget blown: {} took {:.2}s > budget {:.2}s",
            self.label, self.elapsed_s, self.budget_s
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Typed outcome of a run aborted at its deadline: work was still
/// outstanding when time ran out. Distinct from [`BudgetExceeded`] —
/// an abort loses results, a blown budget only flags slowness.
#[derive(Clone, Debug, PartialEq)]
pub struct RunAborted {
    /// Which run hit the deadline.
    pub label: String,
    /// The deadline, in seconds.
    pub deadline_s: f64,
    /// What to raise to let the run finish.
    pub hint: &'static str,
}

impl fmt::Display for RunAborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit the deadline ({:.2}s) with work unfinished — raise {}",
            self.label, self.deadline_s, self.hint
        )
    }
}

impl std::error::Error for RunAborted {}

/// Asserts `elapsed_s` against `budget_s`: `Err` describes the blown
/// budget, `Ok` restates the margin.
pub fn enforce_wall_budget(
    label: &str,
    elapsed_s: f64,
    budget_s: f64,
) -> Result<String, BudgetExceeded> {
    if elapsed_s > budget_s {
        Err(BudgetExceeded {
            label: label.to_string(),
            elapsed_s,
            budget_s,
        })
    } else {
        Ok(format!(
            "wall budget held: {label} took {elapsed_s:.2}s of {budget_s:.2}s"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_and_logs() {
        let t = WallTimer::start("unit");
        assert!(t.elapsed_s() >= 0.0);
        let secs = t.finish();
        assert!(secs >= 0.0);
    }

    #[test]
    fn budget_enforcement() {
        assert!(enforce_wall_budget("x", 1.0, 2.0).is_ok());
        let err = enforce_wall_budget("x", 3.0, 2.0).unwrap_err();
        assert_eq!(err.elapsed_s, 3.0);
        let shown = err.to_string();
        assert!(shown.contains("blown"));
        assert!(shown.contains("3.00s"));
    }

    #[test]
    fn budget_env_parses() {
        // Do not mutate the global env (tests run concurrently);
        // exercise only the unset path plus the parser via
        // enforce_wall_budget above.
        if std::env::var(WALL_BUDGET_ENV).is_err() {
            assert_eq!(wall_budget_from_env().unwrap(), None);
        }
        if std::env::var(RUN_DEADLINE_ENV).is_err() {
            assert_eq!(run_deadline_from_env().unwrap(), None);
        }
    }

    #[test]
    fn typed_outcomes_render_their_cause() {
        let aborted = RunAborted {
            label: "run".to_string(),
            deadline_s: 12.5,
            hint: "RunConfig::deadline or EMCA_RUN_DEADLINE_S",
        };
        let shown = aborted.to_string();
        assert!(shown.contains("deadline"));
        assert!(shown.contains("12.50s"));
        assert!(shown.contains("EMCA_RUN_DEADLINE_S"));
    }
}
