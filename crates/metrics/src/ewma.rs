//! Exponentially weighted moving average.
//!
//! Used by the interconnect congestion model (one-tick-delayed utilisation
//! feedback) and by the CPU-load monitor to smooth per-interval load before
//! it reaches the PetriNet predicates.

/// An EWMA with smoothing factor `alpha` in `(0, 1]`; larger alpha reacts
/// faster to new observations.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA. Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Feeds an observation and returns the updated average.
    pub fn observe(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// The current average, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The current average, or `default` before any observation.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Clears the history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_seeds() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.observe(10.0), 10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn converges_towards_constant_input() {
        let mut e = Ewma::new(0.5);
        e.observe(0.0);
        for _ in 0..50 {
            e.observe(100.0);
        }
        assert!((e.value().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.observe(1.0);
        e.observe(7.0);
        assert_eq!(e.value(), Some(7.0));
    }

    #[test]
    fn reset_and_default() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.value_or(4.2), 4.2);
        e.observe(1.0);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_panics() {
        let _ = Ewma::new(0.0);
    }
}
