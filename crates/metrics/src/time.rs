//! Simulated time.
//!
//! All simulation components share a single nanosecond-resolution clock.
//! [`SimTime`] is an absolute instant since simulation start and
//! [`SimDuration`] a span between instants. Both are thin wrappers over
//! `u64` so they are `Copy`, totally ordered and cheap to pass around; the
//! newtypes exist purely so instants and spans cannot be confused.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant (unbounded-range sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking so that slightly out-of-order samples are harmless.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Rounds down to a multiple of `step` (used to bucket samples).
    pub fn align_down(self, step: SimDuration) -> SimTime {
        if step.0 == 0 {
            return self;
        }
        SimTime(self.0 - self.0 % step.0)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds, rounding to nanoseconds.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Scales the span by a non-negative factor, rounding to nanoseconds.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }

    /// Bytes-per-second rate over this span (0 for an empty span).
    pub fn rate_per_sec(self, amount: u64) -> f64 {
        if self.0 == 0 {
            0.0
        } else {
            amount as f64 / self.as_secs_f64()
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_millis(250).as_millis_f64(), 250.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 15_000_000);
        assert_eq!((t - SimTime::from_millis(5)).as_nanos(), 10_000_000);
        assert_eq!(t.since(SimTime::from_millis(12)).as_nanos(), 3_000_000);
        // saturating behaviour
        assert_eq!(SimTime::from_millis(1).since(t), SimDuration::ZERO);
    }

    #[test]
    fn align_down_buckets() {
        let t = SimTime::from_nanos(1_234_567);
        let step = SimDuration::from_micros(100);
        assert_eq!(t.align_down(step).as_nanos(), 1_200_000);
        assert_eq!(t.align_down(SimDuration::ZERO), t);
    }

    #[test]
    fn duration_scaling_and_rate() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(d.rate_per_sec(4_000_000_000), 2e9);
        assert_eq!(SimDuration::ZERO.rate_per_sec(10), 0.0);
    }

    #[test]
    fn duration_sum_and_min_max() {
        let total: SimDuration = [
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
            SimDuration::from_millis(3),
        ]
        .into_iter()
        .sum();
        assert_eq!(total, SimDuration::from_millis(6));
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
    }
}
