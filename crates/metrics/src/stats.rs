//! Summary statistics for experiment aggregation.
//!
//! The paper reports averages over 10 executions per allocation mode, and
//! uses the geometric mean for the energy-savings summary (§V-C3). These
//! helpers are deliberately small and allocation-free where possible.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation; `None` for an empty slice.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Geometric mean; `None` if empty or any value is non-positive.
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
/// statistics; `None` for an empty slice, out-of-range `q`, or NaN input.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Minimum; `None` for an empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

/// Maximum; `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Speedup of `baseline` over `improved` (e.g. response times): >1 means
/// `improved` is faster. Returns `None` when `improved` is non-positive.
pub fn speedup(baseline: f64, improved: f64) -> Option<f64> {
    if improved <= 0.0 {
        None
    } else {
        Some(baseline / improved)
    }
}

/// Relative saving of `improved` vs `baseline` in percent
/// (e.g. energy: 26.05 means improved uses 26.05% less).
pub fn saving_pct(baseline: f64, improved: f64) -> Option<f64> {
    if baseline <= 0.0 {
        None
    } else {
        Some((baseline - improved) / baseline * 100.0)
    }
}

/// Running summary usable while streaming values (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean so far; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population standard deviation so far; `None` when empty.
    pub fn stddev(&self) -> Option<f64> {
        (self.n > 0).then(|| (self.m2 / self.n as f64).sqrt())
    }

    /// Minimum so far; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum so far; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// p50/p95/p99 of a latency population in one shot (the serving layer's
/// standard report). The population may contain `+inf` entries —
/// unfinished requests under overload — which then surface as infinite
/// tail quantiles; that is the signal, not an error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Population size.
    pub n: usize,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Summarises `xs` (any unit); `None` when empty or NaN-polluted.
pub fn latency_summary(xs: &[f64]) -> Option<LatencySummary> {
    Some(LatencySummary {
        n: xs.len(),
        p50: percentile(xs, 0.50)?,
        p95: percentile(xs, 0.95)?,
        p99: percentile(xs, 0.99)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_aggregates() {
        let xs = [2.0, 4.0, 6.0, 8.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(min(&xs), Some(2.0));
        assert_eq!(max(&xs), Some(8.0));
        assert!((stddev(&xs).unwrap() - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let xs = [1.0, 4.0, 16.0];
        assert!((geomean(&xs).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&xs, 2.0), None);
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn latency_summary_carries_infinite_tails() {
        let mut xs: Vec<f64> = (1..=99).map(f64::from).collect();
        xs.push(f64::INFINITY);
        let s = latency_summary(&xs).unwrap();
        assert_eq!(s.n, 100);
        assert!(s.p50.is_finite() && s.p95.is_finite());
        assert!(s.p99.is_infinite(), "1% unfinished must surface in p99");
        assert_eq!(latency_summary(&[]), None);
    }

    #[test]
    fn percentile_rejects_nan_instead_of_panicking() {
        assert_eq!(percentile(&[1.0, f64::NAN, 3.0], 0.5), None);
        assert_eq!(percentile(&[f64::NAN], 0.5), None);
        // Infinities are ordered fine and must still work.
        assert_eq!(
            percentile(&[f64::NEG_INFINITY, 0.0, f64::INFINITY], 0.5),
            Some(0.0)
        );
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.5], 0.0), Some(7.5));
        assert_eq!(percentile(&[7.5], 0.5), Some(7.5));
        assert_eq!(percentile(&[7.5], 1.0), Some(7.5));
    }

    #[test]
    fn speedup_and_saving() {
        assert_eq!(speedup(3.0, 2.0), Some(1.5));
        assert_eq!(speedup(3.0, 0.0), None);
        assert!((saving_pct(100.0, 73.95).unwrap() - 26.05).abs() < 1e-9);
        assert_eq!(saving_pct(0.0, 1.0), None);
    }

    #[test]
    fn running_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        assert_eq!(r.count(), 6);
        assert!((r.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((r.stddev().unwrap() - stddev(&xs).unwrap()).abs() < 1e-12);
        assert_eq!(r.min(), Some(1.0));
        assert_eq!(r.max(), Some(9.0));
    }

    #[test]
    fn running_empty() {
        let r = Running::new();
        assert_eq!(r.mean(), None);
        assert_eq!(r.stddev(), None);
        assert_eq!(r.min(), None);
        assert_eq!(r.max(), None);
    }
}
