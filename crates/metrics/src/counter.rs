//! Monotonic counters.
//!
//! Hardware performance counters (L3 misses, HT bytes, IMC bytes, faults)
//! and OS accounting (busy time, migrations, steals) are all modelled as
//! monotonically increasing `u64` counters. Monitors read them by taking
//! *window deltas*: `snapshot()` now, subtract the snapshot taken at the
//! previous control interval.

use std::fmt;

/// A single monotonically increasing counter.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A fresh zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` events to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds a single event.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current cumulative value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Events accumulated since `earlier` (saturating, so a reset or stale
    /// snapshot yields 0 rather than a huge bogus delta).
    #[inline]
    pub fn delta_since(self, earlier: Counter) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A fixed-size family of counters indexed by a dense id (core id, node id,
/// link id...). Snapshots are plain `Vec<u64>` so they can be stored cheaply
/// by monitors.
#[derive(Clone, Debug, Default)]
pub struct CounterVec {
    counters: Vec<Counter>,
}

impl CounterVec {
    /// Creates `n` zeroed counters.
    pub fn new(n: usize) -> Self {
        CounterVec {
            counters: vec![Counter::new(); n],
        }
    }

    /// Number of counters in the family.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when the family is empty.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Adds `n` to counter `idx`.
    #[inline]
    pub fn add(&mut self, idx: usize, n: u64) {
        self.counters[idx].add(n);
    }

    /// Increments counter `idx`.
    #[inline]
    pub fn inc(&mut self, idx: usize) {
        self.counters[idx].inc();
    }

    /// Cumulative value of counter `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> u64 {
        self.counters[idx].get()
    }

    /// Sum over the whole family.
    pub fn total(&self) -> u64 {
        self.counters.iter().map(|c| c.get()).sum()
    }

    /// Copies out all cumulative values.
    pub fn snapshot(&self) -> Vec<u64> {
        self.counters.iter().map(|c| c.get()).collect()
    }

    /// Per-index deltas against a previous [`CounterVec::snapshot`].
    ///
    /// Panics if the snapshot length does not match (a programming error:
    /// counter families never change size at runtime).
    pub fn delta_since(&self, snapshot: &[u64]) -> Vec<u64> {
        assert_eq!(
            snapshot.len(),
            self.counters.len(),
            "snapshot arity mismatch"
        );
        self.counters
            .iter()
            .zip(snapshot)
            .map(|(c, &s)| c.get().saturating_sub(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counter_delta_saturates() {
        let mut a = Counter::new();
        a.add(10);
        let snap = a;
        a.add(5);
        assert_eq!(a.delta_since(snap), 5);
        assert_eq!(snap.delta_since(a), 0);
    }

    #[test]
    fn countervec_snapshot_delta() {
        let mut v = CounterVec::new(3);
        v.add(0, 7);
        v.inc(2);
        let snap = v.snapshot();
        assert_eq!(snap, vec![7, 0, 1]);
        v.add(0, 3);
        v.add(1, 2);
        assert_eq!(v.delta_since(&snap), vec![3, 2, 0]);
        assert_eq!(v.total(), 13);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn countervec_bad_snapshot_panics() {
        let v = CounterVec::new(2);
        let _ = v.delta_since(&[0]);
    }
}
