//! A minimal Fx-style hasher for hot integer-keyed maps.
//!
//! The simulator probes cache-segment maps on every memory access, which is
//! the hottest path in the whole workspace. SipHash (the std default) is
//! needlessly slow for trusted integer keys, so we hand-roll the well-known
//! FxHash multiply-rotate scheme (as used by rustc) rather than pulling in
//! an external crate. HashDoS is not a concern: all keys are
//! simulator-internal identifiers.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word-at-a-time hasher.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Chunk into u64 words; the tail is zero-padded. Fine for the
        // fixed-width keys this map is used with.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.remove(&2), Some("b"));
        assert_eq!(m.get(&2), None);
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        // Sanity: no pathological full-collision behaviour on small ints.
        let mut set = FxHashSet::default();
        let mut hashes = FxHashSet::default();
        for k in 0u64..1000 {
            set.insert(k);
            let mut h = FxHasher::default();
            h.write_u64(k);
            hashes.insert(h.finish());
        }
        assert_eq!(set.len(), 1000);
        assert!(hashes.len() > 990, "suspicious collision rate");
    }

    #[test]
    fn byte_stream_tail_handled() {
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefghi"); // 9 bytes: one word + 1 tail byte
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefghj");
        assert_ne!(h1.finish(), h2.finish());
    }
}
