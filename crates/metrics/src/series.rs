//! Sampled time series.
//!
//! The timeline figures of the paper (Fig. 7 state transitions, Fig. 18
//! per-socket memory throughput) are rendered from `(SimTime, f64)` samples
//! collected at the monitor interval.

use crate::time::{SimDuration, SimTime};

/// An append-only series of `(time, value)` samples, in nondecreasing time
/// order.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty, named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name (used as a CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Samples must be pushed in nondecreasing time
    /// order; out-of-order pushes are clamped to the last time so the
    /// series stays sorted (and therefore binary-searchable).
    pub fn push(&mut self, t: SimTime, value: f64) {
        let t = match self.samples.last() {
            Some(&(last, _)) if t < last => last,
            _ => t,
        };
        self.samples.push((t, value));
    }

    /// All samples.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.samples.last().copied()
    }

    /// Maximum value over the whole series (NaN-free input assumed).
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Arithmetic mean of the sample values.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Time-weighted average: each sample's value is weighted by the span
    /// until the next sample. The final sample gets zero weight (its span is
    /// unknown), so at least two samples are needed.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for pair in self.samples.windows(2) {
            let (t0, v) = pair[0];
            let (t1, _) = pair[1];
            let w = t1.since(t0).as_secs_f64();
            weighted += v * w;
            total += w;
        }
        if total == 0.0 {
            None
        } else {
            Some(weighted / total)
        }
    }

    /// Downsamples to buckets of width `step`, averaging samples that fall
    /// in the same bucket. Useful to align series of differing rates before
    /// rendering.
    pub fn resample(&self, step: SimDuration) -> TimeSeries {
        let mut out = TimeSeries::new(self.name.clone());
        if self.samples.is_empty() || step.is_zero() {
            out.samples = self.samples.clone();
            return out;
        }
        let mut bucket_start = self.samples[0].0.align_down(step);
        let mut sum = 0.0;
        let mut n = 0u32;
        for &(t, v) in &self.samples {
            let b = t.align_down(step);
            if b != bucket_start && n > 0 {
                out.push(bucket_start, sum / n as f64);
                bucket_start = b;
                sum = 0.0;
                n = 0;
            }
            sum += v;
            n += 1;
        }
        if n > 0 {
            out.push(bucket_start, sum / n as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn push_keeps_sorted() {
        let mut s = TimeSeries::new("x");
        s.push(t(10), 1.0);
        s.push(t(5), 2.0); // out of order: clamped to t=10
        assert_eq!(s.samples()[1].0, t(10));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn aggregates() {
        let mut s = TimeSeries::new("x");
        for (ms, v) in [(0, 2.0), (10, 4.0), (20, 6.0)] {
            s.push(t(ms), v);
        }
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.max(), Some(6.0));
        // time-weighted: 2.0 for 10ms, 4.0 for 10ms -> 3.0
        assert!((s.time_weighted_mean().unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(s.last(), Some((t(20), 6.0)));
    }

    #[test]
    fn empty_aggregates_are_none() {
        let s = TimeSeries::new("x");
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.time_weighted_mean(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn resample_buckets_and_averages() {
        let mut s = TimeSeries::new("x");
        s.push(t(1), 1.0);
        s.push(t(2), 3.0);
        s.push(t(11), 10.0);
        let r = s.resample(SimDuration::from_millis(10));
        assert_eq!(r.len(), 2);
        assert_eq!(r.samples()[0], (t(0), 2.0));
        assert_eq!(r.samples()[1], (t(10), 10.0));
    }

    #[test]
    fn resample_zero_step_is_identity() {
        let mut s = TimeSeries::new("x");
        s.push(t(1), 1.0);
        let r = s.resample(SimDuration::ZERO);
        assert_eq!(r.samples(), s.samples());
    }
}
