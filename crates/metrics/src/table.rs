//! Aligned text tables and CSV emission.
//!
//! Every figure/table binary in `emca-bench` prints its series as an
//! aligned table (for humans) and writes the same data as CSV under
//! `results/` (for plotting).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of pre-formatted cells. The row is padded or truncated
    /// to the header arity so misaligned calls are visible, not fatal.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of `Display`-able cells.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (cell, w) in cells.iter().zip(&widths) {
                if !first {
                    out.push_str("  ");
                }
                first = false;
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-ish quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        fn quote(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with `prec` decimal places (tiny helper to keep table
/// construction code terse).
pub fn fnum(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a value in engineering units (K/M/G) with 2 decimals, e.g. for
/// bytes/s or events/s axes matching the paper's `10^x` scaled plots.
pub fn eng(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.2}K", v / 1e3)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["users", "throughput"]);
        t.row(vec!["1".into(), "3.5".into()]);
        t.row(vec!["256".into(), "0.42".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains("users"));
        assert!(lines[4].trim_start().starts_with("256"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.rows[0].len(), 3);
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new("", &["name", "note"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_roundtrip_file() {
        let dir = std::env::temp_dir().join("emca_metrics_table_test");
        let path = dir.join("t.csv");
        let mut t = Table::new("x", &["k", "v"]);
        t.row_display(&[1, 2]);
        t.write_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.starts_with("k,v"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(eng(1234.0), "1.23K");
        assert_eq!(eng(12_345_678.0), "12.35M");
        assert_eq!(eng(9.87e9), "9.87G");
        assert_eq!(eng(42.0), "42.00");
    }
}
