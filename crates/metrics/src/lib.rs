//! Shared measurement utilities for the elastic-NUMA simulation stack.
//!
//! This crate is dependency-free and provides:
//!
//! - [`SimTime`] / [`SimDuration`]: the nanosecond-resolution simulated clock
//!   used by every other crate in the workspace;
//! - [`Counter`] and [`CounterVec`]: monotonically increasing hardware/OS
//!   counters with window-delta support (the building block of the
//!   mpstat/likwid analogues);
//! - [`TimeSeries`]: sampled `(time, value)` traces used to render the
//!   paper's timeline figures;
//! - [`stats`]: summary statistics (mean, geometric mean, percentiles) used
//!   when aggregating the 10-run experiment repetitions;
//! - [`table`]: aligned text tables and CSV emission for the figure and
//!   table harnesses.

pub mod counter;
pub mod ewma;
pub mod fxhash;
pub mod series;
pub mod stats;
pub mod table;
pub mod time;

pub use counter::{Counter, CounterVec};
pub use ewma::Ewma;
pub use fxhash::{FxHashMap, FxHashSet};
pub use series::TimeSeries;
pub use time::{SimDuration, SimTime};
