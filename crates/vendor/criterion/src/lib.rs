//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of criterion's API its five benches use: `Criterion`
//! (builder config), `benchmark_group`, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `Throughput`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — warm-up, then `sample_size`
//! timed samples of an adaptively-sized iteration batch; mean, median
//! and min per-iteration times plus the sample count (and derived
//! throughput) are printed to stdout. A benchmark binary can also
//! attach a JSON sink with [`Criterion::json_out`]: every result is
//! collected into a machine-readable array that *replaces* the file
//! when the last handle drops — each run regenerates the snapshot, and
//! the trajectory accumulates through version control. That is
//! enough for the smoke-level performance tracking the benches do; swap
//! the workspace dependency for real criterion when publication-grade
//! statistics are needed.

use std::cell::RefCell;
use std::fmt::Display;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// A benchmark identifier: `name` or `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// One measured benchmark, as recorded by the JSON sink.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Benchmark id (`group/name` or `group/name/param`).
    pub id: String,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: f64,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Minimum per-iteration time, nanoseconds.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Elements per iteration, when declared via [`Throughput`].
    pub elems_per_iter: Option<u64>,
}

/// Shared JSON sink: records accumulate across groups (config clones
/// share the sink) and the array file is written when the last handle
/// drops.
#[derive(Debug)]
struct JsonSink {
    path: PathBuf,
    records: Vec<BenchRecord>,
}

impl Drop for JsonSink {
    fn drop(&mut self) {
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 == self.records.len() { "" } else { "," };
            let elems = match r.elems_per_iter {
                Some(n) => n.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"mean_ns\": {:.2}, \"median_ns\": {:.2}, \"min_ns\": {:.2}, \"samples\": {}, \"elems_per_iter\": {}}}{sep}\n",
                r.id.replace('\\', "\\\\").replace('"', "\\\""),
                r.mean_ns,
                r.median_ns,
                r.min_ns,
                r.samples,
                elems,
            ));
        }
        out.push_str("]\n");
        if let Err(e) = std::fs::write(&self.path, out) {
            eprintln!("criterion shim: cannot write {}: {e}", self.path.display());
        }
    }
}

/// Top-level benchmark driver and configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    sink: Option<Rc<RefCell<JsonSink>>>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
            sink: None,
        }
    }
}

impl Criterion {
    /// Attaches a JSON sink: every benchmark result is appended to the
    /// array written to `path` when the (last clone of the) driver
    /// drops.
    pub fn json_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.sink = Some(Rc::new(RefCell::new(JsonSink {
            path: path.into(),
            records: Vec::new(),
        })));
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            config: self.clone(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_bench(&config, None, &id.into().id, f);
        self
    }
}

/// A group of benchmarks sharing throughput and config overrides.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Criterion,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_bench(&self.config, self.throughput, &id, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        run_bench(&self.config, self.throughput, &id, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    config: &Criterion,
    throughput: Option<Throughput>,
    id: &str,
    mut f: F,
) {
    let sink = config.sink.clone();
    // Calibrate: grow the batch until one batch takes >= ~1 ms (or the
    // warm-up budget is spent), so Instant overhead stays negligible.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1)
            || warm_start.elapsed() >= config.warm_up_time
            || iters >= 1 << 30
        {
            break;
        }
        iters *= 2;
    }

    let per_sample = config.measurement_time / config.sample_size as u32;
    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let sample_start = Instant::now();
        let mut batches = 0u64;
        let mut total = Duration::ZERO;
        while sample_start.elapsed() < per_sample || batches == 0 {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            batches += 1;
        }
        samples.push(total.as_secs_f64() / (batches * iters) as f64);
    }

    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let median = {
        let mut sorted = samples.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 0 {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        }
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / mean),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / mean),
        None => String::new(),
    };
    println!(
        "bench {id:<48} mean {:>12} median {:>12} min {:>12} (n={}){rate}",
        fmt_time(mean),
        fmt_time(median),
        fmt_time(min),
        samples.len(),
    );
    if let Some(sink) = sink {
        sink.borrow_mut().records.push(BenchRecord {
            id: id.to_string(),
            mean_ns: mean * 1e9,
            median_ns: median * 1e9,
            min_ns: min * 1e9,
            samples: samples.len(),
            elems_per_iter: match throughput {
                Some(Throughput::Elements(n)) => Some(n),
                _ => None,
            },
        });
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes --bench (and possibly filter args); this
            // minimal runner has no filtering, so arguments are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3)
    }

    #[test]
    fn group_and_bencher_run() {
        let mut c = quick();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        let mut ran = 0u64;
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran += 1;
        });
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn macros_compose() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group! {name = benches; config = quick(); targets = target}
        benches();
    }

    #[test]
    fn json_sink_writes_array() {
        let path =
            std::env::temp_dir().join(format!("criterion_shim_test_{}.json", std::process::id()));
        {
            let mut c = quick().json_out(&path);
            let mut g = c.benchmark_group("sinked");
            g.throughput(Throughput::Elements(10));
            g.bench_function("a", |b| b.iter(|| 1 + 1));
            g.finish();
            c.bench_function("b", |b| b.iter(|| 2 + 2));
        } // last handle drops -> file written
        let body = std::fs::read_to_string(&path).expect("sink file written");
        std::fs::remove_file(&path).ok();
        assert!(body.trim_start().starts_with('['));
        assert!(body.trim_end().ends_with(']'));
        assert!(body.contains("\"id\": \"sinked/a\""));
        assert!(body.contains("\"elems_per_iter\": 10"));
        assert!(body.contains("\"id\": \"b\""));
        assert!(body.contains("median_ns"));
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(1.5e-9), "1.5 ns");
        assert_eq!(fmt_time(2.5e-6), "2.50 us");
        assert_eq!(fmt_time(3.0e-3), "3.00 ms");
        assert_eq!(fmt_time(2.0), "2.000 s");
    }
}
