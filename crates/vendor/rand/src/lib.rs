//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *subset* of the `rand` API it actually uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`RngExt`] with `random_range` /
//! `random_bool`. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic per seed on every platform, which is exactly what the
//! reproduction's determinism contract needs (the real `StdRng` is
//! explicitly *not* guaranteed stable across rand versions).
//!
//! To switch to the real crate, point `workspace.dependencies.rand` at a
//! crates.io version; every call site type-checks against rand's API.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to draw a uniform sample of `T` from it.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // start + unit*(end-start) can round up to exactly `end`, which
        // would violate the half-open contract; reject and redraw (the
        // per-draw probability is ~2^-53, so this effectively never
        // iterates, but callers may rely on v < end as an index bound).
        loop {
            // 53 uniform mantissa bits in [0, 1).
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let v = self.start + unit * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        loop {
            let unit = (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32;
            let v = self.start + unit * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

/// Convenience sampling methods, mirroring rand's `Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias for code written against rand's older trait name.
pub use self::RngExt as Rng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<i64> = (0..64).map(|_| a.random_range(0..1000)).collect();
        let vb: Vec<i64> = (0..64).map(|_| b.random_range(0..1000)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(7);
        let vc: Vec<i64> = (0..64).map(|_| c.random_range(0..1000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = rng.random_range(-5..7);
            assert!((-5..7).contains(&v));
            let w: i64 = rng.random_range(1..=121);
            assert!((1..=121).contains(&w));
            let f: f64 = rng.random_range(-999.99..9_999.99);
            assert!((-999.99..9_999.99).contains(&f));
            let u: usize = rng.random_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
