//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! range / tuple / `collection::vec` / `collection::btree_set`
//! strategies, `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! and [`ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! - **Deterministic**: case values derive from a fixed per-test seed
//!   (the FNV hash of the test name), so CI failures always reproduce.
//!   There are consequently no `proptest-regressions/` files to manage;
//!   the directory stays gitignored in case the real crate is swapped in.
//! - **No shrinking**: a failing case panics with the case number and the
//!   captured input values instead of a minimised counterexample.
//! - **`PROPTEST_CASES`** overrides every test's case count (used to keep
//!   CI fast while local runs stay thorough), exactly like real proptest.

use std::collections::BTreeSet;
use std::fmt;

pub use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run (before the `PROPTEST_CASES` override).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    ///
    /// Unparseable values panic (a typo must not silently restore the
    /// default) and `0` is clamped to one case (an env var must not be
    /// able to turn every property test into a vacuous pass).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Err(_) => self.cases.max(1),
            Ok(s) => s
                .parse::<u32>()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES must be an integer, got {s:?}"))
                .max(1),
        }
    }
}

/// Error produced by a failing `prop_assert*!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test RNG: seeded by the FNV-1a hash of the test
/// name so every test draws an independent, reproducible stream.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Value-generation strategies (no shrinking).
pub mod strategy {
    use super::*;
    use std::ops::Range;

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: fmt::Debug + Clone;
        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;
    use std::ops::Range;

    /// A target size (or size range) for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.lo..self.hi)
        }
    }

    /// Strategy producing a `Vec` of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy producing a `BTreeSet` of `element` values.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `BTreeSet<S::Value>` with a cardinality drawn from `size`
    /// (element domains too small for the drawn size are retried, then
    /// accepted below target — matching proptest's best-effort fill).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < 64 * (target + 1) {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // stringify! via an argument, not the format string: conditions
        // containing braces (closures, struct patterns) must not be
        // interpreted as format placeholders.
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assert_ne failed: both {:?}", l);
    }};
}

/// Defines `#[test]` functions that run their body over generated cases.
///
/// Supports the canonical proptest form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0i64..100, v in proptest::collection::vec(0u32..8, 1..20)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            // User attributes (incl. the conventional #[test], plus any
            // #[ignore]/#[cfg]) are re-emitted verbatim, not replaced.
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let cases = cfg.effective_cases();
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cases {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                    )+
                    // The body gets clones; originals are kept so the
                    // failure report can show the inputs. Formatting is
                    // deferred to the failure branch — passing cases
                    // pay one clone, not a Debug rendering.
                    // catch_unwind so a direct panic in the body (an
                    // unwrap or index OOB in the code under test, not a
                    // prop_assert) still reports the generated inputs.
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(
                            let $arg = ::std::clone::Clone::clone(&$arg);
                        )+
                        { $body };
                        ::std::result::Result::<(), $crate::TestCaseError>::Ok(())
                    }));
                    match result {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                        ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                            let inputs = format!(
                                concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                                $(&$arg,)+
                            );
                            panic!("proptest case {case}/{cases} failed: {e}\n  inputs: {inputs}");
                        }
                        ::std::result::Result::Err(payload) => {
                            let inputs = format!(
                                concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                                $(&$arg,)+
                            );
                            eprintln!("proptest case {case}/{cases} panicked\n  inputs: {inputs}");
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -20i64..140, n in 1u32..64) {
            prop_assert!((-20..140).contains(&x));
            prop_assert!((1..64).contains(&n));
        }

        #[test]
        fn vec_sizes(v in collection::vec(0u64..1000, 1..200), exact in collection::vec(0u64..5, 4)) {
            prop_assert!(!v.is_empty() && v.len() < 200);
            prop_assert_eq!(exact.len(), 4);
            prop_assert!(v.iter().all(|&x| x < 1000));
        }

        #[test]
        fn btree_set_cardinality(s in collection::btree_set(0u16..16, 1..16)) {
            prop_assert!(!s.is_empty() && s.len() < 16);
            prop_assert!(s.iter().all(|&x| x < 16));
        }

        #[test]
        fn tuples_work(pair in (0u64..50, 0u32..3)) {
            prop_assert!(pair.0 < 50 && pair.1 < 3);
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 5..30);
        let mut r1 = crate::test_rng("t");
        let mut r2 = crate::test_rng("t");
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }

    #[test]
    fn env_cases_override() {
        // Not set in the test environment by default.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(ProptestConfig::with_cases(7).effective_cases(), 7);
        }
    }
}
