//! Core masks and cgroup-like thread groups.
//!
//! The elastic mechanism's *only* actuator is the cpuset mask of the
//! DBMS's control group (paper §IV: "we use the cgroups ... to isolate
//! the threads of the DBMS ... and limit their available resources").
//! [`CoreMask`] is a 64-bit set of allowed cores; [`Kernel::set_group_mask`](crate::sched::Kernel::set_group_mask)
//! (in `sched`) applies a new mask, migrating displaced threads.

use numa_sim::{CoreId, NodeId, Topology};
use std::fmt;

/// A set of allowed cores (bit `i` = core `i`). Machines up to 64 cores.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreMask(u64);

impl CoreMask {
    /// The empty mask.
    pub const EMPTY: CoreMask = CoreMask(0);

    /// A mask with the first `n` cores set.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= 64, "mask supports up to 64 cores");
        if n == 64 {
            CoreMask(u64::MAX)
        } else {
            CoreMask((1u64 << n) - 1)
        }
    }

    /// All cores of a topology.
    pub fn all(topo: &Topology) -> Self {
        Self::first_n(topo.n_cores())
    }

    /// A mask from an iterator of cores.
    pub fn from_cores<I: IntoIterator<Item = CoreId>>(cores: I) -> Self {
        let mut m = CoreMask(0);
        for c in cores {
            m.insert(c);
        }
        m
    }

    /// A single-core mask.
    pub fn single(core: CoreId) -> Self {
        let mut m = CoreMask(0);
        m.insert(core);
        m
    }

    /// Adds a core.
    pub fn insert(&mut self, core: CoreId) {
        assert!(core.idx() < 64, "core id out of mask range");
        self.0 |= 1 << core.idx();
    }

    /// Removes a core. Returns whether it was present.
    pub fn remove(&mut self, core: CoreId) -> bool {
        let bit = 1u64 << core.idx();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, core: CoreId) -> bool {
        core.idx() < 64 && self.0 & (1 << core.idx()) != 0
    }

    /// Number of allowed cores.
    #[inline]
    pub fn count(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no core is allowed.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates allowed cores in id order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        let bits = self.0;
        (0..64u16)
            .filter(move |i| bits & (1u64 << i) != 0)
            .map(CoreId)
    }

    /// The lowest allowed core, if any.
    pub fn first(&self) -> Option<CoreId> {
        if self.0 == 0 {
            None
        } else {
            Some(CoreId(self.0.trailing_zeros() as u16))
        }
    }

    /// Set intersection.
    pub fn and(&self, other: CoreMask) -> CoreMask {
        CoreMask(self.0 & other.0)
    }

    /// Set union.
    pub fn or(&self, other: CoreMask) -> CoreMask {
        CoreMask(self.0 | other.0)
    }

    /// Set difference: the cores of `self` not in `other`.
    pub fn minus(&self, other: CoreMask) -> CoreMask {
        CoreMask(self.0 & !other.0)
    }

    /// Allowed cores on a given NUMA node.
    pub fn on_node(&self, topo: &Topology, node: NodeId) -> CoreMask {
        CoreMask::from_cores(topo.cores_of(node).filter(|c| self.contains(*c)))
    }

    /// Number of allowed cores per node.
    pub fn count_per_node(&self, topo: &Topology) -> Vec<usize> {
        topo.all_nodes()
            .map(|n| self.on_node(topo, n).count())
            .collect()
    }

    /// Raw bits (for hashing/serialisation in traces).
    pub fn bits(&self) -> u64 {
        self.0
    }
}

impl fmt::Debug for CoreMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CoreMask{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{}", c.0)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for CoreMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// Identifier of a thread group (cgroup analogue).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_and_all() {
        let t = Topology::opteron_4x4();
        let m = CoreMask::all(&t);
        assert_eq!(m.count(), 16);
        assert!(m.contains(CoreId(15)));
        assert!(!m.contains(CoreId(16)));
        assert_eq!(CoreMask::first_n(64).count(), 64);
        assert_eq!(CoreMask::first_n(0), CoreMask::EMPTY);
    }

    #[test]
    fn insert_remove_contains() {
        let mut m = CoreMask::EMPTY;
        m.insert(CoreId(3));
        m.insert(CoreId(9));
        assert!(m.contains(CoreId(3)));
        assert_eq!(m.count(), 2);
        assert!(m.remove(CoreId(3)));
        assert!(!m.remove(CoreId(3)));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn iteration_in_order() {
        let m = CoreMask::from_cores([CoreId(5), CoreId(1), CoreId(12)]);
        let v: Vec<_> = m.iter().collect();
        assert_eq!(v, vec![CoreId(1), CoreId(5), CoreId(12)]);
        assert_eq!(m.first(), Some(CoreId(1)));
        assert_eq!(CoreMask::EMPTY.first(), None);
    }

    #[test]
    fn node_restriction() {
        let t = Topology::opteron_4x4();
        let m = CoreMask::from_cores([CoreId(0), CoreId(1), CoreId(4), CoreId(9)]);
        assert_eq!(m.on_node(&t, NodeId(0)).count(), 2);
        assert_eq!(m.on_node(&t, NodeId(1)).count(), 1);
        assert_eq!(m.count_per_node(&t), vec![2, 1, 1, 0]);
    }

    #[test]
    fn set_algebra() {
        let a = CoreMask::from_cores([CoreId(0), CoreId(1)]);
        let b = CoreMask::from_cores([CoreId(1), CoreId(2)]);
        assert_eq!(a.and(b), CoreMask::single(CoreId(1)));
        assert_eq!(a.or(b).count(), 3);
    }

    #[test]
    fn debug_format_lists_cores() {
        let m = CoreMask::from_cores([CoreId(2), CoreId(7)]);
        assert_eq!(format!("{m:?}"), "CoreMask{2,7}");
    }
}
