//! # os-sim — a simulated operating system scheduler
//!
//! A deterministic, single-threaded model of the Linux scheduling
//! behaviour the ICDE'18 paper studies: CFS-like per-core runqueues,
//! wake placement, load balancing with pull migration ("stolen tasks"),
//! cpuset groups (the elastic mechanism's actuator), per-thread affinity,
//! NUMA first-touch memory policy (via `numa-sim`), and mpstat-style load
//! sampling.
//!
//! Simulated threads implement [`SimWork`]; the [`Kernel`] drives them in
//! fixed ticks, charging their memory traffic and compute against the
//! simulated [`numa_sim::Machine`].
//!
//! ```
//! use os_sim::{Kernel, CoreMask, SpinWork};
//! use emca_metrics::{SimDuration, SimTime};
//!
//! let mut kernel = Kernel::opteron_4x4();
//! let all = CoreMask::all(kernel.machine().topology());
//! let group = kernel.create_group(all);
//! kernel.spawn("worker", group, None,
//!     Box::new(SpinWork::new(SimDuration::from_millis(1))));
//! kernel.run_until(SimTime::from_millis(2));
//! assert_eq!(kernel.n_live_threads(), 0);
//! ```

pub mod cpuset;
pub mod procfs;
pub mod runqueue;
pub mod sched;
pub mod thread;
pub mod trace;
pub mod work;

pub use cpuset::{CoreMask, GroupId};
pub use procfs::{pages_per_node, LoadSample, LoadSampler};
pub use sched::{Kernel, KernelConfig, SchedStats, SpawnReq};
pub use thread::{ThreadState, ThreadStats, Tid};
pub use trace::{SchedTrace, Span};
pub use work::{SimWork, SpinWork, StepOutcome, WaitWork, WorkCtx};
