//! The cooperative work interface between the scheduler and simulated
//! threads.
//!
//! A simulated thread's body is a [`SimWork`] state machine. Each time the
//! scheduler gives the thread a slice of a core, it calls
//! [`SimWork::step`] with a time budget; the work advances (charging
//! memory accesses and compute against the [`numa_sim::Machine`]) and
//! reports how much simulated time it consumed and whether it is still
//! runnable. This is how the whole stack stays single-threaded and
//! deterministic.

use crate::thread::Tid;
use emca_metrics::{SimDuration, SimTime};
use numa_sim::{CoreId, Machine};

/// What a work step did with its budget.
#[derive(Debug)]
pub enum StepOutcome {
    /// Consumed `used` (≤ budget) and remains runnable. Returning less
    /// than the budget is a voluntary yield.
    Ran(SimDuration),
    /// Consumed `used`, then blocked waiting for an event. The thread
    /// will not run again until something calls `WorkCtx::wake` /
    /// `Kernel::wake` for it.
    Blocked(SimDuration),
    /// Consumed `used`, then exited.
    Finished(SimDuration),
}

impl StepOutcome {
    /// Time consumed by the step regardless of outcome.
    pub fn used(&self) -> SimDuration {
        match self {
            StepOutcome::Ran(d) | StepOutcome::Blocked(d) | StepOutcome::Finished(d) => *d,
        }
    }
}

/// Everything a work step may touch.
pub struct WorkCtx<'a> {
    /// The hardware: memory accesses and compute are charged here.
    pub machine: &'a mut Machine,
    /// The core the thread is currently running on.
    pub core: CoreId,
    /// Simulated time at the start of the step.
    pub now: SimTime,
    /// Maximum simulated time this step may consume.
    pub budget: SimDuration,
    /// The running thread's id.
    pub tid: Tid,
    /// Wake requests for other threads (processed after the step).
    pub wakes: &'a mut Vec<Tid>,
}

impl WorkCtx<'_> {
    /// Requests that `tid` be woken once this step returns.
    pub fn wake(&mut self, tid: Tid) {
        self.wakes.push(tid);
    }
}

/// A simulated thread body.
pub trait SimWork {
    /// Advances the work by at most `ctx.budget` of simulated time.
    ///
    /// Implementations must not report more time than the budget; the
    /// kernel clamps and debug-asserts on violations.
    fn step(&mut self, ctx: &mut WorkCtx<'_>) -> StepOutcome;

    /// Short human-readable label (used by the trace renderer).
    fn label(&self) -> &str {
        "work"
    }
}

/// A trivial work item that spins for a fixed amount of CPU time, then
/// exits. Used in tests and microbenchmarks.
pub struct SpinWork {
    remaining: SimDuration,
}

impl SpinWork {
    /// Spins for `total` simulated CPU time.
    pub fn new(total: SimDuration) -> Self {
        SpinWork { remaining: total }
    }
}

impl SimWork for SpinWork {
    fn step(&mut self, ctx: &mut WorkCtx<'_>) -> StepOutcome {
        let used = self.remaining.min(ctx.budget);
        self.remaining -= used;
        if self.remaining.is_zero() {
            StepOutcome::Finished(used)
        } else {
            StepOutcome::Ran(used)
        }
    }

    fn label(&self) -> &str {
        "spin"
    }
}

/// Work that immediately blocks until woken `n` times, then finishes.
/// Used in scheduler tests.
pub struct WaitWork {
    remaining_wakes: u32,
}

impl WaitWork {
    /// Blocks until woken `n` times.
    pub fn new(n: u32) -> Self {
        WaitWork { remaining_wakes: n }
    }
}

impl SimWork for WaitWork {
    fn step(&mut self, _ctx: &mut WorkCtx<'_>) -> StepOutcome {
        if self.remaining_wakes == 0 {
            StepOutcome::Finished(SimDuration::ZERO)
        } else {
            self.remaining_wakes -= 1;
            StepOutcome::Blocked(SimDuration::ZERO)
        }
    }

    fn label(&self) -> &str {
        "wait"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_used() {
        assert_eq!(
            StepOutcome::Ran(SimDuration::from_micros(5)).used(),
            SimDuration::from_micros(5)
        );
        assert_eq!(
            StepOutcome::Blocked(SimDuration::ZERO).used(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn spin_work_consumes_budget_then_finishes() {
        let mut machine = Machine::opteron_4x4();
        let mut wakes = Vec::new();
        let mut w = SpinWork::new(SimDuration::from_micros(150));
        let mut ctx = WorkCtx {
            machine: &mut machine,
            core: CoreId(0),
            now: SimTime::ZERO,
            budget: SimDuration::from_micros(100),
            tid: Tid(0),
            wakes: &mut wakes,
        };
        match w.step(&mut ctx) {
            StepOutcome::Ran(d) => assert_eq!(d, SimDuration::from_micros(100)),
            other => panic!("expected Ran, got {other:?}"),
        }
        match w.step(&mut ctx) {
            StepOutcome::Finished(d) => assert_eq!(d, SimDuration::from_micros(50)),
            other => panic!("expected Finished, got {other:?}"),
        }
    }

    #[test]
    fn wait_work_blocks_until_woken() {
        let mut machine = Machine::opteron_4x4();
        let mut wakes = Vec::new();
        let mut w = WaitWork::new(1);
        let mut ctx = WorkCtx {
            machine: &mut machine,
            core: CoreId(0),
            now: SimTime::ZERO,
            budget: SimDuration::from_micros(100),
            tid: Tid(0),
            wakes: &mut wakes,
        };
        assert!(matches!(w.step(&mut ctx), StepOutcome::Blocked(_)));
        assert!(matches!(w.step(&mut ctx), StepOutcome::Finished(_)));
    }

    #[test]
    fn ctx_wake_collects() {
        let mut machine = Machine::opteron_4x4();
        let mut wakes = Vec::new();
        let mut ctx = WorkCtx {
            machine: &mut machine,
            core: CoreId(1),
            now: SimTime::ZERO,
            budget: SimDuration::from_micros(1),
            tid: Tid(3),
            wakes: &mut wakes,
        };
        ctx.wake(Tid(7));
        ctx.wake(Tid(9));
        assert_eq!(wakes, vec![Tid(7), Tid(9)]);
    }
}
