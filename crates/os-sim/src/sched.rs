//! The simulated OS kernel: a CFS-like scheduler over the NUMA machine.
//!
//! Reproduces the Linux behaviours the paper analyses in §II:
//!
//! - per-core runqueues ordered by virtual runtime, with timeslice
//!   preemption;
//! - wake placement on the least-loaded allowed core (spreading threads
//!   over all sockets, which is exactly the "scattered mapping" the paper
//!   criticises);
//! - periodic load balancing and new-idle stealing with pull migration
//!   (the *stolen tasks* of Fig. 13(d));
//! - cpuset groups whose allowed-core mask can be changed at runtime —
//!   the elastic mechanism's actuator;
//! - per-thread affinity (`pthread_setaffinity_np` analogue) used by the
//!   hand-coded Q6 baseline and the NUMA-aware engine flavor;
//! - scheduling traces for the migration maps of Fig. 5 / Fig. 16.

use crate::cpuset::{CoreMask, GroupId};
use crate::runqueue::RunQueue;
use crate::thread::{ThreadSlot, ThreadState, ThreadStats, Tid};
use crate::trace::SchedTrace;
use crate::work::{SimWork, StepOutcome, WorkCtx};
use emca_metrics::{SimDuration, SimTime};
use numa_sim::{CoreId, Machine};

/// Scheduler tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Simulation tick: the granularity at which cores execute work.
    pub tick: SimDuration,
    /// Timeslice after which a running thread is preempted if others wait.
    pub timeslice: SimDuration,
    /// A running thread is preempted once its vruntime exceeds the
    /// queue minimum by this many nanoseconds.
    pub preempt_granularity_ns: u64,
    /// Period of the load balancer.
    pub balance_interval: SimDuration,
    /// Minimum load difference (in runnable threads) to trigger a pull.
    pub imbalance_threshold: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            tick: SimDuration::from_micros(100),
            timeslice: SimDuration::from_millis(6),
            preempt_granularity_ns: 3_000_000,
            balance_interval: SimDuration::from_millis(4),
            imbalance_threshold: 2,
        }
    }
}

/// Kernel-wide scheduling statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// Thread-to-core changes of any kind.
    pub migrations: u64,
    /// Pull-migrations performed by load balancing / new-idle stealing
    /// (the paper's "stolen tasks").
    pub steals: u64,
    /// Wake events delivered.
    pub wakeups: u64,
    /// Involuntary context switches (timeslice/granularity preemptions).
    pub preemptions: u64,
    /// Threads spawned over the kernel lifetime.
    pub spawned: u64,
}

/// A cgroup: member threads plus the allowed-core mask.
struct Group {
    mask: CoreMask,
    members: Vec<Tid>,
    busy_ns: u64,
    /// Time-integrated CPU demand: Σ over ticks of
    /// `runnable_members × tick`. A monitor's per-interval delta of this
    /// counter gives the *windowed* demand the elastic mechanism's
    /// `u` predicate consumes (instantaneous runnable-count sampling
    /// oscillates with sub-interval scheduling noise).
    demand_ns: u64,
}

/// A spawn request issued from inside a work step.
pub struct SpawnReq {
    /// Thread name (trace label).
    pub name: String,
    /// Owning group.
    pub group: GroupId,
    /// Optional per-thread affinity (`None` = group mask only).
    pub affinity: Option<CoreMask>,
    /// The thread body.
    pub work: Box<dyn SimWork>,
}

/// The simulated kernel. Owns the machine and all threads.
pub struct Kernel {
    machine: Machine,
    cfg: KernelConfig,
    now: SimTime,
    threads: Vec<ThreadSlot>,
    affinities: Vec<CoreMask>,
    runqueues: Vec<RunQueue>,
    current: Vec<Option<Tid>>,
    min_vruntime: Vec<u64>,
    groups: Vec<Group>,
    next_balance: SimTime,
    stats: SchedStats,
    trace: SchedTrace,
    wake_buf: Vec<Tid>,
    spawn_buf: Vec<SpawnReq>,
    /// Deterministic LCG driving wake placement. Linux's idle-core scan
    /// order is arbitrary with respect to data placement; modelling it as
    /// seeded pseudo-randomness reproduces the thread scatter of the
    /// paper's Fig. 5 without sacrificing reproducibility.
    place_rng: u64,
}

impl Kernel {
    /// Creates a kernel over a machine. The machine must have been built
    /// with the same tick as `cfg.tick` (its congestion window).
    pub fn new(machine: Machine, cfg: KernelConfig) -> Self {
        let n_cores = machine.topology().n_cores();
        assert!(n_cores <= 64, "CoreMask supports at most 64 cores");
        assert!(!cfg.tick.is_zero(), "tick must be positive");
        Kernel {
            now: SimTime::ZERO,
            threads: Vec::new(),
            affinities: Vec::new(),
            runqueues: (0..n_cores).map(|_| RunQueue::new()).collect(),
            current: vec![None; n_cores],
            min_vruntime: vec![0; n_cores],
            groups: Vec::new(),
            next_balance: SimTime::ZERO + cfg.balance_interval,
            stats: SchedStats::default(),
            trace: SchedTrace::disabled(),
            wake_buf: Vec::new(),
            spawn_buf: Vec::new(),
            place_rng: 0x2545_F491_4F6C_DD1D,
            machine,
            cfg,
        }
    }

    /// Next placement random number (xorshift64*; deterministic).
    fn place_next(&mut self) -> u64 {
        let mut x = self.place_rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.place_rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Convenience: the paper's machine with default scheduler tuning.
    pub fn opteron_4x4() -> Self {
        let cfg = KernelConfig::default();
        let machine = Machine::new(numa_sim::MachineConfig::opteron_4x4(), cfg.tick);
        Kernel::new(machine, cfg)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// The machine (counters, memory map, topology).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access (allocation of DB memory, counter injection
    /// in tests). Do not call from inside work steps — they receive the
    /// machine through their context.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Kernel scheduling statistics.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Enables span tracing (Fig. 5 / Fig. 16).
    pub fn enable_trace(&mut self) {
        self.trace = SchedTrace::enabled();
    }

    /// Finishes and returns the trace.
    pub fn take_trace(&mut self) -> SchedTrace {
        let mut t = std::mem::take(&mut self.trace);
        t.finish(self.now);
        t
    }

    // ----- groups ---------------------------------------------------------

    /// Creates a thread group with an allowed-core mask.
    pub fn create_group(&mut self, mask: CoreMask) -> GroupId {
        assert!(!mask.is_empty(), "group mask must allow at least one core");
        let id = GroupId(self.groups.len() as u32);
        self.groups.push(Group {
            mask,
            members: Vec::new(),
            busy_ns: 0,
            demand_ns: 0,
        });
        id
    }

    /// The group's current mask.
    pub fn group_mask(&self, group: GroupId) -> CoreMask {
        self.groups[group.0 as usize].mask
    }

    /// Cumulative on-CPU nanoseconds of the group's threads.
    pub fn group_busy_ns(&self, group: GroupId) -> u64 {
        self.groups[group.0 as usize].busy_ns
    }

    /// Cumulative time-integrated CPU demand of the group
    /// (`Σ runnable_members × tick`); monitors consume window deltas.
    pub fn group_demand_ns(&self, group: GroupId) -> u64 {
        self.groups[group.0 as usize].demand_ns
    }

    /// Live (unfinished) members of a group.
    pub fn group_members(&self, group: GroupId) -> Vec<Tid> {
        self.groups[group.0 as usize]
            .members
            .iter()
            .copied()
            .filter(|t| self.threads[t.idx()].is_live())
            .collect()
    }

    /// Number of group members that are runnable or running right now —
    /// the instantaneous CPU demand an `mpstat`/loadavg snapshot sees.
    pub fn group_runnable(&self, group: GroupId) -> usize {
        self.groups[group.0 as usize]
            .members
            .iter()
            .filter(|t| {
                matches!(
                    self.threads[t.idx()].state,
                    ThreadState::Runnable | ThreadState::Running
                )
            })
            .count()
    }

    /// Applies a new cpuset mask to a group: threads on disallowed cores
    /// are migrated immediately (the cgroup cpuset behaviour the
    /// mechanism relies on).
    pub fn set_group_mask(&mut self, group: GroupId, mask: CoreMask) {
        assert!(!mask.is_empty(), "group mask must allow at least one core");
        self.groups[group.0 as usize].mask = mask;
        let members = self.groups[group.0 as usize].members.clone();
        for tid in members {
            let slot = &self.threads[tid.idx()];
            if !slot.is_live() {
                continue;
            }
            let allowed = self.allowed_mask(tid);
            match slot.state {
                ThreadState::Running => {
                    let core = slot.core.expect("running thread without core");
                    if !allowed.contains(core) {
                        self.deschedule(tid, core);
                        self.enqueue(tid, None);
                    }
                }
                ThreadState::Runnable => {
                    let core = slot.core.expect("queued thread without core");
                    if !allowed.contains(core) {
                        let vr = slot.vruntime;
                        let removed = self.runqueues[core.idx()].remove(vr, tid);
                        debug_assert!(removed, "runnable thread missing from queue");
                        self.enqueue(tid, None);
                    }
                }
                ThreadState::Blocked | ThreadState::Finished => {}
            }
        }
    }

    // ----- threads --------------------------------------------------------

    /// Spawns a thread into `group`, optionally with a per-thread affinity
    /// mask (intersected with the group mask). Returns its tid.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        group: GroupId,
        affinity: Option<CoreMask>,
        work: Box<dyn SimWork>,
    ) -> Tid {
        let tid = Tid(self.threads.len() as u32);
        let slot = ThreadSlot::new(tid, name.into(), group, work);
        self.threads.push(slot);
        self.affinities
            .push(affinity.unwrap_or_else(|| CoreMask::all(self.machine.topology())));
        self.groups[group.0 as usize].members.push(tid);
        self.stats.spawned += 1;
        self.enqueue(tid, None);
        tid
    }

    /// Sets a thread's affinity (`pthread_setaffinity_np` analogue),
    /// migrating it if its current core becomes disallowed.
    pub fn set_thread_affinity(&mut self, tid: Tid, affinity: CoreMask) {
        self.affinities[tid.idx()] = affinity;
        let slot = &self.threads[tid.idx()];
        if !slot.is_live() {
            return;
        }
        let allowed = self.allowed_mask(tid);
        match slot.state {
            ThreadState::Running => {
                let core = slot.core.expect("running thread without core");
                if !allowed.contains(core) {
                    self.deschedule(tid, core);
                    self.enqueue(tid, None);
                }
            }
            ThreadState::Runnable => {
                let core = slot.core.expect("queued thread without core");
                if !allowed.contains(core) {
                    let vr = slot.vruntime;
                    self.runqueues[core.idx()].remove(vr, tid);
                    self.enqueue(tid, None);
                }
            }
            _ => {}
        }
    }

    /// Wakes a blocked thread. Waking a running thread records a pending
    /// wake so a block racing with the wake is not lost; waking a
    /// runnable or finished thread is a no-op.
    pub fn wake(&mut self, tid: Tid) {
        match self.threads[tid.idx()].state {
            ThreadState::Blocked => {
                self.threads[tid.idx()].state = ThreadState::Runnable;
                self.threads[tid.idx()].stats.wakeups += 1;
                self.stats.wakeups += 1;
                self.enqueue(tid, None);
            }
            ThreadState::Running => {
                self.threads[tid.idx()].wake_pending = true;
            }
            ThreadState::Runnable | ThreadState::Finished => {}
        }
    }

    /// The thread's lifecycle state.
    pub fn thread_state(&self, tid: Tid) -> ThreadState {
        self.threads[tid.idx()].state
    }

    /// The thread's accounting.
    pub fn thread_stats(&self, tid: Tid) -> ThreadStats {
        self.threads[tid.idx()].stats
    }

    /// The thread's name.
    pub fn thread_name(&self, tid: Tid) -> &str {
        &self.threads[tid.idx()].name
    }

    /// Number of live (not finished) threads.
    pub fn n_live_threads(&self) -> usize {
        self.threads.iter().filter(|t| t.is_live()).count()
    }

    /// Total threads ever spawned.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Number of runnable-or-running threads (system load).
    pub fn n_runnable(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| matches!(t.state, ThreadState::Runnable | ThreadState::Running))
            .count()
    }

    // ----- execution ------------------------------------------------------

    /// Runs one scheduler tick: every core executes its current thread for
    /// up to one tick of simulated time; then wake/spawn requests are
    /// serviced, the machine's contention window rolls, and (periodically)
    /// the load balancer runs.
    pub fn run_tick(&mut self) {
        let tick = self.cfg.tick;
        let n_cores = self.runqueues.len();
        for core_idx in 0..n_cores {
            let core = CoreId(core_idx as u16);
            if self.current[core_idx].is_none() {
                self.pick_next(core);
            }
            let Some(tid) = self.current[core_idx] else {
                continue;
            };
            // Pay off debt from a previous step that overshot its budget
            // (e.g. one congested memory access longer than a tick): the
            // thread is still executing that operation.
            let debt = self.threads[tid.idx()].debt;
            if debt >= tick {
                self.threads[tid.idx()].debt = debt - tick;
                self.charge(core_idx, tid, tick);
                continue;
            }
            let budget = tick - debt;
            let mut work = self.threads[tid.idx()]
                .work
                .take()
                .expect("running thread without work body");
            let mut wakes = std::mem::take(&mut self.wake_buf);
            let outcome = {
                let mut ctx = WorkCtx {
                    machine: &mut self.machine,
                    core,
                    now: self.now,
                    budget,
                    tid,
                    wakes: &mut wakes,
                };
                work.step(&mut ctx)
            };
            self.threads[tid.idx()].work = Some(work);
            let total = debt + outcome.used();
            let used = total.min(tick);
            match outcome {
                // A runnable thread carries its overshoot into later ticks.
                StepOutcome::Ran(_) => {
                    self.threads[tid.idx()].debt = total.saturating_sub(tick);
                }
                // Block/exit take effect now; residual overshoot (at most
                // one charge item) is dropped.
                _ => self.threads[tid.idx()].debt = SimDuration::ZERO,
            }
            self.charge(core_idx, tid, used);
            let end = self.now + used;
            match outcome {
                StepOutcome::Ran(_) => {
                    let slot = &self.threads[tid.idx()];
                    let over_slice = slot.slice_used >= self.cfg.timeslice;
                    let over_granularity = self.runqueues[core_idx]
                        .min_vruntime()
                        .is_some_and(|mv| slot.vruntime > mv + self.cfg.preempt_granularity_ns);
                    if over_slice || over_granularity {
                        self.stats.preemptions += 1;
                        self.trace.on_stop(tid, end);
                        let slot = &mut self.threads[tid.idx()];
                        slot.state = ThreadState::Runnable;
                        slot.slice_used = SimDuration::ZERO;
                        let vr = slot.vruntime;
                        self.current[core_idx] = None;
                        self.runqueues[core_idx].push(vr, tid);
                    }
                }
                StepOutcome::Blocked(_) => {
                    self.trace.on_stop(tid, end);
                    self.current[core_idx] = None;
                    let slot = &mut self.threads[tid.idx()];
                    slot.slice_used = SimDuration::ZERO;
                    if slot.wake_pending {
                        slot.wake_pending = false;
                        slot.state = ThreadState::Runnable;
                        slot.stats.wakeups += 1;
                        self.stats.wakeups += 1;
                        self.enqueue(tid, Some(core));
                    } else {
                        slot.state = ThreadState::Blocked;
                    }
                }
                StepOutcome::Finished(_) => {
                    self.trace.on_stop(tid, end);
                    self.current[core_idx] = None;
                    self.threads[tid.idx()].state = ThreadState::Finished;
                    self.threads[tid.idx()].work = None;
                }
            }
            for w in wakes.drain(..) {
                self.wake(w);
            }
            self.wake_buf = wakes;
            self.admit_spawns();
        }
        // Integrate per-group CPU demand over the tick.
        let tick_ns = tick.as_nanos();
        for gi in 0..self.groups.len() {
            let runnable = self.groups[gi]
                .members
                .iter()
                .filter(|t| {
                    matches!(
                        self.threads[t.idx()].state,
                        ThreadState::Runnable | ThreadState::Running
                    )
                })
                .count() as u64;
            self.groups[gi].demand_ns += runnable * tick_ns;
        }
        self.machine.end_tick();
        self.now += tick;
        if self.now >= self.next_balance {
            self.load_balance();
            self.next_balance = self.now + self.cfg.balance_interval;
        }
    }

    /// Accounts `used` on-CPU time for `tid` on core `core_idx`.
    fn charge(&mut self, core_idx: usize, tid: Tid, used: SimDuration) {
        if used.is_zero() {
            return;
        }
        self.machine
            .counters_mut()
            .busy_ns
            .add(core_idx, used.as_nanos());
        let group = self.threads[tid.idx()].group;
        self.groups[group.0 as usize].busy_ns += used.as_nanos();
        let slot = &mut self.threads[tid.idx()];
        slot.stats.cpu_time += used;
        slot.vruntime += used.as_nanos();
        slot.slice_used += used;
    }

    /// Runs ticks until simulated time reaches `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.now < deadline {
            self.run_tick();
        }
    }

    /// Runs ticks until `pred` returns true (checked between ticks) or
    /// `deadline` passes. Returns true if the predicate fired.
    pub fn run_until_cond(
        &mut self,
        deadline: SimTime,
        mut pred: impl FnMut(&Kernel) -> bool,
    ) -> bool {
        while self.now < deadline {
            if pred(self) {
                return true;
            }
            self.run_tick();
        }
        pred(self)
    }

    /// Queues a spawn request as if issued from a work step (mainly for
    /// drivers that interleave with ticks).
    pub fn request_spawn(&mut self, req: SpawnReq) {
        self.spawn_buf.push(req);
        self.admit_spawns();
    }

    /// Collects spawn requests produced by work steps. Work items push
    /// into a shared buffer owned by their runtime wrapper; the engine
    /// crates use [`Kernel::spawn`] / [`Kernel::request_spawn`] directly,
    /// so this simply drains the internal buffer.
    fn admit_spawns(&mut self) {
        while let Some(req) = self.spawn_buf.pop() {
            self.spawn(req.name, req.group, req.affinity, req.work);
        }
    }

    // ----- internals ------------------------------------------------------

    /// Effective allowed mask: group ∩ thread affinity, falling back to
    /// the group mask when the intersection is empty (cpuset semantics:
    /// the cgroup wins).
    pub fn allowed_mask(&self, tid: Tid) -> CoreMask {
        let slot = &self.threads[tid.idx()];
        let group_mask = self.groups[slot.group.0 as usize].mask;
        let combined = group_mask.and(self.affinities[tid.idx()]);
        if combined.is_empty() {
            group_mask
        } else {
            combined
        }
    }

    /// Load metric of a core: queued plus running threads.
    fn core_load(&self, core: usize) -> usize {
        self.runqueues[core].len() + usize::from(self.current[core].is_some())
    }

    /// Places a runnable thread on a core's queue. `prefer` biases toward
    /// a specific core (wake affinity); otherwise Linux-like wake
    /// placement: the previous core if idle, else an idle allowed core
    /// found by a scan from a pseudo-random start (the scan order is
    /// arbitrary w.r.t. data placement), else a pseudo-random allowed
    /// core.
    fn enqueue(&mut self, tid: Tid, prefer: Option<CoreId>) {
        let allowed = self.allowed_mask(tid);
        debug_assert!(!allowed.is_empty());
        let prev = self.threads[tid.idx()].core;
        let target = prefer
            .filter(|c| allowed.contains(*c))
            .or_else(|| prev.filter(|c| allowed.contains(*c) && self.core_load(c.idx()) == 0))
            .unwrap_or_else(|| {
                let cores: Vec<CoreId> = allowed.iter().collect();
                let start = (self.place_next() % cores.len() as u64) as usize;
                (0..cores.len())
                    .map(|i| cores[(start + i) % cores.len()])
                    .find(|c| self.core_load(c.idx()) == 0)
                    .unwrap_or(cores[start])
            });
        let slot = &mut self.threads[tid.idx()];
        slot.state = ThreadState::Runnable;
        if let Some(p) = slot.core {
            if p != target {
                slot.stats.migrations += 1;
                self.stats.migrations += 1;
            }
        }
        slot.core = Some(target);
        // Normalise vruntime so migrated/woken threads neither starve the
        // queue nor get starved (CFS's min_vruntime placement).
        let floor = self.min_vruntime[target.idx()].saturating_sub(self.cfg.timeslice.as_nanos());
        if slot.vruntime < floor {
            slot.vruntime = floor;
        }
        let vr = slot.vruntime;
        self.runqueues[target.idx()].push(vr, tid);
    }

    /// Takes the running thread off `core` and marks it runnable (used by
    /// mask changes).
    fn deschedule(&mut self, tid: Tid, core: CoreId) {
        debug_assert_eq!(self.current[core.idx()], Some(tid));
        self.trace.on_stop(tid, self.now);
        self.current[core.idx()] = None;
        let slot = &mut self.threads[tid.idx()];
        slot.state = ThreadState::Runnable;
        slot.slice_used = SimDuration::ZERO;
    }

    /// Picks the next thread for an idle core, stealing from the busiest
    /// queue if the local one is empty (new-idle balancing).
    fn pick_next(&mut self, core: CoreId) {
        let core_idx = core.idx();
        let picked = self.runqueues[core_idx].pop_min().or_else(|| {
            self.steal_for(core).inspect(|_| {
                self.stats.steals += 1;
            })
        });
        if let Some((vr, tid)) = picked {
            self.min_vruntime[core_idx] = self.min_vruntime[core_idx].max(vr);
            let slot = &mut self.threads[tid.idx()];
            debug_assert_eq!(slot.state, ThreadState::Runnable);
            slot.state = ThreadState::Running;
            if slot.core != Some(core) {
                slot.stats.migrations += 1;
                self.stats.migrations += 1;
            }
            slot.core = Some(core);
            self.current[core_idx] = Some(tid);
            self.trace.on_run(tid, core, self.now);
        }
    }

    /// Attempts to steal one queued thread (allowed on `core`) from the
    /// busiest other queue.
    fn steal_for(&mut self, core: CoreId) -> Option<(u64, Tid)> {
        let n = self.runqueues.len();
        let busiest = (0..n)
            .filter(|&c| c != core.idx() && !self.runqueues[c].is_empty())
            .max_by_key(|&c| (self.runqueues[c].len(), std::cmp::Reverse(c)))?;
        // Scan from the tail for a migratable thread.
        let candidates: Vec<(u64, Tid)> = self.runqueues[busiest].iter().collect();
        for &(vr, tid) in candidates.iter().rev() {
            if self.allowed_mask(tid).contains(core) {
                self.runqueues[busiest].remove(vr, tid);
                self.threads[tid.idx()].stats.times_stolen += 1;
                return Some((vr, tid));
            }
        }
        None
    }

    /// Periodic balancing: each under-loaded core pulls one task from the
    /// busiest queue when the imbalance exceeds the threshold.
    fn load_balance(&mut self) {
        let n = self.runqueues.len();
        for core_idx in 0..n {
            let my_load = self.core_load(core_idx);
            let Some(busiest) = (0..n)
                .filter(|&c| c != core_idx)
                .max_by_key(|&c| self.runqueues[c].len())
            else {
                continue;
            };
            if self.runqueues[busiest].len() < my_load + self.cfg.imbalance_threshold {
                continue;
            }
            let core = CoreId(core_idx as u16);
            let candidates: Vec<(u64, Tid)> = self.runqueues[busiest].iter().collect();
            for &(vr, tid) in candidates.iter().rev() {
                if self.allowed_mask(tid).contains(core) {
                    self.runqueues[busiest].remove(vr, tid);
                    self.threads[tid.idx()].stats.times_stolen += 1;
                    self.stats.steals += 1;
                    self.stats.migrations += 1;
                    self.threads[tid.idx()].stats.migrations += 1;
                    self.threads[tid.idx()].core = Some(core);
                    let floor =
                        self.min_vruntime[core_idx].saturating_sub(self.cfg.timeslice.as_nanos());
                    let vr = vr.max(floor);
                    self.threads[tid.idx()].vruntime = vr;
                    self.runqueues[core_idx].push(vr, tid);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{SpinWork, WaitWork};
    use numa_sim::MachineConfig;

    fn kernel() -> Kernel {
        let cfg = KernelConfig::default();
        let machine = Machine::new(MachineConfig::opteron_4x4(), cfg.tick);
        Kernel::new(machine, cfg)
    }

    fn spin(ms: u64) -> Box<SpinWork> {
        Box::new(SpinWork::new(SimDuration::from_millis(ms)))
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let mut k = kernel();
        let g = k.create_group(CoreMask::all(k.machine().topology()));
        let t = k.spawn("spin", g, None, spin(1));
        k.run_until(SimTime::from_millis(2));
        assert_eq!(k.thread_state(t), ThreadState::Finished);
        assert_eq!(k.thread_stats(t).cpu_time, SimDuration::from_millis(1));
        assert_eq!(k.group_busy_ns(g), 1_000_000);
    }

    #[test]
    fn threads_spread_over_cores() {
        let mut k = kernel();
        let g = k.create_group(CoreMask::all(k.machine().topology()));
        for i in 0..16 {
            k.spawn(format!("w{i}"), g, None, spin(5));
        }
        k.run_tick();
        // All 16 cores should be occupied after one tick.
        let busy = k.machine().counters().busy_ns.snapshot();
        assert_eq!(busy.iter().filter(|&&b| b > 0).count(), 16);
    }

    #[test]
    fn mask_restricts_execution() {
        let mut k = kernel();
        let mask = CoreMask::from_cores([CoreId(0), CoreId(1)]);
        let g = k.create_group(mask);
        for i in 0..4 {
            k.spawn(format!("w{i}"), g, None, spin(2));
        }
        k.run_until(SimTime::from_millis(20));
        let busy = k.machine().counters().busy_ns.snapshot();
        assert!(busy[0] > 0 && busy[1] > 0);
        for b in &busy[2..] {
            assert_eq!(*b, 0, "work ran outside the cpuset");
        }
    }

    #[test]
    fn timesharing_on_restricted_mask_is_fair() {
        let mut k = kernel();
        let g = k.create_group(CoreMask::single(CoreId(0)));
        let a = k.spawn("a", g, None, spin(50));
        let b = k.spawn("b", g, None, spin(50));
        k.run_until(SimTime::from_millis(50));
        let ca = k.thread_stats(a).cpu_time.as_nanos() as f64;
        let cb = k.thread_stats(b).cpu_time.as_nanos() as f64;
        assert!((ca / cb - 1.0).abs() < 0.3, "unfair split: {ca} vs {cb}");
        assert!(k.stats().preemptions > 0);
    }

    #[test]
    fn shrinking_mask_migrates_running_threads() {
        let mut k = kernel();
        let g = k.create_group(CoreMask::all(k.machine().topology()));
        for i in 0..8 {
            k.spawn(format!("w{i}"), g, None, spin(100));
        }
        k.run_until(SimTime::from_millis(2));
        let before = k.machine().counters().busy_ns.snapshot();
        let mask = CoreMask::from_cores([CoreId(0), CoreId(1)]);
        k.set_group_mask(g, mask);
        k.run_until(SimTime::from_millis(12));
        let after = k.machine().counters().busy_ns.snapshot();
        for c in 2..16 {
            assert_eq!(
                after[c], before[c],
                "core {c} ran group work after mask shrink"
            );
        }
        assert!(k.stats().migrations > 0);
    }

    #[test]
    fn wake_unblocks_thread() {
        let mut k = kernel();
        let g = k.create_group(CoreMask::all(k.machine().topology()));
        let w = k.spawn("waiter", g, None, Box::new(WaitWork::new(1)));
        k.run_until(SimTime::from_millis(1));
        assert_eq!(k.thread_state(w), ThreadState::Blocked);
        k.wake(w);
        k.run_until(SimTime::from_millis(2));
        assert_eq!(k.thread_state(w), ThreadState::Finished);
        assert_eq!(k.thread_stats(w).wakeups, 1);
    }

    #[test]
    fn wake_pending_is_not_lost() {
        let mut k = kernel();
        let g = k.create_group(CoreMask::all(k.machine().topology()));
        let w = k.spawn("waiter", g, None, Box::new(WaitWork::new(1)));
        // Wake before it has even run (still Runnable): no-op, it will
        // block on first step. Then wake while Running is captured by the
        // pending flag. Simplest check: wake right after it blocks within
        // the same logical turn.
        k.run_tick();
        assert_eq!(k.thread_state(w), ThreadState::Blocked);
        k.wake(w);
        k.wake(w); // double wake coalesces
        k.run_until(SimTime::from_millis(2));
        assert_eq!(k.thread_state(w), ThreadState::Finished);
    }

    #[test]
    fn per_thread_affinity_pins() {
        let mut k = kernel();
        let g = k.create_group(CoreMask::all(k.machine().topology()));
        let t = k.spawn("pinned", g, Some(CoreMask::single(CoreId(7))), spin(3));
        k.run_until(SimTime::from_millis(5));
        assert_eq!(k.thread_state(t), ThreadState::Finished);
        let busy = k.machine().counters().busy_ns.snapshot();
        assert_eq!(busy[7], 3_000_000);
        assert_eq!(k.thread_stats(t).migrations, 0);
    }

    #[test]
    fn group_mask_overrides_incompatible_affinity() {
        let mut k = kernel();
        let g = k.create_group(CoreMask::single(CoreId(0)));
        // Affinity to core 5, but the cgroup only allows core 0.
        let t = k.spawn("conflict", g, Some(CoreMask::single(CoreId(5))), spin(1));
        k.run_until(SimTime::from_millis(3));
        assert_eq!(k.thread_state(t), ThreadState::Finished);
        let busy = k.machine().counters().busy_ns.snapshot();
        assert_eq!(busy[0], 1_000_000);
        assert_eq!(busy[5], 0);
    }

    #[test]
    fn overload_triggers_steals() {
        let mut k = kernel();
        let g = k.create_group(CoreMask::all(k.machine().topology()));
        // 64 threads of uneven length on 16 cores: cores with short work
        // drain their queues first and must steal from busier ones.
        for i in 0..64u64 {
            k.spawn(format!("w{i}"), g, None, spin(1 + (i % 13) * 3));
        }
        k.run_until(SimTime::from_millis(200));
        assert!(k.stats().steals > 0, "expected load-balance steals");
        assert_eq!(k.n_live_threads(), 0, "all threads should finish");
    }

    #[test]
    fn trace_records_spans() {
        let mut k = kernel();
        k.enable_trace();
        let g = k.create_group(CoreMask::single(CoreId(3)));
        let t = k.spawn("traced", g, None, spin(1));
        k.run_until(SimTime::from_millis(2));
        let trace = k.take_trace();
        let spans: Vec<_> = trace.spans().iter().filter(|s| s.tid == t).collect();
        assert!(!spans.is_empty());
        assert!(spans.iter().all(|s| s.core == CoreId(3)));
    }

    #[test]
    fn run_until_cond_stops_early() {
        let mut k = kernel();
        let g = k.create_group(CoreMask::all(k.machine().topology()));
        let t = k.spawn("spin", g, None, spin(1));
        let fired = k.run_until_cond(SimTime::from_secs(1), |k| {
            k.thread_state(t) == ThreadState::Finished
        });
        assert!(fired);
        assert!(k.now() < SimTime::from_millis(10));
    }

    #[test]
    fn request_spawn_admits_thread() {
        let mut k = kernel();
        let g = k.create_group(CoreMask::all(k.machine().topology()));
        k.request_spawn(SpawnReq {
            name: "late".into(),
            group: g,
            affinity: None,
            work: spin(1),
        });
        assert_eq!(k.n_threads(), 1);
        k.run_until(SimTime::from_millis(2));
        assert_eq!(k.n_live_threads(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_group_mask_rejected() {
        let mut k = kernel();
        k.create_group(CoreMask::EMPTY);
    }
}
