//! `/proc`-style sampling: the mpstat / numa_maps analogues.
//!
//! The elastic mechanism monitors the DBMS through exactly the interfaces
//! the paper lists (§IV-A): *mpstat* for CPU load, *cgroups* for thread
//! membership, page placement statistics for the priority queue. This
//! module turns the kernel's monotonic counters into windowed load
//! percentages.

use crate::cpuset::GroupId;
use crate::sched::Kernel;
use emca_metrics::{SimDuration, SimTime};
use numa_sim::SpaceId;

/// A windowed load sample.
#[derive(Clone, Debug)]
pub struct LoadSample {
    /// Window start.
    pub from: SimTime,
    /// Window end.
    pub to: SimTime,
    /// Per-core busy fraction in `[0, 1]` (all activity).
    pub per_core: Vec<f64>,
    /// Busy fraction of the observed group across the cores its mask
    /// allows, in `[0, 1]` — the paper's `u` predicate variable
    /// (multiplied by 100 for percent).
    pub group_load: f64,
    /// Group busy time within the window.
    pub group_busy: SimDuration,
}

impl LoadSample {
    /// Group CPU load in percent (the PetriNet's `u`).
    pub fn group_load_pct(&self) -> f64 {
        self.group_load * 100.0
    }

    /// Machine-wide average core load in `[0, 1]`.
    pub fn machine_load(&self) -> f64 {
        if self.per_core.is_empty() {
            0.0
        } else {
            self.per_core.iter().sum::<f64>() / self.per_core.len() as f64
        }
    }
}

/// Samples per-core and per-group CPU load over successive windows
/// (mpstat with a configurable interval).
#[derive(Clone, Debug)]
pub struct LoadSampler {
    group: GroupId,
    prev_busy: Vec<u64>,
    prev_group_busy: u64,
    prev_time: SimTime,
}

impl LoadSampler {
    /// Creates a sampler anchored at the kernel's current time.
    pub fn new(kernel: &Kernel, group: GroupId) -> Self {
        LoadSampler {
            group,
            prev_busy: kernel.machine().counters().busy_ns.snapshot(),
            prev_group_busy: kernel.group_busy_ns(group),
            prev_time: kernel.now(),
        }
    }

    /// Takes a sample over the window since the previous call.
    pub fn sample(&mut self, kernel: &Kernel) -> LoadSample {
        let now = kernel.now();
        let wall = now.since(self.prev_time);
        let busy = kernel.machine().counters().busy_ns.snapshot();
        let group_busy_total = kernel.group_busy_ns(self.group);
        let wall_ns = wall.as_nanos().max(1);
        let per_core: Vec<f64> = busy
            .iter()
            .zip(&self.prev_busy)
            .map(|(&b, &p)| (b.saturating_sub(p) as f64 / wall_ns as f64).min(1.0))
            .collect();
        let group_busy_ns = group_busy_total.saturating_sub(self.prev_group_busy);
        let n_allowed = kernel.group_mask(self.group).count().max(1);
        let group_load = (group_busy_ns as f64 / (wall_ns as f64 * n_allowed as f64)).min(1.0);
        let sample = LoadSample {
            from: self.prev_time,
            to: now,
            per_core,
            group_load,
            group_busy: SimDuration::from_nanos(group_busy_ns),
        };
        self.prev_busy = busy;
        self.prev_group_busy = group_busy_total;
        self.prev_time = now;
        sample
    }
}

/// `numa_maps` analogue: resident pages per NUMA node for an address
/// space (feeds the adaptive mode's priority queue).
pub fn pages_per_node(kernel: &Kernel, space: SpaceId) -> Vec<u64> {
    kernel.machine().mem().pages_per_node(space).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpuset::CoreMask;
    use crate::work::SpinWork;
    use numa_sim::CoreId;

    #[test]
    fn load_sampler_measures_busy_fraction() {
        let mut k = Kernel::opteron_4x4();
        let g = k.create_group(CoreMask::single(CoreId(0)));
        let mut sampler = LoadSampler::new(&k, g);
        // One thread spinning for the whole window on 1 allowed core.
        k.spawn(
            "spin",
            g,
            None,
            Box::new(SpinWork::new(SimDuration::from_millis(100))),
        );
        k.run_until(SimTime::from_millis(10));
        let s = sampler.sample(&k);
        assert!(s.group_load_pct() > 95.0, "got {}", s.group_load_pct());
        assert!(s.per_core[0] > 0.95);
        assert!(s.per_core[1] < 0.05);
        assert!(s.machine_load() < 0.2);
        assert_eq!(s.group_busy, SimDuration::from_millis(10));
    }

    #[test]
    fn idle_group_reports_zero() {
        let mut k = Kernel::opteron_4x4();
        let g = k.create_group(CoreMask::single(CoreId(0)));
        let mut sampler = LoadSampler::new(&k, g);
        k.run_until(SimTime::from_millis(5));
        let s = sampler.sample(&k);
        assert_eq!(s.group_load_pct(), 0.0);
    }

    #[test]
    fn group_load_accounts_mask_width() {
        let mut k = Kernel::opteron_4x4();
        let mask = CoreMask::from_cores([CoreId(0), CoreId(1), CoreId(2), CoreId(3)]);
        let g = k.create_group(mask);
        let mut sampler = LoadSampler::new(&k, g);
        // One busy thread on a 4-core mask -> ~25% group load.
        k.spawn(
            "spin",
            g,
            None,
            Box::new(SpinWork::new(SimDuration::from_millis(100))),
        );
        k.run_until(SimTime::from_millis(8));
        let s = sampler.sample(&k);
        assert!(
            (s.group_load_pct() - 25.0).abs() < 5.0,
            "got {}",
            s.group_load_pct()
        );
    }

    #[test]
    fn successive_windows_are_deltas() {
        let mut k = Kernel::opteron_4x4();
        let g = k.create_group(CoreMask::single(CoreId(0)));
        let mut sampler = LoadSampler::new(&k, g);
        k.spawn(
            "spin",
            g,
            None,
            Box::new(SpinWork::new(SimDuration::from_millis(5))),
        );
        k.run_until(SimTime::from_millis(5));
        let s1 = sampler.sample(&k);
        // Work done; next window idle.
        k.run_until(SimTime::from_millis(10));
        let s2 = sampler.sample(&k);
        assert!(s1.group_load_pct() > 90.0);
        assert!(s2.group_load_pct() < 10.0);
        assert_eq!(s2.from, SimTime::from_millis(5));
    }

    #[test]
    fn pages_per_node_passthrough() {
        let mut k = Kernel::opteron_4x4();
        let space = k.machine_mut().create_space();
        let region = k.machine_mut().alloc(space, numa_sim::SEG_BYTES);
        k.machine_mut().access_segment(
            CoreId(5),
            region.segment(0),
            numa_sim::AccessKind::Read,
            numa_sim::StreamId(0),
        );
        let pages = pages_per_node(&k, space);
        // Core 5 is on node 1 of the opteron topology.
        assert_eq!(pages[1], numa_sim::PAGES_PER_SEG);
        assert_eq!(pages[0] + pages[2] + pages[3], 0);
    }
}
