//! Scheduling traces for the thread-migration figures (Fig. 5, Fig. 16).
//!
//! When enabled, the kernel records one [`Span`] per contiguous run of a
//! thread on a core. The harness renders these as the paper's
//! lifespan/migration maps (thread on the X axis, time on the Y axis,
//! colour = core).

use crate::thread::Tid;
use emca_metrics::{FxHashMap, SimTime};
use numa_sim::CoreId;

/// A contiguous execution of a thread on one core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// The thread.
    pub tid: Tid,
    /// The core it ran on.
    pub core: CoreId,
    /// Start of the run.
    pub start: SimTime,
    /// End of the run.
    pub end: SimTime,
}

/// Collected scheduling activity.
#[derive(Clone, Debug, Default)]
pub struct SchedTrace {
    spans: Vec<Span>,
    open: FxHashMap<Tid, (CoreId, SimTime)>,
    enabled: bool,
}

impl SchedTrace {
    /// A disabled trace (zero overhead).
    pub fn disabled() -> Self {
        SchedTrace::default()
    }

    /// An enabled trace.
    pub fn enabled() -> Self {
        SchedTrace {
            enabled: true,
            ..SchedTrace::default()
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Marks `tid` as starting to run on `core` at `now`. If it was
    /// already running on the same core the open span is extended
    /// (no-op); if on a different core the previous span is closed first.
    pub fn on_run(&mut self, tid: Tid, core: CoreId, now: SimTime) {
        if !self.enabled {
            return;
        }
        match self.open.get(&tid).copied() {
            Some((c, _)) if c == core => {}
            Some((c, start)) => {
                self.spans.push(Span {
                    tid,
                    core: c,
                    start,
                    end: now,
                });
                self.open.insert(tid, (core, now));
            }
            None => {
                self.open.insert(tid, (core, now));
            }
        }
    }

    /// Marks `tid` as off-CPU at `now` (blocked, preempted or finished).
    pub fn on_stop(&mut self, tid: Tid, now: SimTime) {
        if !self.enabled {
            return;
        }
        if let Some((core, start)) = self.open.remove(&tid) {
            if now > start {
                self.spans.push(Span {
                    tid,
                    core,
                    start,
                    end: now,
                });
            }
        }
    }

    /// Closes all open spans (end of simulation).
    pub fn finish(&mut self, now: SimTime) {
        if !self.enabled {
            return;
        }
        let open: Vec<_> = self.open.drain().collect();
        for (tid, (core, start)) in open {
            if now > start {
                self.spans.push(Span {
                    tid,
                    core,
                    start,
                    end: now,
                });
            }
        }
        self.spans.sort_by_key(|s| (s.tid, s.start.as_nanos()));
    }

    /// The recorded spans (call [`SchedTrace::finish`] first).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of core changes of `tid` visible in the trace.
    pub fn migrations_of(&self, tid: Tid) -> usize {
        let mut cores = self
            .spans
            .iter()
            .filter(|s| s.tid == tid)
            .map(|s| s.core)
            .collect::<Vec<_>>();
        if cores.is_empty() {
            return 0;
        }
        cores.dedup();
        cores.len() - 1
    }

    /// The distinct threads appearing in the trace, in id order.
    pub fn threads(&self) -> Vec<Tid> {
        let mut tids: Vec<Tid> = self.spans.iter().map(|s| s.tid).collect();
        tids.sort();
        tids.dedup();
        tids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_records_nothing() {
        let mut tr = SchedTrace::disabled();
        tr.on_run(Tid(1), CoreId(0), t(0));
        tr.on_stop(Tid(1), t(5));
        tr.finish(t(10));
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn run_stop_creates_span() {
        let mut tr = SchedTrace::enabled();
        tr.on_run(Tid(1), CoreId(2), t(0));
        tr.on_stop(Tid(1), t(5));
        tr.finish(t(10));
        assert_eq!(
            tr.spans(),
            &[Span {
                tid: Tid(1),
                core: CoreId(2),
                start: t(0),
                end: t(5)
            }]
        );
    }

    #[test]
    fn migration_closes_previous_span() {
        let mut tr = SchedTrace::enabled();
        tr.on_run(Tid(1), CoreId(0), t(0));
        tr.on_run(Tid(1), CoreId(1), t(4));
        tr.finish(t(10));
        assert_eq!(tr.spans().len(), 2);
        assert_eq!(tr.migrations_of(Tid(1)), 1);
    }

    #[test]
    fn same_core_rerun_extends() {
        let mut tr = SchedTrace::enabled();
        tr.on_run(Tid(1), CoreId(0), t(0));
        tr.on_run(Tid(1), CoreId(0), t(2));
        tr.finish(t(10));
        assert_eq!(tr.spans().len(), 1);
        assert_eq!(tr.spans()[0].end, t(10));
        assert_eq!(tr.migrations_of(Tid(1)), 0);
    }

    #[test]
    fn zero_length_spans_dropped() {
        let mut tr = SchedTrace::enabled();
        tr.on_run(Tid(1), CoreId(0), t(5));
        tr.on_stop(Tid(1), t(5));
        tr.finish(t(5));
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn threads_listed_sorted() {
        let mut tr = SchedTrace::enabled();
        tr.on_run(Tid(9), CoreId(0), t(0));
        tr.on_stop(Tid(9), t(1));
        tr.on_run(Tid(2), CoreId(0), t(1));
        tr.on_stop(Tid(2), t(2));
        tr.finish(t(2));
        assert_eq!(tr.threads(), vec![Tid(2), Tid(9)]);
    }
}
