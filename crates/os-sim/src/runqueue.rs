//! Per-core runqueues ordered by virtual runtime.

use crate::thread::Tid;
use std::collections::BTreeSet;

/// A CFS-like runqueue: an ordered set keyed by `(vruntime, tid)`.
/// The head is the next thread to run.
#[derive(Clone, Debug, Default)]
pub struct RunQueue {
    queue: BTreeSet<(u64, Tid)>,
}

impl RunQueue {
    /// An empty queue.
    pub fn new() -> Self {
        RunQueue {
            queue: BTreeSet::new(),
        }
    }

    /// Number of queued (runnable, not running) threads.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues a thread at its virtual runtime.
    pub fn push(&mut self, vruntime: u64, tid: Tid) {
        let inserted = self.queue.insert((vruntime, tid));
        debug_assert!(inserted, "thread {tid:?} double-enqueued");
    }

    /// Pops the minimum-vruntime thread.
    pub fn pop_min(&mut self) -> Option<(u64, Tid)> {
        let first = *self.queue.iter().next()?;
        self.queue.remove(&first);
        Some(first)
    }

    /// Peeks the minimum vruntime without removing.
    pub fn min_vruntime(&self) -> Option<u64> {
        self.queue.iter().next().map(|&(v, _)| v)
    }

    /// Removes a specific thread (used by migration). Returns its
    /// vruntime if it was queued.
    pub fn remove(&mut self, vruntime: u64, tid: Tid) -> bool {
        self.queue.remove(&(vruntime, tid))
    }

    /// Pops the *maximum*-vruntime thread (load balancing pulls the tail
    /// task: it has waited relative-longest and is the cheapest to move —
    /// mirroring Linux's preference for moving non-cache-hot tasks).
    pub fn pop_max(&mut self) -> Option<(u64, Tid)> {
        let last = *self.queue.iter().next_back()?;
        self.queue.remove(&last);
        Some(last)
    }

    /// Iterates queued threads in vruntime order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Tid)> + '_ {
        self.queue.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_vruntime_order() {
        let mut q = RunQueue::new();
        q.push(30, Tid(3));
        q.push(10, Tid(1));
        q.push(20, Tid(2));
        assert_eq!(q.pop_min(), Some((10, Tid(1))));
        assert_eq!(q.pop_min(), Some((20, Tid(2))));
        assert_eq!(q.pop_min(), Some((30, Tid(3))));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn ties_broken_by_tid() {
        let mut q = RunQueue::new();
        q.push(10, Tid(9));
        q.push(10, Tid(2));
        assert_eq!(q.pop_min(), Some((10, Tid(2))));
    }

    #[test]
    fn remove_specific() {
        let mut q = RunQueue::new();
        q.push(10, Tid(1));
        q.push(20, Tid(2));
        assert!(q.remove(20, Tid(2)));
        assert!(!q.remove(20, Tid(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_max_takes_tail() {
        let mut q = RunQueue::new();
        q.push(10, Tid(1));
        q.push(99, Tid(2));
        assert_eq!(q.pop_max(), Some((99, Tid(2))));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn min_vruntime_peek() {
        let mut q = RunQueue::new();
        assert_eq!(q.min_vruntime(), None);
        q.push(42, Tid(1));
        assert_eq!(q.min_vruntime(), Some(42));
        assert_eq!(q.len(), 1);
    }
}
