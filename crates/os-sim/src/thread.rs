//! Simulated threads.

use crate::cpuset::GroupId;
use crate::work::SimWork;
use emca_metrics::SimDuration;
use numa_sim::CoreId;
use std::fmt;

/// Thread identifier (dense, never reused).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u32);

impl Tid {
    /// The tid as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Lifecycle state of a simulated thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadState {
    /// Waiting on a runqueue.
    Runnable,
    /// Currently on a core.
    Running,
    /// Waiting for a wake event.
    Blocked,
    /// Exited.
    Finished,
}

/// Per-thread accounting (exposed through `/proc`-style queries).
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadStats {
    /// Total on-CPU time.
    pub cpu_time: SimDuration,
    /// Number of core changes.
    pub migrations: u64,
    /// Number of wakeups.
    pub wakeups: u64,
    /// Number of times this thread was pulled by load balancing.
    pub times_stolen: u64,
}

/// Internal thread slot owned by the kernel.
pub(crate) struct ThreadSlot {
    pub name: String,
    pub group: GroupId,
    pub state: ThreadState,
    /// CFS-style virtual runtime in nanoseconds.
    pub vruntime: u64,
    /// Core the thread is on (Running) or last ran on.
    pub core: Option<CoreId>,
    /// Time consumed of the current timeslice.
    pub slice_used: SimDuration,
    /// The body. Taken out of the slot while stepping (split borrow).
    pub work: Option<Box<dyn SimWork>>,
    pub stats: ThreadStats,
    /// Set while a wake arrived during the same tick the thread blocked
    /// in, so the wake is not lost.
    pub wake_pending: bool,
    /// Simulated time the last step consumed beyond its tick budget
    /// (e.g. one long congested memory access). Paid off before the
    /// thread steps again, so long operations span ticks instead of
    /// silently losing time — essential for bandwidth caps to hold.
    pub debt: SimDuration,
}

impl ThreadSlot {
    pub(crate) fn new(_tid: Tid, name: String, group: GroupId, work: Box<dyn SimWork>) -> Self {
        ThreadSlot {
            name,
            group,
            state: ThreadState::Runnable,
            vruntime: 0,
            core: None,
            slice_used: SimDuration::ZERO,
            work: Some(work),
            stats: ThreadStats::default(),
            wake_pending: false,
            debt: SimDuration::ZERO,
        }
    }

    /// True if the thread still participates in scheduling.
    pub(crate) fn is_live(&self) -> bool {
        self.state != ThreadState::Finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::SpinWork;

    #[test]
    fn slot_starts_runnable() {
        let s = ThreadSlot::new(
            Tid(1),
            "w".into(),
            GroupId(0),
            Box::new(SpinWork::new(SimDuration::from_micros(1))),
        );
        assert_eq!(s.state, ThreadState::Runnable);
        assert!(s.is_live());
        assert_eq!(s.vruntime, 0);
        assert!(s.work.is_some());
    }

    #[test]
    fn tid_formatting() {
        assert_eq!(format!("{:?}", Tid(5)), "T5");
        assert_eq!(format!("{}", Tid(5)), "5");
        assert_eq!(Tid(5).idx(), 5);
    }
}
