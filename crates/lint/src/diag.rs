//! Diagnostics and the waiver mechanism.
//!
//! A rule violation can be *fixed* or *waived* — never ignored. A
//! waiver is a comment of the form
//!
//! ```text
//! // emca-lint: allow(<rule-id>) — <justification>
//! ```
//!
//! placed on the offending line (trailing) or on the line directly
//! above it. The justification is **required**: a waiver without one is
//! itself a diagnostic (`waiver-syntax`), and a waiver that suppresses
//! nothing is a diagnostic too (`unused-waiver`) so stale exemptions
//! are garbage-collected instead of rotting. `—`, `--`, `-` and `:`
//! all work as the separator.

use crate::lexer::{Kind, Token};

/// One finding: rule id, file, 1-based line, human message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed `emca-lint: allow(...)` comment.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub rule: String,
    pub line: u32,
    pub justification: String,
    /// Set when the waiver suppressed at least one diagnostic.
    pub used: bool,
}

/// Scans a file's comment tokens for waivers. Malformed waivers (no
/// rule, or no justification) are returned as diagnostics immediately.
pub fn collect_waivers(path: &str, tokens: &[Token]) -> (Vec<Waiver>, Vec<Diagnostic>) {
    let mut waivers = Vec::new();
    let mut diags = Vec::new();
    for t in tokens.iter().filter(|t| t.kind == Kind::Comment) {
        // Doc comments illustrate the syntax; only plain comments waive.
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| t.text.starts_with(p))
        {
            continue;
        }
        let Some(at) = t.text.find("emca-lint:") else {
            continue;
        };
        let rest = t.text[at + "emca-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            diags.push(Diagnostic {
                rule: "waiver-syntax",
                path: path.to_string(),
                line: t.line,
                message: "expected `emca-lint: allow(<rule>) — <justification>`".to_string(),
            });
            continue;
        };
        let Some((rule, after)) = rest.split_once(')') else {
            diags.push(Diagnostic {
                rule: "waiver-syntax",
                path: path.to_string(),
                line: t.line,
                message: "unclosed allow(<rule>)".to_string(),
            });
            continue;
        };
        let justification = after
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':', ' '])
            .trim()
            .to_string();
        if justification.is_empty() {
            diags.push(Diagnostic {
                rule: "waiver-syntax",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "waiver for `{}` has no justification — say why the invariant \
                     does not apply here",
                    rule.trim()
                ),
            });
            continue;
        }
        waivers.push(Waiver {
            rule: rule.trim().to_string(),
            line: t.line,
            justification,
            used: false,
        });
    }
    (waivers, diags)
}

/// Applies `waivers` to `diags`: a diagnostic on line L is suppressed
/// by a same-rule waiver on line L (trailing comment) or L-1 (comment
/// above). Returns the surviving diagnostics; used waivers are marked.
pub fn apply_waivers(diags: Vec<Diagnostic>, waivers: &mut [Waiver]) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| {
            let mut waived = false;
            for w in waivers.iter_mut() {
                if w.rule == d.rule && (w.line == d.line || w.line + 1 == d.line) {
                    w.used = true;
                    waived = true;
                }
            }
            !waived
        })
        .collect()
}

/// Diagnostics for waivers that suppressed nothing.
pub fn unused_waiver_diags(path: &str, waivers: &[Waiver]) -> Vec<Diagnostic> {
    waivers
        .iter()
        .filter(|w| !w.used)
        .map(|w| Diagnostic {
            rule: "unused-waiver",
            path: path.to_string(),
            line: w.line,
            message: format!(
                "waiver for `{}` suppresses nothing — fix the rule id, move it next \
                 to the violation, or delete it",
                w.rule
            ),
        })
        .collect()
}
