//! A dependency-free, token-level Rust lexer — just enough syntax to
//! lint reliably: the rules must never fire on an `unwrap()` inside a
//! string literal or a commented-out line, and must never miss one
//! because a raw string or nested block comment confused a regex.
//!
//! The lexer understands:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments;
//! - string literals with escapes, byte strings, and raw (byte) strings
//!   with any number of `#` guards (`r"..."`, `r##"..."##`, `br#"..."#`);
//! - char literals vs lifetimes (`'a'` is a char, `'a` is a lifetime,
//!   `'\n'` and `'\u{1F600}'` are chars);
//! - raw identifiers (`r#fn`);
//! - identifiers, numbers, and single-character punctuation.
//!
//! It does **not** build an AST: rules work on the token stream plus
//! line numbers, which is exactly the granularity diagnostics and
//! waivers need.

/// What a token is. String-like literals keep their *content* (between
/// the quotes, escapes unprocessed) in [`Token::text`]; comments keep
/// their full source text for the waiver scanner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, `r#type`).
    Ident,
    /// String literal of any flavor (`"x"`, `r#"x"#`, `b"x"`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Numeric literal (integer or float, suffixes included).
    Num,
    /// One punctuation character (`.`, `(`, `!`, ...).
    Punct,
    /// Line or block comment, full text included.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True for an identifier token spelling exactly `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// True for a punctuation token spelling exactly `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream. Unterminated literals or comments
/// lex as best-effort tokens running to end of input — the lint must
/// degrade, not panic, on syntactically broken files (the compiler
/// reports those).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        let start = cur.pos;
        let line = cur.line;
        match b {
            b if b.is_ascii_whitespace() => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                cur.take_while(|b| b != b'\n');
                out.push(token(src, Kind::Comment, start, cur.pos, line));
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.push(token(src, Kind::Comment, start, cur.pos, line));
            }
            b'"' => {
                lex_string(&mut cur);
                out.push(content_token(src, Kind::Str, start + 1, cur.pos, line));
            }
            b'r' | b'b' => {
                if let Some((kind, content_start)) = lex_raw_or_byte(&mut cur) {
                    out.push(content_token(src, kind, content_start, cur.pos, line));
                } else {
                    // Plain identifier starting with r/b, or a raw
                    // identifier r#name (the `r#` prefix is stripped
                    // from the token text).
                    let text_start = if src[start..].starts_with("r#")
                        && cur.peek(2).is_some_and(is_ident_start)
                    {
                        cur.bump(); // r
                        cur.bump(); // #
                        cur.pos
                    } else {
                        start
                    };
                    cur.take_while(is_ident_cont);
                    out.push(token(src, Kind::Ident, text_start, cur.pos, line));
                }
            }
            b'\'' => {
                let kind = lex_char_or_lifetime(&mut cur);
                out.push(token(src, kind, start, cur.pos, line));
            }
            b if is_ident_start(b) => {
                cur.take_while(is_ident_cont);
                out.push(token(src, Kind::Ident, start, cur.pos, line));
            }
            b if b.is_ascii_digit() => {
                cur.take_while(is_ident_cont);
                // One fractional part, but never swallow `..` ranges.
                if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|b| b.is_ascii_digit()) {
                    cur.bump();
                    cur.take_while(is_ident_cont);
                }
                out.push(token(src, Kind::Num, start, cur.pos, line));
            }
            _ => {
                cur.bump();
                out.push(token(src, Kind::Punct, start, cur.pos, line));
            }
        }
    }
    out
}

fn token(src: &str, kind: Kind, start: usize, end: usize, line: u32) -> Token {
    Token {
        kind,
        text: src[start..end].to_string(),
        line,
    }
}

/// Like [`token`] but trims the closing delimiter (an optional run of
/// `#` guards preceded by a quote) so [`Token::text`] is the literal's
/// content. `start` points just past the opening delimiter and `end`
/// just past the closing one; the delimiter structure is always
/// `content` `"` `#`* so stripping trailing hashes then one quote is
/// exact. Unterminated literals (EOF) keep whatever is there.
fn content_token(src: &str, kind: Kind, start: usize, end: usize, line: u32) -> Token {
    let raw = &src[start..end.max(start)];
    let text = match kind {
        Kind::Str | Kind::Char => {
            let no_hashes = raw.trim_end_matches('#');
            no_hashes.strip_suffix(['"', '\'']).unwrap_or(raw)
        }
        _ => raw,
    };
    Token {
        kind,
        text: text.to_string(),
        line,
    }
}

/// Consumes a `"..."` string (cursor on the opening quote).
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'"' => return,
            _ => {}
        }
    }
}

/// Tries to consume a raw/byte string starting at `r` or `b`. Returns
/// the token kind and the content start offset, or `None` if this is an
/// identifier after all. On `None` the cursor has not moved.
fn lex_raw_or_byte(cur: &mut Cursor<'_>) -> Option<(Kind, usize)> {
    let mut ahead = 0usize;
    let mut byte = false;
    if cur.peek(ahead) == Some(b'b') {
        byte = true;
        ahead += 1;
    }
    if byte && cur.peek(ahead) == Some(b'\'') {
        // b'x' byte-char literal.
        cur.bump(); // b
        let content = cur.pos + 1;
        cur.bump(); // '
        if cur.peek(0) == Some(b'\\') {
            cur.bump();
        }
        cur.bump();
        if cur.peek(0) == Some(b'\'') {
            cur.bump();
        }
        return Some((Kind::Char, content));
    }
    let raw = cur.peek(ahead) == Some(b'r');
    if raw {
        ahead += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while cur.peek(ahead + hashes) == Some(b'#') {
            hashes += 1;
        }
    }
    if cur.peek(ahead + hashes) != Some(b'"') {
        return None; // identifier (possibly r#raw_ident, handled by caller)
    }
    if !raw && !byte {
        return None;
    }
    // Consume prefix + hashes + opening quote.
    for _ in 0..(ahead + hashes + 1) {
        cur.bump();
    }
    let content = cur.pos;
    if raw {
        // Terminated by `"` followed by `hashes` hash marks.
        loop {
            match cur.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && cur.peek(0) == Some(b'#') {
                        cur.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return Some((Kind::Str, content));
                    }
                }
                Some(_) => {}
                None => return Some((Kind::Str, content)),
            }
        }
    } else {
        // b"..." with escapes.
        while let Some(b) = cur.bump() {
            match b {
                b'\\' => {
                    cur.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        Some((Kind::Str, content))
    }
}

/// Distinguishes `'a'` (char) from `'a` (lifetime); cursor on the quote.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> Kind {
    cur.bump(); // opening quote
    match cur.peek(0) {
        Some(b'\\') => {
            // Escaped char literal: consume escape then to closing quote.
            cur.bump();
            cur.bump();
            while cur.peek(0).is_some() && cur.peek(0) != Some(b'\'') {
                cur.bump();
            }
            cur.bump();
            Kind::Char
        }
        Some(b) if is_ident_start(b) || b.is_ascii_digit() => {
            cur.take_while(is_ident_cont);
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
                Kind::Char
            } else {
                Kind::Lifetime
            }
        }
        Some(_) => {
            // Punctuation char literal like '(' or ' '.
            cur.bump();
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
            }
            Kind::Char
        }
        None => Kind::Lifetime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn unwrap_in_strings_and_comments_is_not_an_ident() {
        let src = r###"
            // commented: x.unwrap()
            /* block /* nested */ x.unwrap() */
            let a = "call .unwrap() here";
            let b = r#"raw .unwrap() text"#;
            let c = b"bytes unwrap()";
            real.clone();
        "###;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "real"));
        assert!(ids.iter().any(|i| i == "clone"));
    }

    #[test]
    fn raw_string_hash_guards_terminate_correctly() {
        let src = r####"let x = r##"inner "# quote"## ; after()"####;
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == Kind::Str).unwrap();
        assert_eq!(s.text, r##"inner "# quote"##);
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = \"x\ny\";\nfinal_ident();";
        let toks = lex(src);
        let f = toks.iter().find(|t| t.is_ident("final_ident")).unwrap();
        assert_eq!(f.line, 6);
    }

    #[test]
    fn raw_identifiers_lex_without_prefix() {
        let ids = idents("let r#type = r#match;");
        assert!(ids.iter().any(|i| i == "type"));
        assert!(ids.iter().any(|i| i == "match"));
    }

    #[test]
    fn comments_keep_text_for_the_waiver_scanner() {
        let toks = lex("x(); // emca-lint: allow(panic-freedom) — because\n");
        let c = toks.iter().find(|t| t.kind == Kind::Comment).unwrap();
        assert!(c.text.contains("allow(panic-freedom)"));
        assert_eq!(c.line, 1);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 0..n { let f = 1.5e3; }");
        assert!(toks.iter().any(|t| t.kind == Kind::Num && t.text == "0"));
        assert!(toks
            .iter()
            .any(|t| t.kind == Kind::Num && t.text == "1.5e3"));
        assert!(toks.iter().any(|t| t.is_ident("n")));
    }
}
