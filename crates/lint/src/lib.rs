//! # emca-lint
//!
//! A dependency-free, token-level static analyzer for the emca
//! workspace. The workspace is offline/vendored, so there is no `syn`
//! here: a hand-rolled lexer (`lexer`) that is exact about raw strings,
//! nested block comments, char-vs-lifetime and byte literals feeds a
//! small rule engine (`rules`) that walks every `crates/**/src` file
//! and enforces the project invariants the test suite cannot see:
//!
//! - **determinism** — no wall clock / ambient RNG / default-hasher
//!   maps on the crates whose outputs are byte-identity gated;
//! - **float-ordering** — `total_cmp`, never `partial_cmp`;
//! - **panic-freedom** — no `unwrap`/`expect`/`panic!` on the worker
//!   loop and pool actuation paths;
//! - **lock-order** — nested `.lock()` acquisitions follow the table
//!   declared in `lint.toml`;
//! - **schema-sync** — CSV headers built in scenario modules match the
//!   schemas `csv_check` validates against.
//!
//! Violations are fixed or *waived* with an inline justification
//! (`// emca-lint: allow(<rule>) — <why>`); see `docs/LINTS.md`.
//!
//! Entry points: `emca check --lint` and `cargo run -p emca-lint`.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

use config::Config;
use diag::Diagnostic;

/// The result of linting a tree: everything the report and the exit
/// code need.
pub struct LintOutcome {
    /// Repo-relative paths scanned, sorted.
    pub files: Vec<String>,
    /// Surviving diagnostics (violations + waiver hygiene), sorted by
    /// path, line, rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Used waivers, as (path, line, rule, justification), sorted.
    pub waivers: Vec<(String, u32, String, String)>,
}

impl LintOutcome {
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints one source file against the config. `path` is the
/// repo-relative path (forward slashes) the rules and waivers key on.
/// Exposed for the fixture tests.
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> (Vec<Diagnostic>, Vec<diag::Waiver>) {
    let tokens = lexer::lex(src);
    let in_test = rules::test_mask(&tokens);
    let ctx = rules::FileCtx {
        path,
        tokens: &tokens,
        in_test: &in_test,
    };
    let (mut waivers, mut diags) = diag::collect_waivers(path, &tokens);
    let found = rules::run_all(&ctx, cfg);
    diags.extend(diag::apply_waivers(found, &mut waivers));
    diags.extend(diag::unused_waiver_diags(path, &waivers));
    (diags, waivers)
}

/// Walks the configured roots under `repo_root` and lints every `.rs`
/// file. Returns an error only for environment problems (unreadable
/// config/files) — violations are data, not errors.
pub fn run_workspace(repo_root: &Path) -> Result<LintOutcome, String> {
    let cfg_path = repo_root.join("lint.toml");
    let cfg_src =
        std::fs::read_to_string(&cfg_path).map_err(|e| format!("{}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&cfg_src)?;

    let mut files = Vec::new();
    for root in cfg.list("paths", "roots") {
        collect_rs_files(repo_root, &repo_root.join(root), &cfg, &mut files)?;
    }
    files.sort();

    let mut diagnostics = Vec::new();
    let mut waivers = Vec::new();
    for rel in &files {
        let src =
            std::fs::read_to_string(repo_root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        let (diags, ws) = lint_source(rel, &src, &cfg);
        diagnostics.extend(diags);
        waivers.extend(
            ws.into_iter()
                .filter(|w| w.used)
                .map(|w| (rel.clone(), w.line, w.rule, w.justification)),
        );
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    waivers.sort();
    Ok(LintOutcome {
        files,
        diagnostics,
        waivers,
    })
}

fn collect_rs_files(
    repo_root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        let rel = match p.strip_prefix(repo_root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if cfg
            .list("paths", "exclude")
            .iter()
            .any(|x| rel == *x || rel.starts_with(&format!("{x}/")))
        {
            continue;
        }
        if p.is_dir() {
            collect_rs_files(repo_root, &p, cfg, out)?;
        } else if rel.ends_with(".rs") && rel.contains("/src/") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Finds the repo root by walking upward from `start` until a
/// `lint.toml` appears.
pub fn find_repo_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
