//! `lint.toml` — the checked-in declaration of the workspace's
//! invariants: which paths each rule covers, whole-file allowlists, and
//! the lock-order table. The workspace is offline/vendored, so this is
//! a hand-rolled parser for the small TOML subset the file uses:
//!
//! ```toml
//! # comment
//! [section]
//! key = "one string"
//! other = [
//!     "a", "b",   # arrays may span lines
//! ]
//! ```
//!
//! Only string values and arrays of strings exist; everything else is a
//! parse error. Unknown sections/keys are errors too — a typo in the
//! config must not silently disable a rule.

use std::collections::BTreeMap;

/// Parsed configuration: section → key → list of strings (a scalar
/// string is a one-element list).
#[derive(Clone, Debug, Default)]
pub struct Config {
    sections: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

/// The sections and keys `emca-lint` understands; anything else in
/// `lint.toml` is a hard error.
const KNOWN: &[(&str, &[&str])] = &[
    ("paths", &["roots", "exclude"]),
    ("determinism", &["paths", "allow"]),
    ("float_ordering", &["allow"]),
    ("panic_freedom", &["files"]),
    ("lock_order", &["order"]),
    ("schema_sync", &["dir"]),
];

impl Config {
    /// Parses the config, validating section/key names.
    pub fn parse(src: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = src.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if !KNOWN.iter().any(|(s, _)| *s == section) {
                    return Err(format!("lint.toml:{}: unknown section [{section}]", i + 1));
                }
                cfg.sections.entry(section.clone()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{}: expected key = value", i + 1));
            };
            let key = key.trim().to_string();
            let known_keys = KNOWN
                .iter()
                .find(|(s, _)| *s == section)
                .map(|(_, k)| *k)
                .ok_or_else(|| format!("lint.toml:{}: key outside any section", i + 1))?;
            if !known_keys.contains(&key.as_str()) {
                return Err(format!(
                    "lint.toml:{}: unknown key {key:?} in [{section}]",
                    i + 1
                ));
            }
            let mut value = value.trim().to_string();
            // Multi-line arrays: accumulate until brackets balance
            // (strings in this file never contain brackets or quotes).
            while value.starts_with('[') && !balanced(&value) {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("lint.toml:{}: unterminated array", i + 1));
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
            let parsed = parse_value(&value).map_err(|e| format!("lint.toml:{}: {e}", i + 1))?;
            cfg.sections
                .entry(section.clone())
                .or_default()
                .insert(key, parsed);
        }
        Ok(cfg)
    }

    /// The list under `section.key` (empty if absent).
    pub fn list(&self, section: &str, key: &str) -> &[String] {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The scalar under `section.key`, if present.
    pub fn scalar(&self, section: &str, key: &str) -> Option<&str> {
        match self.list(section, key) {
            [one] => Some(one.as_str()),
            _ => None,
        }
    }
}

fn strip_comment(line: &str) -> &str {
    // `#` only starts a comment outside quotes; values here never embed
    // `#` inside strings, but be precise anyway.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(value: &str) -> bool {
    value.matches('[').count() == value.matches(']').count()
}

fn parse_value(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut out = Vec::new();
        for item in inner.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // trailing comma
            }
            out.push(parse_string(item)?);
        }
        return Ok(out);
    }
    Ok(vec![parse_string(value)?])
}

fn parse_string(item: &str) -> Result<String, String> {
    item.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got {item:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_multiline_arrays() {
        let cfg = Config::parse(
            r#"
# top comment
[paths]
roots = ["crates"]
exclude = [
    "crates/vendor",  # vendored shims
    "target",
]

[schema_sync]
dir = "crates/bench/src/scenarios"
"#,
        )
        .unwrap();
        assert_eq!(cfg.list("paths", "roots"), ["crates"]);
        assert_eq!(cfg.list("paths", "exclude"), ["crates/vendor", "target"]);
        assert_eq!(
            cfg.scalar("schema_sync", "dir"),
            Some("crates/bench/src/scenarios")
        );
        assert!(cfg.list("lock_order", "order").is_empty());
    }

    #[test]
    fn rejects_unknown_sections_and_keys() {
        assert!(Config::parse("[nope]\n").is_err());
        assert!(Config::parse("[paths]\nbogus = \"x\"\n").is_err());
        assert!(Config::parse("loose = \"x\"\n").is_err());
        assert!(Config::parse("[paths]\nroots = [unquoted]\n").is_err());
    }
}
