//! The rule engine: each rule is a pure function from a lexed file (plus
//! the workspace config) to diagnostics. Rules see the token stream with
//! `#[cfg(test)]` regions masked out — the invariants protect shipping
//! code paths; tests may deliberately exercise the forbidden patterns.
//!
//! Shipped rules (ids as spelled in waivers and `lint.toml`):
//!
//! | id              | invariant                                                        |
//! |-----------------|------------------------------------------------------------------|
//! | `determinism`   | no wall clock / RNG / default-hasher maps on sim-path crates     |
//! | `float-ordering`| no `partial_cmp` — float orderings go through `total_cmp`        |
//! | `panic-freedom` | no `unwrap`/`expect`/`panic!` on worker-loop / pool-actuation files |
//! | `lock-order`    | nested `.lock()` acquisitions follow the declared order          |
//! | `schema-sync`   | CSV headers built in `scenarios/*` match the declared schemas    |

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{Kind, Token};

/// One file as the rules see it: repo-relative path (forward slashes),
/// tokens, and the cfg(test) mask.
pub struct FileCtx<'a> {
    pub path: &'a str,
    pub tokens: &'a [Token],
    pub in_test: &'a [bool],
}

impl FileCtx<'_> {
    fn diag(&self, rule: &'static str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            path: self.path.to_string(),
            line,
            message,
        }
    }

    /// Indices of non-comment tokens outside `#[cfg(test)]` regions.
    fn code(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tokens.len()).filter(|&i| self.tokens[i].kind != Kind::Comment && !self.in_test[i])
    }
}

/// Marks every token inside a `#[cfg(test)] mod ... { }` block or a
/// `#[test] fn ... { }` item. Attribute chains between the marker and
/// the item are skipped.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    // Non-comment token indices drive the pattern match; comments keep
    // the mask of their surroundings (irrelevant — rules skip them).
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != Kind::Comment)
        .collect();
    let at = |ci: usize| code.get(ci).map(|&i| &tokens[i]);
    let mut ci = 0usize;
    while ci < code.len() {
        let is_cfg_test = at(ci).is_some_and(|t| t.is_punct('#'))
            && at(ci + 1).is_some_and(|t| t.is_punct('['))
            && ((at(ci + 2).is_some_and(|t| t.is_ident("cfg"))
                && at(ci + 3).is_some_and(|t| t.is_punct('('))
                && at(ci + 4).is_some_and(|t| t.is_ident("test"))
                && at(ci + 5).is_some_and(|t| t.is_punct(')'))
                && at(ci + 6).is_some_and(|t| t.is_punct(']')))
                || (at(ci + 2).is_some_and(|t| t.is_ident("test"))
                    && at(ci + 3).is_some_and(|t| t.is_punct(']'))));
        if !is_cfg_test {
            ci += 1;
            continue;
        }
        let start = code[ci];
        // Jump past this attribute, any further attributes, and the
        // item header, to the item's opening brace.
        let mut cj = ci;
        loop {
            // Skip one `#[ ... ]` attribute (balanced brackets).
            if at(cj).is_some_and(|t| t.is_punct('#'))
                && at(cj + 1).is_some_and(|t| t.is_punct('['))
            {
                let mut depth = 0i32;
                cj += 1;
                while let Some(t) = at(cj) {
                    if t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            cj += 1;
                            break;
                        }
                    }
                    cj += 1;
                }
            } else {
                break;
            }
        }
        // Find the opening brace of the item (mod/fn); `;`-terminated
        // items (e.g. `#[cfg(test)] mod tests;`) end at the semicolon.
        let mut body_open = None;
        while let Some(t) = at(cj) {
            if t.is_punct('{') {
                body_open = Some(cj);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            cj += 1;
        }
        if let Some(open) = body_open {
            let mut depth = 0i32;
            let mut ck = open;
            while let Some(t) = at(ck) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ck += 1;
            }
            let end = code.get(ck).copied().unwrap_or(tokens.len() - 1);
            for m in &mut mask[start..=end] {
                *m = true;
            }
            ci = ck.min(code.len());
        }
        ci += 1;
    }
    mask
}

/// Runs every configured rule over one file.
pub fn run_all(ctx: &FileCtx<'_>, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(determinism(ctx, cfg));
    out.extend(float_ordering(ctx, cfg));
    out.extend(panic_freedom(ctx, cfg));
    out.extend(lock_order(ctx, cfg));
    out.extend(schema_sync(ctx, cfg));
    out
}

fn covered(path: &str, prefixes: &[String]) -> bool {
    prefixes
        .iter()
        .any(|p| path == p || path.starts_with(&format!("{p}/")))
}

fn allowed(path: &str, files: &[String]) -> bool {
    files.iter().any(|f| f == path)
}

/// `determinism` — wall-clock reads, ambient RNG, and default-hasher
/// maps are forbidden on the crates whose outputs are byte-identity
/// gated: iteration order and timing must be functions of the seed, not
/// of the host. Whole-file exemptions (the threads backend, the wall
/// timer) live in `lint.toml`; point exemptions use waivers.
pub fn determinism(ctx: &FileCtx<'_>, cfg: &Config) -> Vec<Diagnostic> {
    if !covered(ctx.path, cfg.list("determinism", "paths"))
        || allowed(ctx.path, cfg.list("determinism", "allow"))
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    let code: Vec<usize> = ctx.code().collect();
    for (k, &i) in code.iter().enumerate() {
        let t = &ctx.tokens[i];
        if t.kind != Kind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" => out.push(ctx.diag(
                "determinism",
                t.line,
                format!(
                    "`{}` on a sim-path crate: wall-clock nondeterminism breaks the \
                     results/ byte-identity gate (allowlist the module in lint.toml if \
                     it is genuinely wall-clock territory)",
                    t.text
                ),
            )),
            "thread_rng" | "random" if t.text == "thread_rng" => out.push(
                ctx.diag(
                    "determinism",
                    t.line,
                    "ambient RNG on a sim-path crate: draw from the run's seeded rng instead"
                        .to_string(),
                ),
            ),
            "HashMap" | "HashSet" => {
                // Only the std default-hasher forms: a fully qualified
                // `std::collections::X` use or an import of it. Typed
                // aliases over FxHasher (emca_metrics::FxHashMap) pass.
                let from_std = k >= 4
                    && ctx.tokens[code[k - 1]].is_punct(':')
                    && ctx.tokens[code[k - 2]].is_punct(':')
                    && (ctx.tokens[code[k - 3]].is_ident("collections")
                        || ctx.tokens[code[k - 3]].is_punct('{'))
                    || in_std_collections_group(ctx, &code, k);
                if from_std {
                    out.push(ctx.diag(
                        "determinism",
                        t.line,
                        format!(
                            "std `{}` (default hasher) on a sim-path crate: iteration \
                             order is randomized per process — use emca_metrics::Fx{} \
                             instead",
                            t.text, t.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// True when token `k` (a HashMap/HashSet ident) sits inside a
/// `use std::collections::{...}` group.
fn in_std_collections_group(ctx: &FileCtx<'_>, code: &[usize], k: usize) -> bool {
    // Walk backwards to the start of the statement (a `;` or `use`),
    // and check it reads `use std :: collections ::`.
    let mut j = k;
    while j > 0 {
        let t = &ctx.tokens[code[j]];
        if t.is_punct(';') {
            return false;
        }
        if t.is_ident("use") {
            return j + 5 < code.len()
                && ctx.tokens[code[j + 1]].is_ident("std")
                && ctx.tokens[code[j + 2]].is_punct(':')
                && ctx.tokens[code[j + 3]].is_punct(':')
                && ctx.tokens[code[j + 4]].is_ident("collections");
        }
        j -= 1;
    }
    false
}

/// `float-ordering` — `partial_cmp` is forbidden everywhere: on NaN it
/// returns `None`, and every `unwrap`/fallback around it either panics
/// or silently reorders. The workspace policy (PR 6) is `total_cmp`.
pub fn float_ordering(ctx: &FileCtx<'_>, cfg: &Config) -> Vec<Diagnostic> {
    if allowed(ctx.path, cfg.list("float_ordering", "allow")) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in ctx.code() {
        let t = &ctx.tokens[i];
        if t.is_ident("partial_cmp") {
            out.push(
                ctx.diag(
                    "float-ordering",
                    t.line,
                    "`partial_cmp` on floats: NaN gives None and the fallback reorders or \
                 panics — use `total_cmp` (workspace policy since the NaN percentile fix)"
                        .to_string(),
                ),
            );
        }
    }
    out
}

/// `panic-freedom` — on the worker-loop and pool-actuation files a
/// panic does not kill a process, it poisons the pool mutex and wedges
/// every parked peer. `unwrap`/`expect`/`panic!`-family tokens are
/// forbidden there; `assert!` stays legal (tripwires on the driver
/// thread are the documented failure mode).
pub fn panic_freedom(ctx: &FileCtx<'_>, cfg: &Config) -> Vec<Diagnostic> {
    if !allowed(ctx.path, cfg.list("panic_freedom", "files")) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let code: Vec<usize> = ctx.code().collect();
    for (k, &i) in code.iter().enumerate() {
        let t = &ctx.tokens[i];
        if t.kind != Kind::Ident {
            continue;
        }
        let next_is_bang = code
            .get(k + 1)
            .is_some_and(|&j| ctx.tokens[j].is_punct('!'));
        let prev_is_dot = k > 0 && ctx.tokens[code[k - 1]].is_punct('.');
        match t.text.as_str() {
            "unwrap" | "expect" if prev_is_dot => out.push(ctx.diag(
                "panic-freedom",
                t.line,
                format!(
                    "`.{}()` on a worker/pool path: a panic here poisons the pool mutex \
                     and wedges parked workers — return a typed error or recover \
                     (`unwrap_or_else(PoisonError::into_inner)` for locks)",
                    t.text
                ),
            )),
            "panic" | "unreachable" | "todo" | "unimplemented" if next_is_bang => {
                out.push(ctx.diag(
                    "panic-freedom",
                    t.line,
                    format!(
                        "`{}!` on a worker/pool path: workers must mark themselves dead \
                         and degrade, not unwind through the pool mutex",
                        t.text
                    ),
                ))
            }
            _ => {}
        }
    }
    out
}

/// `lock-order` — the declared table in `lint.toml` ranks every mutex
/// by its receiver name; inside one function, acquiring a lower-ranked
/// lock after a higher-ranked one is flagged (the token-level
/// approximation of nested-acquisition cycles: function-local
/// first-acquisition order). A `.lock()` on a receiver the table does
/// not know is flagged too — the table must stay complete to mean
/// anything.
pub fn lock_order(ctx: &FileCtx<'_>, cfg: &Config) -> Vec<Diagnostic> {
    let order = cfg.list("lock_order", "order");
    if order.is_empty() {
        return Vec::new();
    }
    let rank = |name: &str| order.iter().position(|o| o == name);
    let mut out = Vec::new();
    let code: Vec<usize> = ctx.code().collect();
    // Function boundaries: a `fn name` at any depth opens a scope at its
    // body brace; scopes nest (closures are part of the enclosing fn).
    let mut depth = 0i32;
    let mut fn_stack: Vec<(i32, Vec<(usize, u32)>)> = Vec::new(); // (entry depth, acquisitions)
    let mut pending_fn = false;
    for (k, &i) in code.iter().enumerate() {
        let t = &ctx.tokens[i];
        if t.is_ident("fn") {
            pending_fn = true;
        } else if t.is_punct('{') {
            depth += 1;
            if pending_fn {
                fn_stack.push((depth, Vec::new()));
                pending_fn = false;
            }
        } else if t.is_punct('}') {
            if fn_stack.last().is_some_and(|(d, _)| *d == depth) {
                fn_stack.pop();
            }
            depth -= 1;
        } else if t.is_punct(';') && pending_fn {
            pending_fn = false; // trait method declaration without body
        } else if t.is_ident("lock")
            && k >= 2
            && ctx.tokens[code[k - 1]].is_punct('.')
            && code
                .get(k + 1)
                .is_some_and(|&j| ctx.tokens[j].is_punct('('))
        {
            let recv = &ctx.tokens[code[k - 2]];
            if recv.kind != Kind::Ident {
                continue;
            }
            let Some((_, acqs)) = fn_stack.last_mut() else {
                continue;
            };
            match rank(&recv.text) {
                None => out.push(ctx.diag(
                    "lock-order",
                    t.line,
                    format!(
                        "`.lock()` on `{}`, which the [lock_order] table in lint.toml \
                         does not rank — add it so nesting stays checkable",
                        recv.text
                    ),
                )),
                Some(r) => {
                    if let Some(&(held, held_line)) = acqs.iter().find(|&&(h, _)| h > r) {
                        out.push(ctx.diag(
                            "lock-order",
                            t.line,
                            format!(
                                "`{}` (rank {r}) acquired after `{}` (rank {held}, line \
                                 {held_line}) in the same function — violates the \
                                 declared lock order {:?}",
                                recv.text, order[held], order
                            ),
                        ));
                    }
                    acqs.push((r, t.line));
                }
            }
        }
    }
    out
}

/// `schema-sync` — in a scenario module, every CSV header assembled by
/// `Table::new` must match a header declared in that module's `SCHEMAS`
/// const (which is what `csv_check` validates the committed files
/// against). Single-level const indirection is resolved within the
/// file; cross-file consts match symbolically by name.
pub fn schema_sync(ctx: &FileCtx<'_>, cfg: &Config) -> Vec<Diagnostic> {
    let Some(dir) = cfg.scalar("schema_sync", "dir") else {
        return Vec::new();
    };
    if !ctx.path.starts_with(dir) || ctx.path.ends_with("/mod.rs") {
        return Vec::new();
    }
    let code: Vec<usize> = ctx.code().collect();
    let consts = collect_consts(ctx, &code);
    let Some(schemas) = consts.iter().find(|c| c.name == "SCHEMAS") else {
        // A scenario module that builds no declared CSVs (helpers,
        // console-only scenarios) declares nothing to sync against; a
        // Table built here still gets checked if SCHEMAS exists.
        return Vec::new();
    };
    // Declared headers: odd positions of the (file, header) tuple list,
    // each either a literal or a const name.
    let mut declared: Vec<String> = Vec::new();
    for pair in schemas.items.chunks(2) {
        if let [_file, header] = pair {
            match header {
                SchemaItem::Lit(s) => declared.push(s.clone()),
                SchemaItem::Name(n) => {
                    declared.push(n.clone());
                    if let Some(c) = consts.iter().find(|c| c.name == *n) {
                        declared.push(c.joined());
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    // Every `Table::new(title, <columns>)` call site.
    for (k, &i) in code.iter().enumerate() {
        if !(ctx.tokens[i].is_ident("Table")
            && code
                .get(k + 1)
                .is_some_and(|&j| ctx.tokens[j].is_punct(':'))
            && code
                .get(k + 2)
                .is_some_and(|&j| ctx.tokens[j].is_punct(':'))
            && code
                .get(k + 3)
                .is_some_and(|&j| ctx.tokens[j].is_ident("new")))
        {
            continue;
        }
        let line = ctx.tokens[i].line;
        // Scan the argument list: skip the title (first literal), then
        // read the header — an inline `[ ... ]` of literals or an ident.
        let Some(header) = table_header(ctx, &code, k + 4) else {
            continue;
        };
        let ok = match &header {
            SchemaItem::Lit(h) => declared.iter().any(|d| d == h),
            SchemaItem::Name(n) => {
                declared.iter().any(|d| d == n)
                    || consts
                        .iter()
                        .find(|c| c.name == *n)
                        .is_some_and(|c| declared.iter().any(|d| *d == c.joined()))
            }
        };
        if !ok {
            let shown = match &header {
                SchemaItem::Lit(h) => h.clone(),
                SchemaItem::Name(n) => format!("<const {n}>"),
            };
            out.push(ctx.diag(
                "schema-sync",
                line,
                format!(
                    "Table header `{shown}` matches no header declared in this \
                     module's SCHEMAS — csv_check would never validate what this \
                     table writes"
                ),
            ));
        }
    }
    out
}

/// A string literal or a const reference inside a schema/header
/// position.
#[derive(Clone, Debug, PartialEq, Eq)]
enum SchemaItem {
    Lit(String),
    Name(String),
}

/// Processes the one escape that appears in schema headers: the
/// line-continuation `\` + newline + leading whitespace (the lexer
/// keeps escapes raw).
fn cooked(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\\' && chars.peek() == Some(&'\n') {
            chars.next();
            while chars.peek().is_some_and(|c| c.is_whitespace()) {
                chars.next();
            }
        } else {
            out.push(c);
        }
    }
    out
}

struct ConstDef {
    name: String,
    items: Vec<SchemaItem>,
}

impl ConstDef {
    /// The comma-joined literal view (what `Table::write_csv` emits for
    /// a column array; a scalar const is itself).
    fn joined(&self) -> String {
        self.items
            .iter()
            .map(|i| match i {
                SchemaItem::Lit(s) => s.as_str(),
                SchemaItem::Name(_) => "?",
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Collects `const NAME: ... = <init>;` items and the string literals /
/// const names appearing in their initializers, in source order.
fn collect_consts(ctx: &FileCtx<'_>, code: &[usize]) -> Vec<ConstDef> {
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        if ctx.tokens[code[k]].is_ident("const")
            && code
                .get(k + 1)
                .is_some_and(|&j| ctx.tokens[j].kind == Kind::Ident)
        {
            let name = ctx.tokens[code[k + 1]].text.clone();
            // Skip to `=`, then collect until `;`.
            let mut j = k + 2;
            while j < code.len() && !ctx.tokens[code[j]].is_punct('=') {
                j += 1;
            }
            let mut items = Vec::new();
            j += 1;
            while j < code.len() && !ctx.tokens[code[j]].is_punct(';') {
                let t = &ctx.tokens[code[j]];
                match t.kind {
                    Kind::Str => items.push(SchemaItem::Lit(cooked(&t.text))),
                    // Const references (SCREAMING_CASE idents, not type
                    // names like `str`).
                    Kind::Ident
                        if t.text.chars().all(|c| c.is_ascii_uppercase() || c == '_')
                            && t.text.len() > 1 =>
                    {
                        items.push(SchemaItem::Name(t.text.clone()))
                    }
                    _ => {}
                }
                j += 1;
            }
            out.push(ConstDef { name, items });
            k = j;
        }
        k += 1;
    }
    out
}

/// Reads the header argument of a `Table::new(title, header)` call
/// whose opening paren is at code index `k_open`.
fn table_header(ctx: &FileCtx<'_>, code: &[usize], k_open: usize) -> Option<SchemaItem> {
    if !ctx.tokens[*code.get(k_open)?].is_punct('(') {
        return None;
    }
    // Find the top-level comma separating title from header.
    let mut depth = 0i32;
    let mut k = k_open;
    let mut after_comma = None;
    while let Some(&i) = code.get(k) {
        let t = &ctx.tokens[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct(',') && depth == 1 && after_comma.is_none() {
            after_comma = Some(k + 1);
        }
        k += 1;
    }
    let end = k;
    let mut k = after_comma?;
    // Skip `&` and whitespace-level tokens to the header expression.
    while k < end && ctx.tokens[code[k]].is_punct('&') {
        k += 1;
    }
    let t = &ctx.tokens[*code.get(k)?];
    if t.is_punct('[') {
        // Inline column array: join its string literals.
        let mut cols = Vec::new();
        let mut depth = 0i32;
        while let Some(&i) = code.get(k) {
            let t = &ctx.tokens[i];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == Kind::Str {
                cols.push(cooked(&t.text));
            }
            k += 1;
        }
        return Some(SchemaItem::Lit(cols.join(",")));
    }
    if t.kind == Kind::Ident {
        return Some(SchemaItem::Name(t.text.clone()));
    }
    None
}
