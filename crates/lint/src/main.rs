//! Standalone entry point: `cargo run -p emca-lint [-- --root <dir>]`.
//!
//! Walks upward from the current directory to find `lint.toml`, lints
//! the workspace, prints every diagnostic, rewrites
//! `results/lint_report.json`, and exits 1 on violations. `emca check
//! --lint` runs the same engine from the bench CLI.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: emca-lint [--root <repo-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("emca-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("emca-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match emca_lint::find_repo_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "emca-lint: no lint.toml found walking up from {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let outcome = match emca_lint::run_workspace(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("emca-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &outcome.diagnostics {
        println!("{d}");
    }
    // The report reflects the tree even when violations exist — it
    // records violations=N so CI's `git diff --exit-code` also fails.
    let report_path = root.join("results").join("lint_report.json");
    if let Some(parent) = report_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&report_path, emca_lint::report::render(&outcome)) {
        eprintln!("emca-lint: writing {}: {e}", report_path.display());
        return ExitCode::from(2);
    }
    println!(
        "emca-lint: {} files, {} violations, {} waivers -> {}",
        outcome.files.len(),
        outcome.diagnostics.len(),
        outcome.waivers.len(),
        report_path.display()
    );
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
