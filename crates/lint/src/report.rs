//! The committed lint report: `results/lint_report.json`.
//!
//! Written deterministically (sorted entries, no timestamps, no host
//! data) so the file is byte-stable across runs and CI can pin it with
//! `git diff --exit-code` — the report in the tree is always the report
//! of the tree. The format is line-oriented on purpose: the workspace
//! has no JSON dependency, and `csv_check::check_lint_report` validates
//! it the same way it validates `bench.json`.

use crate::LintOutcome;

/// The rule ids the engine ships, in report order.
pub const RULE_IDS: &[&str] = &[
    "determinism",
    "float-ordering",
    "panic-freedom",
    "lock-order",
    "schema-sync",
];

/// Renders the report JSON. One waiver per line, `\n`-terminated.
pub fn render(outcome: &LintOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"version\": 1,\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", outcome.files.len()));
    let rules = RULE_IDS
        .iter()
        .map(|r| format!("\"{r}\""))
        .collect::<Vec<_>>()
        .join(", ");
    s.push_str(&format!("  \"rules\": [{rules}],\n"));
    s.push_str(&format!(
        "  \"violations\": {},\n",
        outcome.diagnostics.len()
    ));
    s.push_str("  \"waivers\": [\n");
    for (i, (path, line, rule, justification)) in outcome.waivers.iter().enumerate() {
        let comma = if i + 1 == outcome.waivers.len() {
            ""
        } else {
            ","
        };
        s.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"justification\": \"{}\"}}{}\n",
            escape(path),
            line,
            escape(rule),
            escape(justification),
            comma
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintOutcome;

    #[test]
    fn render_is_deterministic_and_sorted_input_stable() {
        let outcome = LintOutcome {
            files: vec!["a.rs".into(), "b.rs".into()],
            diagnostics: vec![],
            waivers: vec![(
                "crates/dbms/src/exec/par.rs".into(),
                42,
                "panic-freedom".into(),
                "invariant \"quoted\" reason".into(),
            )],
        };
        let one = render(&outcome);
        let two = render(&outcome);
        assert_eq!(one, two);
        assert!(one.contains("\"files_scanned\": 2"));
        assert!(one.contains("\"violations\": 0"));
        assert!(one.contains("\\\"quoted\\\""));
        assert!(one.ends_with("}\n"));
    }
}
