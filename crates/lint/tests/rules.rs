//! Fixture tests: seeded violations of every rule must be found at
//! their exact lines, lexer-level negatives (raw strings, comments)
//! must not trip rules, and the waiver mechanism must suppress, demand
//! justification, and garbage-collect itself.
//!
//! These fixtures live under `crates/lint/tests`, which `lint.toml`
//! excludes from the workspace walk — the seeded violations here never
//! reach the real lint run.

use emca_lint::config::Config;
use emca_lint::diag::Diagnostic;
use emca_lint::lint_source;

/// A config that covers the fixture path `crates/demo/src/lib.rs` with
/// every rule.
fn fixture_cfg() -> Config {
    Config::parse(
        r#"
[paths]
roots = ["crates"]
exclude = []

[determinism]
paths = ["crates/demo/src"]
allow = []

[float_ordering]
allow = []

[panic_freedom]
files = ["crates/demo/src/lib.rs"]

[lock_order]
order = ["state", "results", "finished_at"]

[schema_sync]
dir = "crates/demo/src"
"#,
    )
    .expect("fixture config parses")
}

const PATH: &str = "crates/demo/src/lib.rs";

fn diags(src: &str) -> Vec<Diagnostic> {
    lint_source(PATH, src, &fixture_cfg()).0
}

fn lines_of(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

// ---------------------------------------------------------------- determinism

#[test]
fn determinism_flags_wall_clock_rng_and_std_maps() {
    let src = "\
use std::time::Instant;
use std::collections::HashMap;

fn f() {
    let t = Instant::now();
    let r = rand::thread_rng();
    let m: std::collections::HashSet<u32> = Default::default();
    let _ = (t, r, m);
}
";
    let d = diags(src);
    assert_eq!(lines_of(&d, "determinism"), vec![1, 2, 5, 6, 7], "{d:#?}");
}

#[test]
fn determinism_ignores_strings_comments_and_fx_maps() {
    let src = "\
// Instant::now() in a comment is fine
/* and HashMap in /* a nested */ block comment too */
fn f() {
    let s = r#\"Instant SystemTime thread_rng HashMap\"#;
    let m = emca_metrics::FxHashMap::default(); // typed alias, not std
    let _ = (s, m);
}
";
    let d = diags(src);
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn determinism_skips_cfg_test_blocks() {
    let src = "\
fn shipping() {}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_is_fine_in_tests() {
        let t = std::time::Instant::now();
        let _ = t.elapsed();
    }
}
";
    let d = diags(src);
    assert!(d.is_empty(), "{d:#?}");
}

// ------------------------------------------------------------- float-ordering

#[test]
fn float_ordering_flags_partial_cmp_at_its_line() {
    let src = "\
fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
fn ok(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}
";
    let d = diags(src);
    assert_eq!(lines_of(&d, "float-ordering"), vec![2], "{d:#?}");
}

#[test]
fn float_ordering_ignores_the_token_inside_strings() {
    let d = diags("fn f() -> &'static str { \"partial_cmp\" }\n");
    assert!(d.is_empty(), "{d:#?}");
}

// -------------------------------------------------------------- panic-freedom

#[test]
fn panic_freedom_flags_unwrap_expect_and_panic_family() {
    let src = "\
fn f(o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect(\"present\");
    if a + b > 100 {
        panic!(\"too big\");
    }
    unreachable!()
}
";
    let d = diags(src);
    assert_eq!(lines_of(&d, "panic-freedom"), vec![2, 3, 5, 7], "{d:#?}");
}

#[test]
fn panic_freedom_permits_asserts_and_recovery_idioms() {
    let src = "\
fn f(m: &std::sync::Mutex<u32>) -> u32 {
    assert!(true, \"tripwires stay legal\");
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *g
}
";
    // `m.lock()` is on an unranked receiver — only lock-order fires,
    // never panic-freedom (unwrap_or_else lexes as one ident).
    let d = diags(src);
    assert!(lines_of(&d, "panic-freedom").is_empty(), "{d:#?}");
}

#[test]
fn panic_freedom_only_applies_to_listed_files() {
    let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let d = lint_source("crates/demo/src/other.rs", src, &fixture_cfg()).0;
    assert!(lines_of(&d, "panic-freedom").is_empty(), "{d:#?}");
}

// ----------------------------------------------------------------- lock-order

#[test]
fn lock_order_flags_inverted_nesting() {
    let src = "\
fn inverted(s: &Shared) {
    let r = s.results.lock();
    let g = s.state.lock();
    drop((r, g));
}
fn in_order(s: &Shared) {
    let g = s.state.lock();
    let r = s.results.lock();
    drop((g, r));
}
";
    let d = diags(src);
    assert_eq!(lines_of(&d, "lock-order"), vec![3], "{d:#?}");
    assert!(d[0].message.contains("rank 0"), "{}", d[0].message);
}

#[test]
fn lock_order_flags_unranked_receivers() {
    let src = "\
fn f(s: &Shared) {
    let g = s.mystery.lock();
    drop(g);
}
";
    let d = diags(src);
    assert_eq!(lines_of(&d, "lock-order"), vec![2], "{d:#?}");
    assert!(d[0].message.contains("mystery"), "{}", d[0].message);
}

#[test]
fn lock_order_resets_per_function() {
    // Each fn is its own scope: taking `results` in one fn and `state`
    // in the next is not nesting.
    let src = "\
fn a(s: &Shared) { let r = s.results.lock(); drop(r); }
fn b(s: &Shared) { let g = s.state.lock(); drop(g); }
";
    let d = diags(src);
    assert!(d.is_empty(), "{d:#?}");
}

// ---------------------------------------------------------------- schema-sync

#[test]
fn schema_sync_accepts_headers_declared_in_schemas() {
    let src = "\
pub const SCHEMAS: &[(&str, &str)] = &[(\"out.csv\", \"a,b,c\")];

fn run() {
    let t = Table::new(\"title\", &[\"a\", \"b\", \"c\"]);
    let _ = t;
}
";
    let d = diags(src);
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn schema_sync_flags_undeclared_headers() {
    let src = "\
pub const SCHEMAS: &[(&str, &str)] = &[(\"out.csv\", \"a,b,c\")];

fn run() {
    let t = Table::new(\"title\", &[\"a\", \"b\", \"drifted\"]);
    let _ = t;
}
";
    let d = diags(src);
    assert_eq!(lines_of(&d, "schema-sync"), vec![4], "{d:#?}");
}

#[test]
fn schema_sync_resolves_single_level_consts() {
    let src = "\
const HEADER: &str = \"x,y\";
pub const SCHEMAS: &[(&str, &str)] = &[(\"out.csv\", HEADER)];

fn run() {
    let t = Table::new(\"title\", &[\"x\", \"y\"]);
    let _ = t;
}
";
    let d = diags(src);
    assert!(d.is_empty(), "{d:#?}");
}

// -------------------------------------------------------------------- waivers

#[test]
fn waiver_with_justification_suppresses_from_the_line_above() {
    let src = "\
fn f(o: Option<u32>) -> u32 {
    // emca-lint: allow(panic-freedom) — fixture exercises the waiver path
    o.unwrap()
}
";
    let (d, w) = lint_source(PATH, src, &fixture_cfg());
    assert!(d.is_empty(), "{d:#?}");
    assert!(w.iter().any(|w| w.used && w.rule == "panic-freedom"));
}

#[test]
fn trailing_waiver_on_the_same_line_suppresses() {
    let src = "\
fn f(o: Option<u32>) -> u32 {
    o.unwrap() // emca-lint: allow(panic-freedom) -- same-line form
}
";
    let d = diags(src);
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn waiver_without_justification_is_an_error_and_does_not_suppress() {
    let src = "\
fn f(o: Option<u32>) -> u32 {
    // emca-lint: allow(panic-freedom)
    o.unwrap()
}
";
    let d = diags(src);
    assert_eq!(lines_of(&d, "waiver-syntax"), vec![2], "{d:#?}");
    assert_eq!(lines_of(&d, "panic-freedom"), vec![3], "{d:#?}");
}

#[test]
fn unused_waiver_is_flagged() {
    let src = "\
fn f() {
    // emca-lint: allow(determinism) — nothing here actually violates it
    let x = 1;
    let _ = x;
}
";
    let d = diags(src);
    assert_eq!(lines_of(&d, "unused-waiver"), vec![2], "{d:#?}");
}

#[test]
fn waiver_too_far_from_the_violation_does_not_suppress() {
    let src = "\
fn f(o: Option<u32>) -> u32 {
    // emca-lint: allow(panic-freedom) — two lines up, out of range

    o.unwrap()
}
";
    let d = diags(src);
    assert_eq!(lines_of(&d, "panic-freedom"), vec![4], "{d:#?}");
    assert_eq!(lines_of(&d, "unused-waiver"), vec![2], "{d:#?}");
}

#[test]
fn doc_comments_showing_waiver_syntax_do_not_waive() {
    let src = "\
/// Waive with `emca-lint: allow(panic-freedom) — why`.
fn f(o: Option<u32>) -> u32 {
    o.unwrap()
}
";
    let d = diags(src);
    assert_eq!(lines_of(&d, "panic-freedom"), vec![3], "{d:#?}");
    assert!(lines_of(&d, "unused-waiver").is_empty(), "{d:#?}");
}

// --------------------------------------------------- lexer-level exactness

#[test]
fn commented_out_violations_do_not_fire() {
    let src = "\
fn f() {
    // let t = Instant::now();
    /* o.unwrap(); panic!(\"no\"); */
    // v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
";
    let d = diags(src);
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn raw_strings_containing_violations_do_not_fire() {
    let src = "\
fn f() -> String {
    let a = r\"o.unwrap()\";
    let b = r##\"partial_cmp and Instant::now() and panic!()\"##;
    format!(\"{a}{b}\")
}
";
    let d = diags(src);
    assert!(d.is_empty(), "{d:#?}");
}
