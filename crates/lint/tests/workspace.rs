//! End-to-end: `run_workspace` over a seeded temp tree must surface a
//! violation of every rule (this is what makes `emca check --lint` and
//! the standalone binary exit non-zero), and a clean tree must come
//! back clean.

use std::fs;
use std::path::PathBuf;

const LINT_TOML: &str = r#"
[paths]
roots = ["crates"]
exclude = []

[determinism]
paths = ["crates/demo/src"]
allow = []

[float_ordering]
allow = []

[panic_freedom]
files = ["crates/demo/src/lib.rs"]

[lock_order]
order = ["state", "results"]

[schema_sync]
dir = "crates/demo/src"
"#;

/// Creates a throwaway repo root under the test temp dir. Each test
/// uses its own subdirectory, so parallel tests never collide.
fn scratch_repo(name: &str, lib_rs: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("emca-lint-ws-{name}"));
    let src = root.join("crates/demo/src");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&src).expect("create scratch tree");
    fs::write(root.join("lint.toml"), LINT_TOML).expect("write lint.toml");
    fs::write(src.join("lib.rs"), lib_rs).expect("write lib.rs");
    root
}

#[test]
fn seeded_violations_of_every_rule_are_found() {
    let lib = "\
pub const SCHEMAS: &[(&str, &str)] = &[(\"out.csv\", \"a,b\")];

fn run(s: &Shared, o: Option<u32>, v: &mut [f64]) {
    let t = std::time::Instant::now();
    v.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let r = s.results.lock();
    let g = s.state.lock();
    let table = Table::new(\"t\", &[\"a\", \"drifted\"]);
    let _ = (t, r, g, table, o.unwrap());
}
";
    let root = scratch_repo("seeded", lib);
    let outcome = emca_lint::run_workspace(&root).expect("workspace lints");
    assert!(!outcome.clean());
    for rule in [
        "determinism",
        "float-ordering",
        "panic-freedom",
        "lock-order",
        "schema-sync",
    ] {
        assert!(
            outcome.diagnostics.iter().any(|d| d.rule == rule),
            "no {rule} diagnostic in {:#?}",
            outcome.diagnostics
        );
    }
    // Diagnostics carry the repo-relative path and a real line.
    assert!(outcome
        .diagnostics
        .iter()
        .all(|d| d.path == "crates/demo/src/lib.rs" && d.line > 0));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn a_clean_tree_is_clean_and_reports_its_waivers() {
    let lib = "\
pub const SCHEMAS: &[(&str, &str)] = &[(\"out.csv\", \"a,b\")];

fn run(v: &mut [f64]) {
    v.sort_by(|x, y| x.total_cmp(y));
    // emca-lint: allow(determinism) — scratch fixture proving waivers surface in the outcome
    let t = std::time::Instant::now();
    let table = Table::new(\"t\", &[\"a\", \"b\"]);
    let _ = (t, table);
}
";
    let root = scratch_repo("clean", lib);
    let outcome = emca_lint::run_workspace(&root).expect("workspace lints");
    assert!(outcome.clean(), "{:#?}", outcome.diagnostics);
    assert_eq!(outcome.files, vec!["crates/demo/src/lib.rs"]);
    assert_eq!(outcome.waivers.len(), 1);
    assert_eq!(outcome.waivers[0].2, "determinism");
    let _ = fs::remove_dir_all(&root);
}
