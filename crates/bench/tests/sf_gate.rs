//! Scale-factor gate: the paper's own scale (`EMCA_SF=1`) must stay
//! tractable end-to-end. Opt-in (`EMCA_SF_GATE=1`) because a full sf-1
//! `tab_summary` costs minutes, not seconds — the default-scale wall
//! budget in CI (`EMCA_WALL_BUDGET_S` on `emca check --fidelity`) is
//! the everyday tripwire; this test is the direct claim check behind
//! the ROADMAP's `EMCA_SF=1` item.
//!
//! Beyond the wall budget, the generated CSVs are diffed byte-for-byte
//! against the pinned set in `results/sf1/` — the sim backend is
//! deterministic, so *any* drift at the paper's scale is a behaviour
//! change that must be reviewed, not just one that crosses a bound.
//! After an intentional change, regenerate the pinned set with:
//!
//! ```sh
//! emca run tab_summary --sf 1 --users 64 --out-dir results/sf1
//! ```
//!
//! Run with:
//!
//! ```sh
//! EMCA_SF_GATE=1 cargo test --release -p emca-bench --test sf_gate -- --nocapture
//! ```

use emca_harness::ExperimentSpec;
use std::path::Path;

/// Byte-diffs every CSV the scenario declares against the pinned sf-1
/// set, returning the list of divergences.
fn diff_pinned(generated: &Path, pinned: &Path) -> Vec<String> {
    let mut problems = Vec::new();
    let registry = emca_bench::scenarios::registry();
    let schemas = registry
        .iter()
        .find(|s| s.name() == "tab_summary")
        .expect("tab_summary is registered")
        .csv_schemas();
    for (name, _) in schemas {
        let got = std::fs::read_to_string(generated.join(name));
        let want = std::fs::read_to_string(pinned.join(name));
        match (got, want) {
            (Err(e), _) => problems.push(format!("{name}: generated file unreadable: {e}")),
            (_, Err(e)) => problems.push(format!(
                "{name}: pinned file unreadable ({e}) — regenerate results/sf1/ \
                 with `emca run tab_summary --sf 1 --users 64 --out-dir results/sf1`"
            )),
            (Ok(got), Ok(want)) => {
                if got != want {
                    let diverging: Vec<String> = got
                        .lines()
                        .zip(want.lines())
                        .enumerate()
                        .filter(|(_, (g, w))| g != w)
                        .map(|(i, (g, w))| format!("  line {}: got {g:?}, pinned {w:?}", i + 1))
                        .take(5)
                        .collect();
                    problems.push(format!(
                        "{name}: drifted from the pinned sf-1 set\n{}",
                        diverging.join("\n")
                    ));
                }
            }
        }
    }
    problems
}

/// Wall budget for the sf-1 run, seconds (the acceptance bound;
/// override with `EMCA_SF_GATE_BUDGET_S`).
const DEFAULT_BUDGET_S: f64 = 300.0;

#[test]
fn sf1_tab_summary_completes_within_budget() {
    if std::env::var("EMCA_SF_GATE")
        .map(|v| v != "1")
        .unwrap_or(true)
    {
        eprintln!("sf_gate: skipped (set EMCA_SF_GATE=1 to run the sf-1 gate)");
        return;
    }
    let budget_s = std::env::var("EMCA_SF_GATE_BUDGET_S")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_BUDGET_S);

    let dir = std::env::temp_dir().join(format!("emca_sf_gate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec = ExperimentSpec {
        sf: Some(1.0),
        users: Some(64),
        out_dir: Some(dir.clone()),
        ..ExperimentSpec::default()
    };
    let registry = emca_bench::scenarios::registry();
    let timer = emca_harness::WallTimer::start("tab_summary@sf1");
    registry
        .run("tab_summary", &spec)
        .expect("sf-1 tab_summary must complete");
    let elapsed = timer.finish();
    let verdict = emca_harness::enforce_wall_budget("tab_summary@sf1", elapsed, budget_s);
    // Diff the run against the pinned sf-1 results before cleaning up.
    let pinned = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/sf1");
    let drift = diff_pinned(&dir, &pinned);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        drift.is_empty(),
        "sf_gate: sf-1 output drifted from the pinned set:\n{}",
        drift.join("\n")
    );
    match verdict {
        Ok(msg) => eprintln!("sf_gate: {msg}"),
        Err(msg) => panic!("sf_gate: {msg}"),
    }
}
