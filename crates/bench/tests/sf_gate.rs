//! Scale-factor gate: the paper's own scale (`EMCA_SF=1`) must stay
//! tractable end-to-end. Opt-in (`EMCA_SF_GATE=1`) because a full sf-1
//! `tab_summary` costs minutes, not seconds — the default-scale wall
//! budget in CI (`EMCA_WALL_BUDGET_S` on `emca check --fidelity`) is
//! the everyday tripwire; this test is the direct claim check behind
//! the ROADMAP's `EMCA_SF=1` item.
//!
//! Run with:
//!
//! ```sh
//! EMCA_SF_GATE=1 cargo test --release -p emca-bench --test sf_gate -- --nocapture
//! ```

use emca_harness::ExperimentSpec;

/// Wall budget for the sf-1 run, seconds (the acceptance bound;
/// override with `EMCA_SF_GATE_BUDGET_S`).
const DEFAULT_BUDGET_S: f64 = 300.0;

#[test]
fn sf1_tab_summary_completes_within_budget() {
    if std::env::var("EMCA_SF_GATE")
        .map(|v| v != "1")
        .unwrap_or(true)
    {
        eprintln!("sf_gate: skipped (set EMCA_SF_GATE=1 to run the sf-1 gate)");
        return;
    }
    let budget_s = std::env::var("EMCA_SF_GATE_BUDGET_S")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_BUDGET_S);

    let dir = std::env::temp_dir().join(format!("emca_sf_gate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec = ExperimentSpec {
        sf: Some(1.0),
        users: Some(64),
        out_dir: Some(dir.clone()),
        ..ExperimentSpec::default()
    };
    let registry = emca_bench::scenarios::registry();
    let timer = emca_harness::WallTimer::start("tab_summary@sf1");
    registry
        .run("tab_summary", &spec)
        .expect("sf-1 tab_summary must complete");
    let elapsed = timer.finish();
    let verdict = emca_harness::enforce_wall_budget("tab_summary@sf1", elapsed, budget_s);
    let _ = std::fs::remove_dir_all(&dir);
    match verdict {
        Ok(msg) => eprintln!("sf_gate: {msg}"),
        Err(msg) => panic!("sf_gate: {msg}"),
    }
}
