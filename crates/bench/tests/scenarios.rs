//! Registry coverage: all 17 retired binaries plus the multi-tenant
//! (`mt_*`) and serving (`serve_*`) workloads are registered scenarios,
//! and every one of them runs end-to-end at tiny scale, emitting the
//! CSV schema it declares. The final `csv_check` pass validates the
//! freshly generated set with the same library call CI uses — so schema
//! declarations, scenario bodies, and the checker can never drift
//! apart.

use emca_bench::scenarios;
use emca_harness::ExperimentSpec;
use std::path::PathBuf;

/// Every name reachable through `emca run <name>`: the retired
/// one-binary-per-figure entry points plus the `mt_*` and `serve_*`
/// scenarios.
const EXPECTED: [&str; 26] = [
    "ablation",
    "chaos_recovery",
    "chaos_serve",
    "csv_check",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "mt_burst",
    "mt_churn",
    "mt_fairshare",
    "mt_interference",
    "mt_zipf",
    "probe",
    "serve_latency_curve",
    "serve_overload",
    "tab_overhead",
    "tab_summary",
];

#[test]
fn registry_lists_all_former_binaries() {
    let registry = scenarios::registry();
    assert_eq!(registry.names(), EXPECTED.to_vec());
    for s in registry.iter() {
        assert!(!s.about().is_empty(), "{} needs a description", s.name());
    }
}

#[test]
fn registry_declares_the_full_results_schema_set() {
    // The committed results/ dir carries one CSV per declared schema;
    // 34 files across the 24 CSV-writing scenarios (probe and csv_check
    // only print).
    assert_eq!(scenarios::declared_csv_count(), 34);
    let registry = scenarios::registry();
    let mut seen = std::collections::BTreeSet::new();
    for s in registry.iter() {
        for (file, header) in s.csv_schemas() {
            assert!(seen.insert(*file), "{file} declared twice");
            assert!(!header.is_empty(), "{file} has an empty header");
        }
    }
}

#[test]
fn unknown_scenario_is_a_listed_error() {
    let registry = scenarios::registry();
    let err = registry
        .run("fig99", &ExperimentSpec::default())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("fig99") && msg.contains("fig04"), "{msg}");
}

/// Every scenario runs at sf=0.002 with a tiny client/iteration budget
/// and emits exactly the CSV files it declares, each matching its
/// declared header. `csv_check` runs last, validating the full freshly
/// generated set end-to-end.
#[test]
fn every_scenario_smokes_at_tiny_scale() {
    let out_dir = std::env::temp_dir().join(format!("emca_scenario_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);
    std::fs::create_dir_all(&out_dir).expect("create smoke dir");

    let spec = ExperimentSpec {
        sf: Some(0.002),
        users: Some(2),
        iters: Some(1),
        out_dir: Some(PathBuf::from(&out_dir)),
        ..ExperimentSpec::default()
    };
    let registry = scenarios::registry();
    let mut order: Vec<&str> = EXPECTED
        .iter()
        .copied()
        .filter(|n| *n != "csv_check")
        .collect();
    order.push("csv_check"); // validates everything the others wrote
    for name in order {
        let mut spec = spec.clone();
        spec.scenario = name.to_string();
        if name.starts_with("serve_") || name == "chaos_serve" {
            // The serving layer replaces the closed-loop client knobs
            // with an open-loop schedule; pin a tiny one so the smoke
            // stays quick.
            spec.set("arrival", "poisson:120").unwrap();
            spec.set("duration", "0.25").unwrap();
        }
        // One generic spec drives every scenario; drop the knobs each
        // one does not honour (the --prune-unsupported path).
        registry.prune_unsupported(name, &mut spec);
        registry
            .run(name, &spec)
            .unwrap_or_else(|e| panic!("scenario {name} failed at tiny scale: {e}"));
        let scenario = registry.get(name).expect("registered");
        for (file, header) in scenario.csv_schemas() {
            emca_harness::validate_csv(&out_dir.join(file), header)
                .unwrap_or_else(|e| panic!("scenario {name}: {e}"));
        }
    }
    let _ = std::fs::remove_dir_all(&out_dir);
}

/// The policy override threads through a scenario end-to-end: the
/// mechanism slot's series is relabelled and still emits the declared
/// schema.
#[test]
fn policy_override_reaches_the_scenario_output() {
    let out_dir = std::env::temp_dir().join(format!("emca_scenario_policy_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);
    std::fs::create_dir_all(&out_dir).expect("create dir");
    let spec = ExperimentSpec {
        scenario: "fig13".into(),
        sf: Some(0.002),
        users: Some(2),
        iters: Some(1),
        policy: Some(elastic_core::PolicyId::HillClimb),
        out_dir: Some(PathBuf::from(&out_dir)),
        ..ExperimentSpec::default()
    };
    scenarios::registry().run("fig13", &spec).expect("fig13");
    let csv = std::fs::read_to_string(out_dir.join("fig13_sched_metrics.csv")).unwrap();
    assert!(
        csv.contains("HillClimb"),
        "mechanism slot must carry the policy label:\n{csv}"
    );
    assert!(
        !csv.contains("Adaptive"),
        "the adaptive slot was replaced:\n{csv}"
    );
    let _ = std::fs::remove_dir_all(&out_dir);
}
