//! Determinism regression for the bench harness layer.
//!
//! `tests/full_stack.rs` already guards `deterministic_replay` at the
//! runner layer (identical `RunOutput` measurements). This test guards
//! the contract one layer up, where the figure binaries live: a
//! fig04-style sweep — hand-coded Q6 under three affinities plus
//! OS/MonetDB, swept over client counts — executed twice from scratch
//! must render the exact same table bytes (and therefore the exact same
//! CSV). Any nondeterminism in data generation, scheduling, metric
//! aggregation, or float formatting shows up here as a byte diff.

use emca_harness::{run, run_handcoded, Alloc, RunConfig};
use emca_metrics::table::{fnum, Table};
use emca_metrics::SimDuration;
use volcano_db::client::Workload;
use volcano_db::handcoded::CAffinity;
use volcano_db::tpch::{QuerySpec, TpchData, TpchScale};

/// One fig04-style sweep at test-tiny scale, rendered to table bytes.
fn fig04_style_sweep() -> (String, String) {
    let scale = TpchScale::test_tiny();
    let iters = 2;
    let data = TpchData::generate(scale);

    let mut t = Table::new(
        "determinism probe — Q6 users sweep",
        &[
            "users",
            "series",
            "throughput_qps",
            "minor_faults_per_s",
            "ht_traffic_MBps",
        ],
    );
    for users in [1usize, 4] {
        for (name, affinity) in [
            ("Dense/C", CAffinity::Dense),
            ("Sparse/C", CAffinity::Sparse),
            ("OS/C", CAffinity::Os),
        ] {
            let out = run_handcoded(
                &data,
                affinity,
                users,
                16,
                iters,
                SimDuration::from_secs(3600),
            );
            t.row(vec![
                users.to_string(),
                name.to_string(),
                fnum(out.throughput_qps(), 3),
                fnum(out.fault_rate(), 0),
                fnum(out.ht_rate() / 1e6, 1),
            ]);
        }
        let out = run(
            RunConfig::new(
                Alloc::OsAll,
                users,
                Workload::Repeat {
                    spec: QuerySpec::Q6 { variant: 0 },
                    iterations: iters,
                },
            )
            .with_scale(scale),
            &data,
        );
        t.row(vec![
            users.to_string(),
            "OS/MonetDB".to_string(),
            fnum(out.throughput_qps(), 3),
            fnum(out.fault_rate(), 0),
            fnum(out.ht_rate() / 1e6, 1),
        ]);
    }
    (t.render(), t.to_csv())
}

#[test]
fn fig04_sweep_is_byte_identical_across_runs() {
    let (render1, csv1) = fig04_style_sweep();
    let (render2, csv2) = fig04_style_sweep();
    assert_eq!(render1, render2, "rendered table must be byte-identical");
    assert_eq!(csv1, csv2, "CSV must be byte-identical");
    // Sanity: the sweep actually produced data rows.
    assert!(csv1.lines().count() > 1, "sweep produced no rows:\n{csv1}");
}

/// The registry path (`emca run <scenario>`) is as deterministic as the
/// direct-call path: the same spec run twice through the scenario
/// registry produces byte-identical CSV files, including the mechanism
/// scenarios (fig07 exercises the full PrT control loop).
#[test]
fn registry_runs_are_byte_identical() {
    use emca_harness::ExperimentSpec;

    let registry = emca_bench::scenarios::registry();
    let base = std::env::temp_dir().join(format!("emca_determinism_cli_{}", std::process::id()));
    let spec = |dir: &std::path::Path| ExperimentSpec {
        sf: Some(0.002),
        users: Some(2),
        iters: Some(2),
        out_dir: Some(dir.to_path_buf()),
        ..ExperimentSpec::default()
    };
    for scenario in ["fig06", "fig07"] {
        let mut bytes: Vec<Vec<u8>> = Vec::new();
        for round in 0..2 {
            let dir = base.join(format!("{scenario}_{round}"));
            std::fs::create_dir_all(&dir).unwrap();
            // One generic spec drives both scenarios; drop the knobs
            // each one does not honour (the --prune-unsupported path).
            let mut spec = spec(&dir);
            registry.prune_unsupported(scenario, &mut spec);
            registry
                .run(scenario, &spec)
                .unwrap_or_else(|e| panic!("{scenario}: {e}"));
            let (file, _) = registry.get(scenario).unwrap().csv_schemas()[0];
            bytes.push(std::fs::read(dir.join(file)).expect("scenario wrote its CSV"));
        }
        assert_eq!(
            bytes[0], bytes[1],
            "{scenario}: registry runs must be byte-identical"
        );
        assert!(!bytes[0].is_empty());
    }
    let _ = std::fs::remove_dir_all(base);
}

/// The kernel-rework determinism guard: a join/group-heavy workload
/// (Q3 joins + Q18's wide group-by + Q6 selections across variants)
/// exercises every new typed kernel — branchless selection, flat
/// direct/hashed join tables, dense/hash group accumulators, in-place
/// projection buffers — and must replay byte-identically, including the
/// actual query *results* (root aggregates), not just the timings.
#[test]
fn kernel_workload_is_byte_identical_across_runs() {
    use volcano_db::client::Workload;
    use volcano_db::tpch::QuerySpec;

    let run_once = || {
        let scale = TpchScale::test_tiny();
        let data = TpchData::generate(scale);
        let out = run(
            RunConfig::new(
                Alloc::OsAll,
                3,
                Workload::Mixed {
                    specs: vec![
                        QuerySpec::Tpch {
                            number: 3,
                            variant: 0,
                        },
                        QuerySpec::Tpch {
                            number: 18,
                            variant: 1,
                        },
                        QuerySpec::Q6 { variant: 2 },
                    ],
                    iterations: 3,
                    seed: 42,
                },
            )
            .with_scale(scale),
            &data,
        );
        let mut t = Table::new("kernel determinism probe", &["metric", "value"]);
        t.row(vec!["qps".into(), fnum(out.throughput_qps(), 4)]);
        t.row(vec!["ht_MBps".into(), fnum(out.ht_rate() / 1e6, 2)]);
        t.row(vec![
            "mean_resp_ms".into(),
            fnum(out.mean_response().as_millis_f64(), 3),
        ]);
        t.to_csv()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "kernel workload must replay byte-identically");
    assert!(a.lines().count() > 3);
}
