//! Criterion bench for the simulated kernel's tick loop (the hot path of
//! every experiment): 16 cores, a spread of spinning threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emca_metrics::SimDuration;
use os_sim::{CoreMask, Kernel, SpinWork};
use std::hint::black_box;

fn bench_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_tick");
    for &threads in &[16usize, 64, 272] {
        g.bench_with_input(BenchmarkId::new("run_tick", threads), &threads, |b, &n| {
            let mut kernel = Kernel::opteron_4x4();
            let group = kernel.create_group(CoreMask::all(kernel.machine().topology()));
            for i in 0..n {
                kernel.spawn(
                    format!("w{i}"),
                    group,
                    None,
                    Box::new(SpinWork::new(SimDuration::from_secs(3600))),
                );
            }
            b.iter(|| {
                kernel.run_tick();
                black_box(kernel.now())
            });
        });
    }
    g.finish();
}

/// Quick Criterion config: the benches are smoke-level performance
/// tracking, not publication numbers.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}
criterion_group! {name = benches; config = quick(); targets = bench_tick}
criterion_main!(benches);
