//! Criterion bench for the memory-hierarchy model: segment accesses
//! through L2/L3/DRAM and the congestion bookkeeping.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use numa_sim::{AccessKind, CoreId, Machine, StreamId, SEG_BYTES};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_model");
    g.throughput(Throughput::Elements(1));

    g.bench_function("access_l2_hit", |b| {
        let mut m = Machine::opteron_4x4();
        let sp = m.create_space();
        let r = m.alloc(sp, SEG_BYTES);
        let seg = r.segment(0);
        m.access_segment(CoreId(0), seg, AccessKind::Read, StreamId(0));
        b.iter(|| black_box(m.access_segment(CoreId(0), seg, AccessKind::Read, StreamId(0))));
    });

    g.bench_function("access_dram_stream", |b| {
        let mut m = Machine::opteron_4x4();
        let sp = m.create_space();
        // Far larger than L3: every access in the cycle is a miss.
        let r = m.alloc(sp, 1024 * SEG_BYTES);
        let segs: Vec<_> = r.segments().collect();
        let mut i = 0;
        b.iter(|| {
            let seg = segs[i % segs.len()];
            i += 1;
            black_box(m.access_segment(CoreId(0), seg, AccessKind::Read, StreamId(0)))
        });
    });

    g.bench_function("access_remote_stream", |b| {
        let mut m = Machine::opteron_4x4();
        let sp = m.create_space();
        let r = m.alloc(sp, 1024 * SEG_BYTES);
        // Home everything on node 0 first.
        for seg in r.segments() {
            m.access_segment(CoreId(0), seg, AccessKind::Write, StreamId(0));
        }
        let segs: Vec<_> = r.segments().collect();
        let mut i = 0;
        b.iter(|| {
            let seg = segs[i % segs.len()];
            i += 1;
            // Core 15 is on node 3: always remote.
            black_box(m.access_segment(CoreId(15), seg, AccessKind::Read, StreamId(0)))
        });
    });

    g.bench_function("end_tick", |b| {
        let mut m = Machine::opteron_4x4();
        b.iter(|| {
            m.end_tick();
            black_box(())
        });
    });

    g.finish();
}

/// Quick Criterion config: the benches are smoke-level performance
/// tracking, not publication numbers.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}
criterion_group! {name = benches; config = quick(); targets = bench_cache}
criterion_main!(benches);
