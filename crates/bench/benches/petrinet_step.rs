//! Criterion bench for the PrT rule-condition-action step (the §V
//! overhead table): one full token flow through the 5-place net per
//! iteration, for each sub-net path.

use criterion::{criterion_group, criterion_main, Criterion};
use prt_petrinet::{ElasticNet, Thresholds};
use std::hint::black_box;

fn bench_petrinet(c: &mut Criterion) {
    let mut g = c.benchmark_group("petrinet_step");
    g.bench_function("stable_path", |b| {
        let mut net = ElasticNet::new(Thresholds::cpu_load_default(), 16, 4);
        b.iter(|| black_box(net.step(black_box(40))));
    });
    g.bench_function("overload_release_cycle", |b| {
        let mut net = ElasticNet::new(Thresholds::cpu_load_default(), 16, 4);
        b.iter(|| {
            black_box(net.step(black_box(99)));
            black_box(net.step(black_box(5)));
        });
    });
    g.bench_function("incidence_matrix", |b| {
        let net = ElasticNet::new(Thresholds::cpu_load_default(), 16, 1);
        b.iter(|| black_box(net.net().incidence()));
    });
    g.finish();
}

/// Quick Criterion config: the benches are smoke-level performance
/// tracking, not publication numbers.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}
criterion_group! {name = benches; config = quick(); targets = bench_petrinet}
criterion_main!(benches);
