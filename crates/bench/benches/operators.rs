//! Criterion bench for the columnar operators' real evaluation paths
//! (the compute the simulation memoises).
//!
//! Covers the typed kernels against their naive references
//! (`eval::reference`) at two sizes, so `BENCH_operators.json` records
//! the before/after spread of the monomorphized rework. The JSON sink
//! writes to the repo root (override with `BENCH_JSON_PATH`); CI
//! schema-checks the file through `emca check`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use volcano_db::exec::eval::{self, reference};
use volcano_db::exec::mat::{FlatJoinMap, JoinTable};
use volcano_db::exec::plan::{AggKind, ArithOp, CmpOp, ScalarPred};
use volcano_db::storage::ColData;

/// Benchmark sizes: a cache-resident slice and a partition-scale slice.
const SIZES: [usize; 2] = [1 << 14, 1 << 18];

fn data_f64(n: usize) -> ColData {
    ColData::F64(Arc::new((0..n).map(|i| (i % 50) as f64).collect()))
}

fn data_i64(n: usize) -> ColData {
    ColData::I64(Arc::new((0..n as i64).map(|i| (i * 37) % 1000).collect()))
}

/// Join-key column: a selective subset pattern over a dense domain.
fn join_keys(n: usize) -> ColData {
    ColData::I64(Arc::new(
        (0..n as i64).map(|i| (i * 7) % (n as i64)).collect(),
    ))
}

fn flat_table(keys: &ColData, n: usize) -> JoinTable {
    JoinTable {
        map: FlatJoinMap::from_parts([eval::build_hash_part(keys, 0, n)]),
        build_origin: None,
        build_table: "orders",
    }
}

fn bench_headline(c: &mut Criterion) {
    // The three headline kernels of the typed-kernel rework, each next
    // to its naive reference, at both sizes.
    let mut g = c.benchmark_group("operators");
    for &n in &SIZES {
        g.throughput(Throughput::Elements(n as u64));

        let qty = data_f64(n);
        let pred = ScalarPred::Cmp(CmpOp::Lt, 24.0);
        g.bench_with_input(BenchmarkId::new("scan_select", n), &n, |b, &n| {
            b.iter(|| black_box(eval::scan_select(&qty, 0, n, &pred)));
        });
        g.bench_with_input(BenchmarkId::new("scan_select_ref", n), &n, |b, &n| {
            b.iter(|| black_box(reference::scan_select(&qty, 0, n, &pred)));
        });

        let bkeys = join_keys(n);
        let table = flat_table(&bkeys, n);
        let ref_map = reference::merge_hash([reference::build_hash(&bkeys, 0, n)]);
        let probe_keys = ColData::I64(Arc::new(
            (0..n as i64).map(|i| (i * 13) % (2 * n as i64)).collect(),
        ));
        g.bench_with_input(BenchmarkId::new("probe_hash", n), &n, |b, &n| {
            b.iter(|| black_box(eval::probe_hash(&table, &probe_keys, None, None, 0, n)));
        });
        g.bench_with_input(BenchmarkId::new("probe_hash_ref", n), &n, |b, &n| {
            b.iter(|| {
                black_box(reference::probe_hash(
                    &ref_map,
                    &probe_keys,
                    None,
                    None,
                    0,
                    n,
                ))
            });
        });

        let gkeys = data_i64(n);
        let vals = data_f64(n);
        g.bench_with_input(BenchmarkId::new("group_agg", n), &n, |b, &n| {
            b.iter(|| black_box(eval::group_agg(&gkeys, Some(&vals), AggKind::Sum, 0, n)));
        });
        g.bench_with_input(BenchmarkId::new("group_agg_ref", n), &n, |b, &n| {
            b.iter(|| {
                black_box(reference::group_agg(
                    &gkeys,
                    Some(&vals),
                    AggKind::Sum,
                    0,
                    n,
                ))
            });
        });
    }
    g.finish();
}

fn bench_supporting(c: &mut Criterion) {
    // The remaining kernels at the larger size (tracking, not headline).
    let n = SIZES[1];
    let mut g = c.benchmark_group("operators_support");
    g.throughput(Throughput::Elements(n as u64));

    let qty = data_f64(n);
    let cands: Vec<u32> = (0..n as u32).step_by(2).collect();
    g.bench_function("select_and", |b| {
        let pred = ScalarPred::Between(10.0, 30.0);
        b.iter(|| black_box(eval::select_and(&cands, &qty, &pred)));
    });

    g.bench_function("project", |b| {
        b.iter(|| black_box(eval::project(&cands, &qty)));
    });

    let left = data_f64(n);
    let right = data_f64(n);
    g.bench_function("bin_op_mul", |b| {
        b.iter(|| black_box(eval::bin_op(&left, &right, ArithOp::Mul, 0, n)));
    });

    g.bench_function("aggr_sum", |b| {
        b.iter(|| black_box(eval::aggr_sum(&left, 0, n)));
    });

    let keys = data_i64(n);
    g.bench_function("build_flat", |b| {
        b.iter(|| {
            black_box(FlatJoinMap::from_parts([eval::build_hash_part(
                &keys, 0, n,
            )]))
        });
    });
    g.bench_function("build_ref", |b| {
        b.iter(|| black_box(reference::build_hash(&keys, 0, n)));
    });

    let groups: Vec<(i64, f64)> = (0..10_000).map(|i| (i, (i * 31 % 997) as f64)).collect();
    g.bench_function("top_n", |b| {
        b.iter(|| black_box(eval::top_n(&groups, 100)));
    });
    g.bench_function("top_n_ref", |b| {
        b.iter(|| black_box(reference::top_n(&groups, 100)));
    });

    g.finish();
}

/// Where the JSON trajectory lands: the repo root by default so the
/// committed `BENCH_operators.json` tracks kernel timings across PRs.
fn json_path() -> String {
    std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_operators.json").into()
    })
}

/// Quick Criterion config: the benches are smoke-level performance
/// tracking, not publication numbers. `EMCA_BENCH_QUICK=1` shrinks the
/// budget further for CI smoke runs.
fn quick() -> Criterion {
    let quick_ci = std::env::var("EMCA_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (meas_ms, samples) = if quick_ci { (60, 3) } else { (900, 10) };
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(if quick_ci {
            20
        } else {
            300
        }))
        .measurement_time(std::time::Duration::from_millis(meas_ms))
        .sample_size(samples)
        .json_out(json_path())
}
criterion_group! {name = benches; config = quick(); targets = bench_headline, bench_supporting}
criterion_main!(benches);
