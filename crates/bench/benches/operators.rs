//! Criterion bench for the columnar operators' real evaluation paths
//! (the compute the simulation memoises).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use volcano_db::exec::eval;
use volcano_db::exec::plan::{AggKind, ArithOp, CmpOp, ScalarPred};
use volcano_db::storage::ColData;

const N: usize = 1 << 18;

fn data_f64() -> ColData {
    ColData::F64(Arc::new((0..N).map(|i| (i % 50) as f64).collect()))
}

fn data_i64() -> ColData {
    ColData::I64(Arc::new((0..N as i64).map(|i| i % 1000).collect()))
}

fn bench_operators(c: &mut Criterion) {
    let mut g = c.benchmark_group("operators");
    g.throughput(Throughput::Elements(N as u64));

    let qty = data_f64();
    g.bench_function("scan_select", |b| {
        let pred = ScalarPred::Cmp(CmpOp::Lt, 24.0);
        b.iter(|| black_box(eval::scan_select(&qty, 0, N, &pred)));
    });

    let cands: Vec<u32> = (0..N as u32).step_by(2).collect();
    g.bench_function("select_and", |b| {
        let pred = ScalarPred::Between(10.0, 30.0);
        b.iter(|| black_box(eval::select_and(&cands, &qty, &pred)));
    });

    g.bench_function("project", |b| {
        b.iter(|| black_box(eval::project(&cands, &qty)));
    });

    let left = data_f64();
    let right = data_f64();
    g.bench_function("bin_op_mul", |b| {
        b.iter(|| black_box(eval::bin_op(&left, &right, ArithOp::Mul, 0, N)));
    });

    g.bench_function("aggr_sum", |b| {
        b.iter(|| black_box(eval::aggr_sum(&left, 0, N)));
    });

    let keys = data_i64();
    g.bench_function("group_agg_sum", |b| {
        b.iter(|| black_box(eval::group_agg(&keys, Some(&left), AggKind::Sum, 0, N)));
    });

    g.bench_function("build_hash", |b| {
        b.iter(|| black_box(eval::build_hash(&keys, 0, N)));
    });

    g.finish();
}

/// Quick Criterion config: the benches are smoke-level performance
/// tracking, not publication numbers.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}
criterion_group! {name = benches; config = quick(); targets = bench_operators}
criterion_main!(benches);
