//! Criterion bench for a complete tiny experiment: a Q6 run through the
//! full stack (machine, kernel, engine, client, mechanism), comparing the
//! OS baseline against the adaptive mechanism.

use criterion::{criterion_group, criterion_main, Criterion};
use emca_harness::{run, Alloc, RunConfig};
use std::hint::black_box;
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData, TpchScale};

fn bench_end_to_end(c: &mut Criterion) {
    let data = TpchData::generate(TpchScale::test_tiny());
    let workload = Workload::Repeat {
        spec: QuerySpec::Q6 { variant: 0 },
        iterations: 2,
    };
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for alloc in [Alloc::OsAll, Alloc::Adaptive] {
        g.bench_function(format!("{alloc:?}"), |b| {
            b.iter(|| {
                let out = run(
                    RunConfig::new(alloc, 2, workload.clone()).with_scale(data.scale),
                    &data,
                );
                black_box(out.results.len())
            });
        });
    }
    g.finish();
}

/// Quick Criterion config: the benches are smoke-level performance
/// tracking, not publication numbers.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}
criterion_group! {name = benches; config = quick(); targets = bench_end_to_end}
criterion_main!(benches);
