//! Fig. 7 — PrT state transitions and core allocation along the
//! execution of TPC-H Q6 (single client, mechanism policy, CPU-load
//! strategy).

use super::{figure_scale, ScenarioResult};
use crate::emit;
use emca_harness::{report, run as run_config, ExperimentSpec, RunConfig};
use emca_metrics::SimDuration;
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "fig07_transitions.csv",
    "time_s,transition,state,u,cpu_load_pct,cores",
)];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let data = TpchData::generate(scale);
    eprintln!("fig07: sf={}", scale.sf);
    let out = run_config(
        spec.apply(
            RunConfig::new(
                spec.mech_alloc(),
                1, // single client: pinned by the figure's definition
                Workload::Repeat {
                    spec: QuerySpec::Q6 { variant: 0 },
                    iterations: spec.iters_or(10),
                },
            )
            .with_scale(scale)
            .with_mech_interval(SimDuration::from_millis(10)),
        ),
        &data,
    );
    let table = report::render_transitions(
        "Fig. 7 — state transitions and allocated cores over Q6",
        &out.transitions,
    );
    emit(spec, &table, "fig07_transitions.csv");
    if let Some(lonc) = elastic_core::lonc::analyze(&out.transitions) {
        println!(
            "LONC: {} cores (stable streak of {} control steps from {})",
            lonc.lonc, lonc.streak, lonc.reached_at
        );
    }
    Ok(())
}
