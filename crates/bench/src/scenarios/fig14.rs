//! Fig. 14 — memory access metrics at 256 concurrent clients running the
//! thetasubselect: (a) per-socket L3 load misses, (b) per-socket memory
//! throughput, (c) HT traffic, across the four allocation policies.

use super::{figure_scale, ScenarioResult};
use crate::emit;
use emca_harness::{run as run_config, ExperimentSpec, RunConfig};
use emca_metrics::table::{fnum, Table};
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "fig14_memory_metrics.csv",
    "policy,l3_misses_S0,l3_misses_S1,l3_misses_S2,l3_misses_S3,\
     mem_tp_S0_GBps,mem_tp_S1_GBps,mem_tp_S2_GBps,mem_tp_S3_GBps,ht_traffic_GBps",
)];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let users = spec.users_or(256);
    let iters = spec.iters_or(4);
    let data = TpchData::generate(scale);
    eprintln!("fig14: sf={} users={users} iters={iters}", scale.sf);

    let mut t = Table::new(
        "Fig. 14 — memory metrics, 256 clients, thetasubselect",
        &[
            "policy",
            "l3_misses_S0",
            "l3_misses_S1",
            "l3_misses_S2",
            "l3_misses_S3",
            "mem_tp_S0_GBps",
            "mem_tp_S1_GBps",
            "mem_tp_S2_GBps",
            "mem_tp_S3_GBps",
            "ht_traffic_GBps",
        ],
    );
    for alloc in spec.alloc_sweep() {
        let out = run_config(
            spec.apply(
                RunConfig::new(
                    alloc,
                    users,
                    Workload::Repeat {
                        spec: QuerySpec::ThetaSubselect { sel_pct: 45 },
                        iterations: iters,
                    },
                )
                .with_scale(scale),
            ),
            &data,
        );
        let l3 = out.l3_misses_per_socket();
        let imc = out.imc_bytes_per_socket();
        let mut row = vec![alloc.label(Flavor::MonetDb)];
        row.extend(l3.iter().map(|m| m.to_string()));
        row.extend(imc.iter().map(|&b| fnum(out.wall.rate_per_sec(b) / 1e9, 2)));
        row.push(fnum(out.ht_rate() / 1e9, 2));
        t.row(row);
    }
    emit(spec, &t, "fig14_memory_metrics.csv");
    Ok(())
}
