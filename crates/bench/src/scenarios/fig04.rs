//! Fig. 4 — TPC-H Q6 with an increasing number of concurrent clients:
//! (a) throughput, (b) minor page faults/s, (c) HT traffic, comparing the
//! hand-coded C version under Dense/Sparse/OS affinity against MonetDB
//! under the OS scheduler.

use super::{figure_scale, ScenarioResult};
use crate::{emit, user_sweep};
use emca_harness::{run as run_config, run_handcoded, Alloc, ExperimentSpec, RunConfig};
use emca_metrics::table::{fnum, Table};
use emca_metrics::SimDuration;
use volcano_db::client::Workload;
use volcano_db::handcoded::CAffinity;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "fig04_q6_users.csv",
    "users,series,throughput_qps,minor_faults_per_s,ht_traffic_MBps",
)];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let iters = spec.iters_or(3);
    let data = TpchData::generate(scale);
    eprintln!("fig04: sf={} iters={iters}", scale.sf);

    let mut t = Table::new(
        "Fig. 4 — Q6 with increasing concurrent clients",
        &[
            "users",
            "series",
            "throughput_qps",
            "minor_faults_per_s",
            "ht_traffic_MBps",
        ],
    );
    for users in user_sweep(spec.users_or(256)) {
        for (name, affinity) in [
            ("Dense/C", CAffinity::Dense),
            ("Sparse/C", CAffinity::Sparse),
            ("OS/C", CAffinity::Os),
        ] {
            let out = run_handcoded(
                &data,
                affinity,
                users,
                16,
                iters,
                SimDuration::from_secs(3600),
            );
            t.row(vec![
                users.to_string(),
                name.to_string(),
                fnum(out.throughput_qps(), 3),
                fnum(out.fault_rate(), 0),
                fnum(out.ht_rate() / 1e6, 1),
            ]);
        }
        let out = run_config(
            spec.apply(
                RunConfig::new(
                    Alloc::OsAll,
                    users,
                    Workload::Repeat {
                        spec: QuerySpec::Q6 { variant: 0 },
                        iterations: iters,
                    },
                )
                .with_scale(scale),
            ),
            &data,
        );
        t.row(vec![
            users.to_string(),
            "OS/MonetDB".to_string(),
            fnum(out.throughput_qps(), 3),
            fnum(out.fault_rate(), 0),
            fnum(out.ht_rate() / 1e6, 1),
        ]);
    }
    emit(spec, &t, "fig04_q6_users.csv");
    Ok(())
}
