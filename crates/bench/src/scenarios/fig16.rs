//! Fig. 16 — lifespan and core migration of the Q6 threads under the
//! four policies (single client), the four-panel version of Fig. 5.

use super::{figure_scale, ScenarioResult};
use crate::emit;
use emca_harness::{report, run as run_config, ExperimentSpec, RunConfig};
use emca_metrics::table::Table;
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs (the default policy sweep's file names; a
/// `--policy` override renames the mechanism panel accordingly).
pub const SCHEMAS: &[(&str, &str)] = &[
    (
        "fig16_migration_adaptive.csv",
        "thread,name_hint,core,node,start_ms,end_ms",
    ),
    (
        "fig16_migration_dense.csv",
        "thread,name_hint,core,node,start_ms,end_ms",
    ),
    (
        "fig16_migration_os_monetdb.csv",
        "thread,name_hint,core,node,start_ms,end_ms",
    ),
    (
        "fig16_migration_sparse.csv",
        "thread,name_hint,core,node,start_ms,end_ms",
    ),
    ("fig16_summary.csv", "policy,threads,migrations,spans"),
];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let data = TpchData::generate(scale);
    eprintln!("fig16: sf={}", scale.sf);
    let topo = numa_sim::Topology::opteron_4x4();

    let mut summary = Table::new(
        "Fig. 16 — thread migration by policy (single-client Q6)",
        &["policy", "threads", "migrations", "spans"],
    );
    for alloc in spec.alloc_sweep() {
        let out = run_config(
            spec.apply(
                RunConfig::new(
                    alloc,
                    1, // single client: pinned by the figure's definition
                    Workload::Repeat {
                        spec: QuerySpec::Q6 { variant: 0 },
                        iterations: 1,
                    },
                )
                .with_scale(scale)
                .with_trace(),
            ),
            &data,
        );
        let label = alloc.label(Flavor::MonetDb);
        let trace = out.trace.as_ref().expect("tracing enabled");
        let map =
            report::render_migration_map(&format!("Fig. 16 ({label}) migration map"), trace, &topo);
        let file = format!(
            "fig16_migration_{}.csv",
            label.replace('/', "_").to_lowercase()
        );
        emit(spec, &map, &file);
        let (threads, migrations) = report::migration_summary(trace);
        summary.row(vec![
            label,
            threads.to_string(),
            migrations.to_string(),
            trace.spans().len().to_string(),
        ]);
    }
    emit(spec, &summary, "fig16_summary.csv");
    Ok(())
}
