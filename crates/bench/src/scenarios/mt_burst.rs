//! `mt_burst` — an antagonist burst arrives mid-run against a steady
//! tenant under *priority* arbitration; how fast are the cores
//! reclaimed?
//!
//! The steady tenant (priority 2) runs a long closed loop; the burst
//! tenant (priority 1) arrives after [`BURST_DELAY_MS`] of simulated
//! time with a short, wide workload and then drains away. The CSV
//! reports per-tenant metrics for the *pre*, *burst* and *post* phases,
//! plus the reclaim latency: how long after the burst's last completion
//! the antagonist's allocation is back at the one-core floor. With
//! `check=1` the scenario enforces that reclaim completes within
//! [`RECLAIM_BOUND_MS`] of simulated time.

use super::mt::{mt_scale, olap_workload, steady_workload};
use super::ScenarioResult;
use crate::emit;
use elastic_core::ArbiterMode;
use emca_harness::{run_tenants, ExperimentSpec, MultiTenantConfig, TenantOutput, TenantRunConfig};
use emca_metrics::table::{fnum, Table};
use emca_metrics::{SimDuration, SimTime};
use volcano_db::tpch::TpchData;

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "mt_burst.csv",
    "tenant,phase,qps,mean_ms,cores_mean,reclaim_ms",
)];

/// Simulated delay before the burst tenant's clients arrive.
pub const BURST_DELAY_MS: u64 = 150;

/// `check=1` claim: the antagonist's allocation must be back at the
/// one-core floor within this much simulated time of its last
/// completion. The mechanism's release path is its control interval ×
/// (cores − 1) plus hysteresis; at the default scale the measured
/// reclaim is well under a second.
pub const RECLAIM_BOUND_MS: f64 = 2000.0;

/// First time at or after `after` where the tenant's sampled allocation
/// is back at the one-core floor.
fn reclaim_at(t: &TenantOutput, after: SimTime) -> Option<SimTime> {
    t.cores_series
        .samples()
        .iter()
        .find(|(at, cores)| *at >= after && *cores <= 1.5)
        .map(|&(at, _)| at)
}

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = mt_scale(spec);
    let data = TpchData::generate(scale);
    let iters = spec.iters_or(12);
    eprintln!("mt_burst: sf={} burst_delay={BURST_DELAY_MS}ms", scale.sf);

    // The steady tenant is a modest-load priority tenant: few enough
    // clients that it does not saturate the machine (the burst must have
    // idle cores to soak), and a loop long enough to outlive the burst
    // by a wide margin — the reclaim latency is measured in the
    // post-burst window, so an empty post phase (steady finishing
    // first) makes it unmeasurable.
    let mut cfg = MultiTenantConfig::new(
        ArbiterMode::Priority,
        vec![
            TenantRunConfig::new(
                "steady",
                steady_workload(iters * 10),
                spec.users_or(3).min(4),
            )
            .with_weight(2),
            TenantRunConfig::new(
                "burst",
                olap_workload(iters.div_ceil(4), 23),
                spec.users_or(24),
            )
            .with_weight(1)
            .with_start_after(SimDuration::from_millis(BURST_DELAY_MS)),
        ],
    )
    .with_scale(scale)
    // Keep the simulation ticking past the last completion so the
    // release path is observable even when the burst finishes last.
    .with_drain(SimDuration::from_millis((RECLAIM_BOUND_MS * 1.5) as u64));
    if let Some(f) = spec.flavor {
        cfg = cfg.with_flavor(f);
    }
    spec.apply_tenants(&mut cfg).map_err(|e| e.to_string())?;
    let out = run_tenants(cfg, &data);

    let steady = out.tenant("steady").expect("steady tenant present");
    let burst = out.tenant("burst").expect("burst tenant present");
    let burst_start = burst.started_at;
    let burst_end = burst.finished_at;
    let reclaim_ms = reclaim_at(burst, burst_end)
        .map(|at| at.since(burst_end).as_millis_f64())
        .unwrap_or(f64::INFINITY);

    let mut table = Table::new(
        "mt_burst — reclaim latency after an antagonist burst",
        &[
            "tenant",
            "phase",
            "qps",
            "mean_ms",
            "cores_mean",
            "reclaim_ms",
        ],
    );
    let phases: [(&str, SimTime, SimTime); 3] = [
        ("pre", steady.started_at, burst_start),
        ("burst", burst_start, burst_end),
        ("post", burst_end, steady.finished_at.max(burst_end)),
    ];
    for t in &out.tenants {
        for (phase, from, to) in phases {
            let (from, to) = (from.max(t.started_at), to);
            let reclaim = if t.config.name == "burst" && phase == "post" {
                fnum(reclaim_ms, 1)
            } else {
                "0".to_string()
            };
            table.row(vec![
                t.config.name.clone(),
                phase.to_string(),
                fnum(t.qps_between(from, to), 2),
                fnum(t.mean_response_between(from, to).as_millis_f64(), 2),
                fnum(t.cores_between(from, to).unwrap_or(0.0), 2),
                reclaim,
            ]);
        }
    }
    emit(spec, &table, "mt_burst.csv");
    eprintln!(
        "mt_burst: reclaim latency {reclaim_ms:.1} ms after burst end \
         (steady qps pre {:.2} / burst {:.2} / post {:.2})",
        steady.qps_between(steady.started_at, burst_start),
        steady.qps_between(burst_start, burst_end),
        steady.qps_between(burst_end, steady.finished_at),
    );

    if spec.check && reclaim_ms > RECLAIM_BOUND_MS {
        return Err(format!(
            "burst cores not reclaimed within {RECLAIM_BOUND_MS} ms \
             (measured {reclaim_ms:.1} ms)"
        )
        .into());
    }
    Ok(())
}
