//! §V overhead table — the token-flow cost of the mechanism per
//! allocation mode. The paper measures the real-time cost of flowing
//! tokens through the 5×8 net (dense 0.017 s, sparse 0.021 s, adaptive
//! 0.031 s) and a CPU load below 1 %. We report (a) the real time of one
//! PrT rule-condition-action step of *our* implementation (measured
//! here; precise distributions in `cargo bench petrinet_step`), and
//! (b) the actuation latencies the simulation charges, which are set
//! from the paper's measurements.
//!
//! A second table measures the multi-tenant arbitration cost per
//! control tick at serverless tenant counts: the indexed
//! [`TenantArbiter`] against the retained O(tenants × cores)
//! [`reference`](elastic_core::tenant::reference) scan, churning 256
//! tenants through a 64-core arbiter at several resident-set sizes.
//! One "tick" is the arbitration work one tenant's control step costs:
//! a demand note, a claim attempt and a yield check.

use super::ScenarioResult;
use crate::emit;
use elastic_core::tenant::reference::ReferenceArbiter;
use elastic_core::{ArbiterMode, TenantArbiter};
use emca_harness::ExperimentSpec;
use emca_metrics::table::{fnum, Table};
use numa_sim::CoreId;
use prt_petrinet::{ElasticNet, Thresholds};
use std::time::Instant;

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[
    (
        "tab_overhead.csv",
        "mode,paper_token_flow_s,simulated_actuation_s,our_prt_step_us",
    ),
    (
        "tab_arbiter.csv",
        "resident,churned,ticks,indexed_ns_per_tick,reference_ns_per_tick,speedup",
    ),
];

/// Cores of the benchmarked arbiter (the mask maximum).
const ARB_CORES: u32 = 64;
/// Tenants churned through the arbiter per measurement.
const ARB_CHURNED: u32 = 256;
/// Control rounds per resident set between churn steps.
const ARB_ROUNDS: usize = 8;

/// Drives one arbiter implementation through an identical churn +
/// control-tick schedule, returning (ticks, elapsed ns). Works for both
/// implementations via the macro below — their mutating surfaces are
/// name-identical but share no trait.
macro_rules! drive_arbiter {
    ($arb:expr, $resident:expr) => {{
        let mut arb = $arb;
        let resident: u32 = $resident;
        let mut active: std::collections::VecDeque<elastic_core::TenantId> =
            std::collections::VecDeque::new();
        let mut registered = 0u32;
        let mut ticks = 0u64;
        let start = Instant::now();
        while registered < ARB_CHURNED || !active.is_empty() {
            // Admit up to the resident cap.
            while registered < ARB_CHURNED && (active.len() as u32) < resident {
                let t = arb.register(format!("t{registered}"), 1 + registered % 4, None);
                // Seed with a free core when one exists; a coreless
                // tenant is legal and claims via try_claim below.
                let free = (0..ARB_CORES as u16)
                    .map(CoreId)
                    .find(|&c| !arb.foreign_mask(t).contains(c));
                if let Some(c) = free {
                    arb.claim_initial(t, c);
                }
                active.push_back(t);
                registered += 1;
            }
            // Control rounds: each resident tenant notes demand, tries
            // a claim, and answers a yield check — one arbitration tick.
            for _ in 0..ARB_ROUNDS {
                for &t in &active {
                    arb.note(t, true);
                    let candidate = (0..ARB_CORES as u16)
                        .map(CoreId)
                        .find(|&c| !arb.owned(t).contains(c) && !arb.foreign_mask(t).contains(c));
                    if let Some(c) = candidate {
                        if !arb.try_claim(t, c) {
                            arb.denials += 1;
                        }
                    }
                    if arb.must_yield(t) {
                        if let Some(v) = arb.owned(t).iter().last() {
                            arb.release(t, v);
                            arb.yields += 1;
                        }
                    }
                    ticks += 1;
                }
            }
            // Depart the oldest resident, freeing its slot and cores.
            if let Some(t) = active.pop_front() {
                arb.deregister(t);
            }
        }
        (ticks, start.elapsed().as_nanos() as u64)
    }};
}

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let mut t = Table::new(
        "Overhead — PrT step cost per allocation mode",
        &[
            "mode",
            "paper_token_flow_s",
            "simulated_actuation_s",
            "our_prt_step_us",
        ],
    );
    // Measure our real PrT step time over a load pattern that exercises
    // all sub-nets.
    let mut net = ElasticNet::new(Thresholds::cpu_load_default(), 16, 1);
    let inputs = [99i64, 99, 40, 8, 8, 75, 5, 50];
    let reps = 10_000;
    let start = Instant::now();
    for i in 0..reps {
        let _ = net.step(inputs[i % inputs.len()]);
    }
    let per_step_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

    for (mode, paper_s, sim_s) in [
        ("dense", 0.017, 0.017),
        ("sparse", 0.021, 0.021),
        ("adaptive", 0.031, 0.031),
    ] {
        t.row(vec![
            mode.to_string(),
            fnum(paper_s, 3),
            fnum(sim_s, 3),
            fnum(per_step_us, 2),
        ]);
    }
    emit(spec, &t, "tab_overhead.csv");
    println!(
        "paper: <1% CPU for state computation; our PrT step costs {per_step_us:.2} µs \
         of host time per control interval (50 ms), i.e. {:.4}% of one core.",
        per_step_us / 50_000.0 * 100.0
    );

    let mut t2 = Table::new(
        "tab_arbiter — indexed vs reference arbitration cost per tick",
        &[
            "resident",
            "churned",
            "ticks",
            "indexed_ns_per_tick",
            "reference_ns_per_tick",
            "speedup",
        ],
    );
    for resident in [8u32, 16, 64] {
        let (ticks_i, ns_i) = drive_arbiter!(
            TenantArbiter::new(ArbiterMode::FairShare, ARB_CORES),
            resident
        );
        let (ticks_r, ns_r) = drive_arbiter!(
            ReferenceArbiter::new(ArbiterMode::FairShare, ARB_CORES),
            resident
        );
        assert_eq!(
            ticks_i, ticks_r,
            "both implementations must execute the same churn schedule"
        );
        let per_i = ns_i as f64 / ticks_i.max(1) as f64;
        let per_r = ns_r as f64 / ticks_r.max(1) as f64;
        t2.row(vec![
            resident.to_string(),
            ARB_CHURNED.to_string(),
            ticks_i.to_string(),
            fnum(per_i, 1),
            fnum(per_r, 1),
            fnum(per_r / per_i.max(1e-9), 2),
        ]);
        println!(
            "arbiter resident={resident}: indexed {per_i:.0} ns/tick, \
             reference {per_r:.0} ns/tick ({:.1}x)",
            per_r / per_i.max(1e-9)
        );
    }
    emit(spec, &t2, "tab_arbiter.csv");
    Ok(())
}
