//! §V overhead table — the token-flow cost of the mechanism per
//! allocation mode. The paper measures the real-time cost of flowing
//! tokens through the 5×8 net (dense 0.017 s, sparse 0.021 s, adaptive
//! 0.031 s) and a CPU load below 1 %. We report (a) the real time of one
//! PrT rule-condition-action step of *our* implementation (measured
//! here; precise distributions in `cargo bench petrinet_step`), and
//! (b) the actuation latencies the simulation charges, which are set
//! from the paper's measurements.

use super::ScenarioResult;
use crate::emit;
use emca_harness::ExperimentSpec;
use emca_metrics::table::{fnum, Table};
use prt_petrinet::{ElasticNet, Thresholds};
use std::time::Instant;

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "tab_overhead.csv",
    "mode,paper_token_flow_s,simulated_actuation_s,our_prt_step_us",
)];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let mut t = Table::new(
        "Overhead — PrT step cost per allocation mode",
        &[
            "mode",
            "paper_token_flow_s",
            "simulated_actuation_s",
            "our_prt_step_us",
        ],
    );
    // Measure our real PrT step time over a load pattern that exercises
    // all sub-nets.
    let mut net = ElasticNet::new(Thresholds::cpu_load_default(), 16, 1);
    let inputs = [99i64, 99, 40, 8, 8, 75, 5, 50];
    let reps = 10_000;
    let start = Instant::now();
    for i in 0..reps {
        let _ = net.step(inputs[i % inputs.len()]);
    }
    let per_step_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

    for (mode, paper_s, sim_s) in [
        ("dense", 0.017, 0.017),
        ("sparse", 0.021, 0.021),
        ("adaptive", 0.031, 0.031),
    ] {
        t.row(vec![
            mode.to_string(),
            fnum(paper_s, 3),
            fnum(sim_s, 3),
            fnum(per_step_us, 2),
        ]);
    }
    emit(spec, &t, "tab_overhead.csv");
    println!(
        "paper: <1% CPU for state computation; our PrT step costs {per_step_us:.2} µs \
         of host time per control interval (50 ms), i.e. {:.4}% of one core.",
        per_step_us / 50_000.0 * 100.0
    );
    Ok(())
}
