//! Fig. 20 — per-query energy estimates (CPU + HT) for the OS scheduler
//! vs the mechanism policy, on the mixed-phases workload with MonetDB.

use super::{figure_scale, ScenarioResult};
use crate::emit;
use emca_harness::{report, run as run_config, Alloc, ExperimentSpec, RunConfig};
use emca_metrics::stats;
use emca_metrics::table::{fnum, Table};
use numa_sim::EnergyModel;
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "fig20_energy.csv",
    "query,os_cpu_J,os_ht_J,adaptive_cpu_J,adaptive_ht_J,cpu_saving_pct,ht_saving_pct",
)];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let users = spec.users_or(64);
    let iters = spec.iters_or(6);
    let data = TpchData::generate(scale);
    eprintln!("fig20: sf={} users={users} iters={iters}", scale.sf);
    let specs: Vec<QuerySpec> = (1..=22)
        .flat_map(|n| {
            (0..4).map(move |v| QuerySpec::Tpch {
                number: n,
                variant: v,
            })
        })
        .collect();
    let workload = Workload::Mixed {
        specs,
        iterations: iters,
        seed: 7,
    };
    let model = EnergyModel::opteron_8387();

    let os = run_config(
        spec.apply(RunConfig::new(Alloc::OsAll, users, workload.clone()).with_scale(scale)),
        &data,
    );
    let adaptive = run_config(
        spec.apply(RunConfig::new(spec.mech_alloc(), users, workload).with_scale(scale)),
        &data,
    );
    let e_os: Vec<(u32, numa_sim::EnergyBreakdown)> = report::energy_by_tag(&os.results, &model, 4);
    let e_ad: std::collections::BTreeMap<u32, numa_sim::EnergyBreakdown> =
        report::energy_by_tag(&adaptive.results, &model, 4)
            .into_iter()
            .collect();

    let mut t = Table::new(
        "Fig. 20 — per-query energy (J): OS scheduler vs adaptive",
        &[
            "query",
            "os_cpu_J",
            "os_ht_J",
            "adaptive_cpu_J",
            "adaptive_ht_J",
            "cpu_saving_pct",
            "ht_saving_pct",
        ],
    );
    let mut cpu_ratios = Vec::new();
    let mut ht_ratios = Vec::new();
    let mut total_os = 0.0;
    let mut total_ad = 0.0;
    for (q, eo) in &e_os {
        let Some(ea) = e_ad.get(q) else { continue };
        total_os += eo.total();
        total_ad += ea.total();
        let cpu_s = stats::saving_pct(eo.cpu_j, ea.cpu_j).unwrap_or(0.0);
        let ht_s = stats::saving_pct(eo.ht_j, ea.ht_j).unwrap_or(100.0);
        if ea.cpu_j > 0.0 && eo.cpu_j > 0.0 {
            cpu_ratios.push(ea.cpu_j / eo.cpu_j);
        }
        if ea.ht_j > 0.0 && eo.ht_j > 0.0 {
            ht_ratios.push(ea.ht_j / eo.ht_j);
        }
        t.row(vec![
            format!("Q{q}"),
            fnum(eo.cpu_j, 1),
            fnum(eo.ht_j, 1),
            fnum(ea.cpu_j, 1),
            fnum(ea.ht_j, 1),
            fnum(cpu_s, 1),
            fnum(ht_s, 1),
        ]);
    }
    emit(spec, &t, "fig20_energy.csv");
    let cpu_geo = stats::geomean(&cpu_ratios).map(|g| (1.0 - g) * 100.0);
    let ht_geo = stats::geomean(&ht_ratios).map(|g| (1.0 - g) * 100.0);
    println!(
        "geometric-mean savings: CPU {}%, HT {}%; total system energy saving {:.2}% (paper: 22.93% / 63.20% / 26.05%)",
        cpu_geo.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
        ht_geo.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
        stats::saving_pct(total_os, total_ad).unwrap_or(0.0),
    );
    Ok(())
}
