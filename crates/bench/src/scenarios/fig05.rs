//! Fig. 5 — lifespan and core migration of the threads spawned for a
//! single-client Q6 under the plain OS scheduler with all 16 cores.

use super::{figure_scale, ScenarioResult};
use crate::emit;
use emca_harness::{report, run as run_config, Alloc, ExperimentSpec, RunConfig};
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "fig05_migration_os.csv",
    "thread,name_hint,core,node,start_ms,end_ms",
)];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let data = TpchData::generate(scale);
    eprintln!("fig05: sf={}", scale.sf);
    let out = run_config(
        spec.apply(
            RunConfig::new(
                Alloc::OsAll,
                1, // single client: pinned by the figure's definition
                Workload::Repeat {
                    spec: QuerySpec::Q6 { variant: 0 },
                    iterations: 1,
                },
            )
            .with_scale(scale)
            .with_trace(),
        ),
        &data,
    );
    let trace = out.trace.as_ref().expect("tracing enabled");
    let topo = numa_sim::Topology::opteron_4x4();
    let table =
        report::render_migration_map("Fig. 5 — OS/MonetDB thread migration map", trace, &topo);
    let (threads, migrations) = report::migration_summary(trace);
    emit(spec, &table, "fig05_migration_os.csv");
    println!("threads traced: {threads}, total core migrations: {migrations}");
    Ok(())
}
