//! `serve_overload` — one past-saturation serving point, in detail.
//!
//! Drives the three front-door configurations at a single offered load
//! (default 1.5× the measured capacity C, or the spec's pinned
//! `arrival=`) and reports the full outcome split — completed, shed at
//! the gate, shed on queue timeout, unfinished — next to the latency
//! percentiles and goodput. The quick serving smoke test: one look
//! shows whether shedding is doing its job (bounded p99, sheds counted)
//! while the unprotected baselines drown.
//!
//! With `check=1`, asserts the admitted series kept p99 finite.

use super::serve::{
    cell, horizon_of, probe, row, run_point, schedule_of, series, sla_of, ROW_FIELDS, ROW_HEADER,
    SERVE_DEFAULT_SF,
};
use super::ScenarioResult;
use emca_harness::{ExperimentSpec, RequestOutcome};
use emca_metrics::table::Table;
use volcano_db::tpch::TpchData;

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[("serve_overload.csv", ROW_HEADER)];

/// Default offered load, as a multiple of the probed capacity.
pub const DEFAULT_MULT: f64 = 1.5;

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let data = TpchData::generate(spec.scale(SERVE_DEFAULT_SF));
    let p = probe(spec, &data);
    let sla = sla_of(spec, &p);
    let horizon = horizon_of(spec);
    let schedule =
        schedule_of(spec, DEFAULT_MULT * p.capacity_qps, horizon).map_err(|e| e.to_string())?;
    let mult_label = match spec.arrival {
        Some(_) => "pinned".to_string(),
        None => format!("{DEFAULT_MULT}"),
    };
    eprintln!(
        "[serve] C={:.1} req/s, offering {:.1} req/s over {:.2} s, sla {:.1} ms",
        p.capacity_qps,
        schedule.offered_qps(),
        horizon.as_secs_f64(),
        sla.as_millis_f64()
    );

    // emca-lint: allow(schema-sync) — header is serve::ROW_FIELDS, declared as serve::ROW_HEADER; serve.rs's row_header_matches_fields test pins their agreement
    let mut table = Table::new("serve_overload — one past-saturation point", ROW_FIELDS);
    let mut admitted_p99 = f64::NAN;
    for s in series(spec) {
        let out = run_point(spec, &data, &s, schedule.clone(), sla);
        eprintln!(
            "[serve] {}: {} completed, {} shed (gate {}, timeout {}), {} unfinished, \
             goodput {:.1} qps, p99 {}, queue peak {:.0}",
            s.name,
            out.count(RequestOutcome::Completed),
            out.count(RequestOutcome::ShedGate) + out.count(RequestOutcome::ShedTimeout),
            out.count(RequestOutcome::ShedGate),
            out.count(RequestOutcome::ShedTimeout),
            out.count(RequestOutcome::Unfinished),
            out.goodput_qps(),
            cell(out.latency_percentile_ms(0.99)),
            out.queue_series.max().unwrap_or(0.0),
        );
        if s.name == "admitted" {
            admitted_p99 = out.latency_percentile_ms(0.99);
        }
        table.row(row(&s, &mult_label, &out));
    }
    crate::emit(spec, &table, "serve_overload.csv");

    if spec.check && !admitted_p99.is_finite() {
        return Err(format!(
            "admission control must keep p99 bounded past saturation, got {}",
            cell(admitted_p99)
        )
        .into());
    }
    Ok(())
}
