//! Shared plumbing of the multi-tenant (`mt_*`) scenarios: default
//! scale, workload builders, and per-tenant row emission.

use emca_harness::{ExperimentSpec, TenantOutput};
use emca_metrics::table::fnum;
use emca_metrics::SimTime;
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchScale};

/// Default TPC-H scale factor of the `mt_*` scenarios. Smaller than the
/// figure default (0.25): every tenant loads its *own* copy of the data
/// and runs its own worker pool, so a two-tenant run costs roughly two
/// single-tenant runs.
pub const MT_DEFAULT_SF: f64 = 0.1;

/// The spec's scale at the multi-tenant default factor.
pub fn mt_scale(spec: &ExperimentSpec) -> TpchScale {
    spec.scale(MT_DEFAULT_SF)
}

/// A steady closed-loop workload: the same Q6 scan over and over — the
/// victim tenant of the interference scenarios.
pub fn steady_workload(iters: u32) -> Workload {
    Workload::Repeat {
        spec: QuerySpec::Q6 { variant: 0 },
        iterations: iters,
    }
}

/// An OLAP antagonist: a random mix of the heavier TPC-H queries
/// (joins and aggregations, not just scans), deterministic per seed.
pub fn olap_workload(iters: u32, seed: u64) -> Workload {
    let specs: Vec<QuerySpec> = [1u8, 3, 5, 6, 9, 18]
        .into_iter()
        .flat_map(|n| {
            (0..2).map(move |v| QuerySpec::Tpch {
                number: n,
                variant: v,
            })
        })
        .collect();
    Workload::Mixed {
        specs,
        iterations: iters,
        seed,
    }
}

/// The window where both tenants were active: latest arrival to
/// earliest finish. May be empty (`from >= to`) when one tenant
/// finished before the other arrived — phase metrics then read 0.
pub fn overlap(a: &TenantOutput, b: &TenantOutput) -> (SimTime, SimTime) {
    let from = a.started_at.max(b.started_at);
    let to = a.finished_at.min(b.finished_at);
    (from, to)
}

/// Standard per-tenant row of the `mt_*` CSVs, over `[from, to]`.
pub fn tenant_row(run: &str, t: &TenantOutput, from: SimTime, to: SimTime) -> Vec<String> {
    vec![
        run.to_string(),
        t.config.name.clone(),
        t.config.policy.name().to_string(),
        t.config.clients.to_string(),
        fnum(t.qps_between(from, to), 2),
        fnum(t.mean_response_between(from, to).as_millis_f64(), 2),
        fnum(
            t.response_percentile_between(0.95, from, to)
                .as_millis_f64(),
            2,
        ),
        fnum(t.cores_between(from, to).unwrap_or(0.0), 2),
        fnum(t.cores_max(), 0),
        t.sla_violations.to_string(),
        fnum(t.qps_cov_between(from, to).unwrap_or(0.0), 3),
    ]
}

/// Header matching [`tenant_row`].
pub const TENANT_ROW_HEADER: &str =
    "run,tenant,policy,users,qps,mean_ms,p95_ms,cores_mean,cores_max,sla_violations,qps_cov";
