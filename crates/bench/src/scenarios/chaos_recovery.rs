//! `chaos_recovery` — kill workers mid-run and measure the healing.
//!
//! Two closed-loop runs on the selected backend: a fault-free
//! *baseline*, then a *faulted* run with a kill/stall plan injected
//! mid-flight (by default two worker kills and one stall, timed off
//! the baseline's wall clock so the plan lands mid-run at any scale; a
//! pinned `faults=` spec overrides it). One CSV row per phase reports
//! the accounting — expected, completed, surfaced errors, lost — next
//! to the engine's recovery counters and a before/after goodput split
//! of the faulted run.
//!
//! The claims under `check=1` (the chaos gate the CI fidelity job
//! runs on both backends):
//!
//! - **zero lost queries** — every query either completes or surfaces
//!   a typed error; kills and stalls alone surface none, because the
//!   self-healing pool requeues drained work (threads) or re-queues
//!   the parked cursor (sim);
//! - **recoveries counted, MTTR finite** — the injected faults fire
//!   and each one is repaired;
//! - **goodput recovers** — after the last repair the pool reaches
//!   ≥ 90% of its pre-fault completion rate again (peak sliding
//!   window; judged only when enough work remains past the recovery
//!   point to measure it);
//! - **sim replay** — on the sim backend the faulted run is repeated
//!   and must match byte-for-byte, recovery timing included.

use super::{ScenarioResult, DEFAULT_SF};
use emca_harness::{run as run_config, ExperimentSpec, RunConfig, RunOutput};
use emca_metrics::table::Table;
use emca_metrics::SimDuration;
use volcano_db::client::Workload;
use volcano_db::exec::{FaultPlan, WorkerFaultKind};
use volcano_db::tpch::{QuerySpec, TpchData};

/// Column list of the chaos CSV.
pub const ROW_FIELDS: &[&str] = &[
    "phase",
    "backend",
    "workers_killed",
    "expected",
    "completed",
    "errors",
    "lost",
    "recoveries",
    "mttr_ms",
    "prefault_qps",
    "recovered_qps",
    "recovery_ratio",
    "wall_s",
];

/// [`ROW_FIELDS`] as the declared CSV header line.
pub const ROW_HEADER: &str = "phase,backend,workers_killed,expected,completed,errors,lost,\
recoveries,mttr_ms,prefault_qps,recovered_qps,recovery_ratio,wall_s";

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[("chaos_recovery.csv", ROW_HEADER)];

/// Default clients when the spec pins no `users`.
pub const DEFAULT_USERS: usize = 8;

/// Default per-client iterations when the spec pins no `iters`. Long
/// enough at the default scale that the closed loop still has work
/// after the last repair (stall end + watchdog MTTR ≈ 1.1 s into the
/// run), so the recovery-ratio gate has a window to judge.
pub const DEFAULT_ITERS: u32 = 30;

/// The default chaos plan, timed off the baseline wall `w`: two kills
/// land at 25% and 50% of the healthy run, with a stall in between
/// long enough to trip the threads watchdog.
fn default_plan(w: SimDuration) -> FaultPlan {
    FaultPlan::default()
        .with_kill(0, w.mul_f64(0.25))
        .with_stall(2, w.mul_f64(0.40), SimDuration::from_millis(600))
        .with_kill(1, w.mul_f64(0.50))
}

/// Goodput split of the faulted run: the average completion rate
/// before the first scheduled fault vs the peak rate the pool reaches
/// again after the last repair (`t_rec` = last fault end + measured
/// MTTR). The post side is a sliding-window *maximum*, not a tail
/// average: a closed-loop run drains, clients finish at different
/// times after the recovery point, and a plain tail average would
/// conflate "pool never healed" with "work ran out". A healed pool
/// hits its pre-fault rate in some post-recovery window; a pool stuck
/// below strength cannot. Returns `(pre_qps, post_qps, post_n)` where
/// `post_n` is how many completions landed after `t_rec` — the gate
/// only judges the ratio when there is enough post-recovery signal.
fn qps_split(out: &RunOutput, first_fault: SimDuration, t_rec: SimDuration) -> (f64, f64, usize) {
    let wall = out.wall.as_secs_f64();
    let t1 = first_fault.as_secs_f64().min(wall);
    let rec = t_rec.as_secs_f64();
    let mut pre = 0usize;
    let mut post: Vec<f64> = Vec::new();
    for r in &out.results {
        let t = r.finished.since(emca_metrics::SimTime::ZERO).as_secs_f64();
        if t < t1 {
            pre += 1;
        }
        if t >= rec {
            post.push(t);
        }
    }
    let pre_qps = if t1 > 0.0 { pre as f64 / t1 } else { 0.0 };
    post.sort_by(f64::total_cmp);
    let mut post_qps = 0.0_f64;
    if let (Some(first), Some(last)) = (post.first(), post.last()) {
        // Window as wide as the pre-fault one, clamped to the span the
        // post-recovery completions actually cover.
        let w = t1.min((last - first).max(1e-9)).max(1e-9);
        let mut lo = 0usize;
        for hi in 0..post.len() {
            while post[hi] - post[lo] > w {
                lo += 1;
            }
            post_qps = post_qps.max((hi - lo + 1) as f64 / w);
        }
    }
    (pre_qps, post_qps, post.len())
}

/// Replay digest of a run: per-query identity plus the clock, enough
/// to catch any divergence in scheduling or recovery timing.
fn digest(out: &RunOutput) -> Vec<(String, u64, usize)> {
    let mut d: Vec<(String, u64, usize)> = out
        .results
        .iter()
        .map(|r| {
            (
                r.label.clone(),
                r.finished.since(emca_metrics::SimTime::ZERO).as_nanos(),
                r.result.len(),
            )
        })
        .collect();
    d.sort();
    d
}

struct Phase {
    name: &'static str,
    out: RunOutput,
    killed: usize,
    first_fault: SimDuration,
    last_fault: SimDuration,
}

fn base_config(spec: &ExperimentSpec, data: &TpchData) -> RunConfig {
    let mut cfg = spec.apply(
        RunConfig::new(
            spec.mech_alloc(),
            spec.users_or(DEFAULT_USERS),
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: spec.iters_or(DEFAULT_ITERS),
            },
        )
        .with_scale(data.scale),
    );
    if let Some(f) = spec.flavor {
        cfg = cfg.with_flavor(f);
    }
    // The baseline is the healthy control: the spec's fault plan only
    // applies to the faulted phase.
    cfg.faults = None;
    cfg
}

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let data = TpchData::generate(spec.scale(DEFAULT_SF));
    let expected = spec.users_or(DEFAULT_USERS) * spec.iters_or(DEFAULT_ITERS) as usize;

    let baseline = run_config(base_config(spec, &data), &data);
    let plan = match &spec.faults {
        Some(p) => p.clone(),
        None => default_plan(baseline.wall),
    };
    let killed = plan
        .worker_faults
        .iter()
        .filter(|f| matches!(f.kind, WorkerFaultKind::Kill))
        .count();
    let first_fault = plan
        .worker_faults
        .iter()
        .map(|f| f.at)
        .min()
        .unwrap_or(SimDuration::ZERO);
    // When the last scheduled fault is *over*: a stall occupies its
    // worker until `at + dur`, a kill is instantaneous at `at`.
    let last_fault = plan
        .worker_faults
        .iter()
        .map(|f| match f.kind {
            WorkerFaultKind::Kill => f.at,
            WorkerFaultKind::Stall(d) => f.at + d,
        })
        .max()
        .unwrap_or(SimDuration::ZERO);
    eprintln!(
        "[chaos] baseline wall {:.3}s; injecting `{plan}` ({killed} kills)",
        baseline.wall.as_secs_f64()
    );

    let faulted = run_config(base_config(spec, &data).with_faults(plan.clone()), &data);
    eprintln!(
        "[chaos] faulted wall {:.3}s: {}/{} completed, {} errors, {} recoveries, mttr {:.1} ms",
        faulted.wall.as_secs_f64(),
        faulted.results.len(),
        expected,
        faulted.errors.len(),
        faulted.engine.engine_recoveries,
        faulted.engine.mttr_ms()
    );

    let phases = [
        Phase {
            name: "baseline",
            out: baseline,
            killed: 0,
            first_fault: SimDuration::ZERO,
            last_fault: SimDuration::ZERO,
        },
        Phase {
            name: "faulted",
            out: faulted,
            killed,
            first_fault,
            last_fault,
        },
    ];

    let mut table = Table::new(
        "chaos_recovery — self-healing under injected faults",
        ROW_FIELDS,
    );
    let mut problems: Vec<String> = Vec::new();
    for p in &phases {
        let completed = p.out.results.len();
        let errors = p.out.errors.len();
        let lost = expected as i64 - completed as i64 - errors as i64;
        let mttr = p.out.engine.mttr_ms();
        let (pre_qps, post_qps, post_n) = if p.killed > 0 {
            // Recovery point: every scheduled fault has ended and the
            // engine's measured repair latency has elapsed on top.
            let t_rec = if mttr.is_finite() {
                p.last_fault + SimDuration::from_secs_f64(mttr / 1000.0)
            } else {
                p.last_fault
            };
            qps_split(&p.out, p.first_fault, t_rec)
        } else {
            (0.0, 0.0, 0)
        };
        let ratio = if pre_qps > 0.0 {
            post_qps / pre_qps
        } else {
            0.0
        };
        table.row(vec![
            p.name.to_string(),
            p.out.config.backend.to_string(),
            p.killed.to_string(),
            expected.to_string(),
            completed.to_string(),
            errors.to_string(),
            lost.to_string(),
            p.out.engine.engine_recoveries.to_string(),
            if mttr.is_finite() {
                format!("{mttr:.3}")
            } else {
                "0.000".to_string()
            },
            format!("{pre_qps:.3}"),
            format!("{post_qps:.3}"),
            format!("{ratio:.3}"),
            format!("{:.3}", p.out.wall.as_secs_f64()),
        ]);

        if !spec.check {
            continue;
        }
        if lost != 0 {
            problems.push(format!(
                "{}: {lost} queries lost ({completed} completed + {errors} errors of {expected})",
                p.name
            ));
        }
        if p.name == "faulted" {
            // A scheduled fault only fires when its worker runs past
            // the trigger time, so a very short run can outrun part of
            // the plan; the gate demands that the chaos was real — at
            // least one fault fired and was repaired — not that every
            // scheduled entry landed.
            if p.out.engine.engine_recoveries == 0 {
                problems.push(format!(
                    "faulted: no injected fault fired/recovered ({} kills scheduled)",
                    p.killed
                ));
            }
            if p.out.engine.engine_recoveries > 0 && !(mttr.is_finite() && mttr > 0.0) {
                problems.push(format!(
                    "faulted: MTTR must be finite and positive, got {mttr}"
                ));
            }
            // The ratio is only judged with enough post-recovery
            // signal (at least one completion per client after the
            // recovery point): a short run can drain its closed-loop
            // work before the repairs finish, and a near-empty window
            // measures the drain-out, not the pool.
            let enough_signal = post_n >= spec.users_or(DEFAULT_USERS);
            if p.out.engine.engine_recoveries > 0 && pre_qps > 0.0 && enough_signal && ratio < 0.9 {
                problems.push(format!(
                    "faulted: goodput recovered to only {:.0}% of the pre-fault rate \
                     ({post_qps:.2} vs {pre_qps:.2} qps over {post_n} post-recovery completions)",
                    ratio * 100.0
                ));
            }
        }
    }
    crate::emit(spec, &table, "chaos_recovery.csv");

    // Replay gate: on the deterministic backend a faulted run must be
    // reproducible down to the clock.
    if spec.check && phases[1].out.config.backend == emca_harness::Backend::Sim {
        let again = run_config(base_config(spec, &data).with_faults(plan), &data);
        if digest(&again) != digest(&phases[1].out) || again.errors != phases[1].out.errors {
            problems.push("faulted sim run did not replay byte-identically".to_string());
        }
    }

    if let Some(p) = problems.first() {
        return Err(format!("chaos gate failed: {p} ({} problems)", problems.len()).into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{ROW_FIELDS, ROW_HEADER};

    #[test]
    fn row_header_matches_fields() {
        assert_eq!(ROW_FIELDS.join(","), ROW_HEADER);
    }
}
