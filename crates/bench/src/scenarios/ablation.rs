//! Ablation of the calibration choices documented in DESIGN.md §5b:
//!
//! 1. load signal: instantaneous demand vs windowed average vs HT/IMC;
//! 2. the Eq. 1 memory-saturation guard: on vs off;
//! 3. data placement: warm server (loader-concentrated) vs cold start
//!    (first-touch by queries).
//!
//! Each row reports throughput, interconnect traffic and the mean
//! allocation, all under the mechanism policy with 32 clients on Q6.

use super::{figure_scale, ScenarioResult};
use crate::emit;
use emca_harness::{run as run_config, Alloc, ExperimentSpec, RunConfig};
use emca_metrics::table::{fnum, Table};
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "ablation.csv",
    "variant,qps,ht_GB,faults,cores_mean,transitions",
)];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let users = spec.users_or(32);
    let iters = spec.iters_or(4);
    let data = TpchData::generate(scale);
    eprintln!("ablation: sf={} users={users} iters={iters}", scale.sf);
    let workload = Workload::Repeat {
        spec: QuerySpec::Q6 { variant: 0 },
        iterations: iters,
    };
    // Backend is honored, but the spec's guard/interval/warmup overrides
    // are NOT applied here: each row pins its own variant of exactly
    // those knobs, which is the point of the ablation.
    let base = || {
        RunConfig::new(spec.mech_alloc(), users, workload.clone())
            .with_scale(scale)
            .with_backend(spec.backend)
    };

    let mut t = Table::new(
        "Ablation — adaptive mode design choices",
        &[
            "variant",
            "qps",
            "ht_GB",
            "faults",
            "cores_mean",
            "transitions",
        ],
    );
    let mut row = |name: &str, cfg: RunConfig| {
        let out = run_config(cfg, &data);
        t.row(vec![
            name.to_string(),
            fnum(out.throughput_qps(), 2),
            fnum(out.ht_bytes() as f64 / 1e9, 2),
            out.minor_faults().to_string(),
            fnum(out.cores_series.mean().unwrap_or(16.0), 1),
            out.transitions.len().to_string(),
        ]);
    };

    row("default (windowed demand, guard, warm)", base());
    row(
        "instantaneous demand signal",
        base().with_metric(elastic_core::MetricKind::CpuLoadInstant),
    );
    row(
        "busy-time load signal",
        base().with_metric(elastic_core::MetricKind::CpuLoadWindowed),
    );
    row(
        "HT/IMC transition strategy",
        base().with_metric(elastic_core::MetricKind::HtImcRatio),
    );
    row(
        "cold start (first-touch by queries)",
        base().without_warmup(),
    );
    row("saturation guard off", base().with_guard(None));
    row(
        "interleaved base placement",
        base().with_warmup(emca_harness::Warmup::Interleave),
    );
    {
        // OS baseline for reference.
        let cfg = RunConfig::new(Alloc::OsAll, users, workload.clone())
            .with_scale(scale)
            .with_backend(spec.backend);
        row("OS baseline (all 16 cores)", cfg);
    }
    emit(spec, &t, "ablation.csv");
    Ok(())
}
