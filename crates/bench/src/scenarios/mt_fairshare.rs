//! `mt_fairshare` — two symmetric tenants under fair-share arbitration:
//! does the core split converge to the guaranteed half/half?
//!
//! Both tenants run the same closed-loop workload with the same client
//! count and weight, so each is guaranteed `ntotal/2` cores. The CSV
//! reports the steady-state (second half of the overlap window) mean
//! allocation per tenant against that guarantee. With `check=1` the
//! scenario enforces convergence: each tenant's steady-state mean must
//! sit within [`CONVERGENCE_TOLERANCE`] cores of its guarantee.

use super::mt::{mt_scale, overlap, steady_workload};
use super::ScenarioResult;
use crate::emit;
use elastic_core::ArbiterMode;
use emca_harness::{run_tenants, ExperimentSpec, MultiTenantConfig, TenantRunConfig};
use emca_metrics::table::{fnum, Table};
use volcano_db::tpch::TpchData;

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "mt_fairshare.csv",
    "tenant,users,weight,guarantee,cores_mean_steady,cores_max,abs_dev,qps",
)];

/// `check=1` claim: steady-state mean allocation within this many cores
/// of the fair-share guarantee. The split cannot be exact — the
/// mechanisms keep hunting around the fixed point and each tenant only
/// holds what its load justifies — but it must not collapse to one
/// tenant owning the machine.
pub const CONVERGENCE_TOLERANCE: f64 = 3.0;

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = mt_scale(spec);
    let data = TpchData::generate(scale);
    let users = spec.users_or(16);
    let iters = spec.iters_or(16);
    eprintln!("mt_fairshare: sf={} users={users}/tenant", scale.sf);

    let mut cfg = MultiTenantConfig::new(
        ArbiterMode::FairShare,
        vec![
            TenantRunConfig::new("left", steady_workload(iters), users),
            TenantRunConfig::new("right", steady_workload(iters), users),
        ],
    )
    .with_scale(scale);
    if let Some(f) = spec.flavor {
        cfg = cfg.with_flavor(f);
    }
    spec.apply_tenants(&mut cfg).map_err(|e| e.to_string())?;
    let n_tenants = cfg.tenants.len() as f64;
    let total_weight: u32 = cfg.tenants.iter().map(|t| t.weight).sum();
    let weights: Vec<u32> = cfg.tenants.iter().map(|t| t.weight).collect();
    let out = run_tenants(cfg, &data);

    let (from, to) = overlap(&out.tenants[0], &out.tenants[1]);
    // Steady state: the second half of the overlap window (the first
    // half is the ramp from 1 core each).
    let mid = from + to.since(from) / 2;
    let mut table = Table::new(
        "mt_fairshare — convergence to the fair core split",
        &[
            "tenant",
            "users",
            "weight",
            "guarantee",
            "cores_mean_steady",
            "cores_max",
            "abs_dev",
            "qps",
        ],
    );
    let mut worst_dev = 0.0f64;
    for (t, &w) in out.tenants.iter().zip(&weights) {
        // The arbiter's own fair-share arithmetic over the run's
        // actual machine size.
        let guarantee = elastic_core::fair_guarantee(out.ntotal, w, total_weight as u64) as f64;
        let steady_cores = t.cores_between(mid, to).unwrap_or(0.0);
        let dev = (steady_cores - guarantee).abs();
        worst_dev = worst_dev.max(dev);
        table.row(vec![
            t.config.name.clone(),
            t.config.clients.to_string(),
            w.to_string(),
            fnum(guarantee, 1),
            fnum(steady_cores, 2),
            fnum(t.cores_max(), 0),
            fnum(dev, 2),
            fnum(t.qps_between(from, to), 2),
        ]);
    }
    emit(spec, &table, "mt_fairshare.csv");
    eprintln!(
        "mt_fairshare: worst deviation {worst_dev:.2} cores over {} tenants \
         (denials={} yields={})",
        n_tenants, out.arbiter_denials, out.arbiter_yields
    );

    if spec.check && worst_dev > CONVERGENCE_TOLERANCE {
        return Err(format!(
            "fair-share split did not converge: worst steady-state deviation \
             {worst_dev:.2} cores > tolerance {CONVERGENCE_TOLERANCE}"
        )
        .into());
    }
    Ok(())
}
