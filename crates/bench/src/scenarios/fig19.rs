//! Fig. 19 — mixed-phases workload: per-query speedup of the mechanism
//! policy over the OS scheduler and per-query HT/IMC ratios for all
//! four policies, on both engine flavors.

use super::{figure_scale, ScenarioResult};
use crate::emit;
use emca_harness::{report, run as run_config, ExperimentSpec, RunConfig, RunOutput};
use emca_metrics::table::{fnum, Table};
use emca_metrics::FxHashMap;
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[
    (
        "fig19_monetdb.csv",
        "query,speedup_adaptive,ratio_OS,ratio_Dense,ratio_Sparse,ratio_Adaptive",
    ),
    (
        "fig19_sqlserver.csv",
        "query,speedup_adaptive,ratio_OS,ratio_Dense,ratio_Sparse,ratio_Adaptive",
    ),
];

fn mixed(iters: u32) -> Workload {
    let specs: Vec<QuerySpec> = (1..=22)
        .flat_map(|n| {
            (0..4).map(move |v| QuerySpec::Tpch {
                number: n,
                variant: v,
            })
        })
        .collect();
    Workload::Mixed {
        specs,
        iterations: iters,
        seed: 7,
    }
}

fn panel(
    spec: &ExperimentSpec,
    flavor: Flavor,
    users: usize,
    iters: u32,
    data: &TpchData,
    scale: volcano_db::tpch::TpchScale,
) -> Table {
    let outputs: Vec<RunOutput> = spec
        .alloc_sweep()
        .into_iter()
        .map(|alloc| {
            run_config(
                spec.apply(
                    RunConfig::new(alloc, users, mixed(iters))
                        .with_scale(scale)
                        .with_flavor(flavor),
                ),
                data,
            )
        })
        .collect();
    let fname = match flavor {
        Flavor::MonetDb => "MonetDB",
        Flavor::SqlServer => "SQL Server",
    };
    let mut t = Table::new(
        format!("Fig. 19 ({fname}) — per-query speedup and HT/IMC ratio"),
        &[
            "query",
            "speedup_adaptive",
            "ratio_OS",
            "ratio_Dense",
            "ratio_Sparse",
            "ratio_Adaptive",
        ],
    );
    let speedups: FxHashMap<u32, f64> =
        report::speedup_by_tag(&outputs[0].results, &outputs[3].results)
            .into_iter()
            .collect();
    let per_alloc: Vec<FxHashMap<u32, report::TagStats>> = outputs
        .iter()
        .map(|o| report::by_tag(&o.results).into_iter().collect())
        .collect();
    for q in 1..=22u32 {
        let ratio = |i: usize| {
            per_alloc[i]
                .get(&q)
                .map(|s| fnum(s.mean_ht_imc, 3))
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            format!("Q{q}"),
            speedups
                .get(&q)
                .map(|s| fnum(*s, 2))
                .unwrap_or_else(|| "-".into()),
            ratio(0),
            ratio(1),
            ratio(2),
            ratio(3),
        ]);
    }
    t
}

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let users = spec.users_or(64);
    let iters = spec.iters_or(6);
    let data = TpchData::generate(scale);
    eprintln!("fig19: sf={} users={users} iters={iters}", scale.sf);

    let monetdb = panel(spec, Flavor::MonetDb, users, iters, &data, scale);
    emit(spec, &monetdb, "fig19_monetdb.csv");
    let sqlserver = panel(spec, Flavor::SqlServer, users, iters, &data, scale);
    emit(spec, &sqlserver, "fig19_sqlserver.csv");
    Ok(())
}
