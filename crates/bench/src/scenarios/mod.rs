//! The built-in scenarios: every former figure/table binary, registered
//! by name. Each module holds one scenario's declared CSV schemas and
//! its `run(&ExperimentSpec)` body; [`registry`] assembles them for the
//! `emca` CLI, the deprecated shims, and the tests.

pub mod ablation;
pub mod chaos_recovery;
pub mod chaos_serve;
pub mod csv_check;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod mt;
pub mod mt_burst;
pub mod mt_churn;
pub mod mt_fairshare;
pub mod mt_interference;
pub mod mt_zipf;
pub mod probe;
pub mod serve;
pub mod serve_latency_curve;
pub mod serve_overload;
pub mod tab_overhead;
pub mod tab_summary;

use emca_harness::{ExperimentSpec, FnScenario, ScenarioError, ScenarioRegistry};
use std::path::Path;

// Per-scenario supported spec keys: a scenario declares exactly the
// non-universal keys it honours, and the registry rejects a spec pinning
// anything else instead of silently ignoring it. The universal keys
// (`scenario`, `seed`, `check`, `out_dir`) are always accepted.

/// The full user/iteration/policy sweep most figures run.
const KEYS_SWEEP: &[&str] = &[
    "sf",
    "users",
    "iters",
    "policy",
    "warmup",
    "guard",
    "interval_ms",
    "backend",
];
/// Fixed single-client mechanism runs (no users/iters/policy knobs).
const KEYS_MECH: &[&str] = &["sf", "warmup", "guard", "interval_ms", "backend"];
/// Fig. 4 sweeps users/iters but has no mechanism slot.
const KEYS_FIG04: &[&str] = &[
    "sf",
    "users",
    "iters",
    "warmup",
    "guard",
    "interval_ms",
    "backend",
];
/// Policy + iteration knobs, fixed client count.
const KEYS_POLICY_ITERS: &[&str] = &[
    "sf",
    "iters",
    "policy",
    "warmup",
    "guard",
    "interval_ms",
    "backend",
];
/// Policy knob only (single-client trace figures).
const KEYS_POLICY: &[&str] = &["sf", "policy", "warmup", "guard", "interval_ms", "backend"];
/// Stable-phases workload: users + policy.
const KEYS_PHASES: &[&str] = &[
    "sf",
    "users",
    "policy",
    "warmup",
    "guard",
    "interval_ms",
    "backend",
];
/// The ablation pins guard/interval/warmup/flavor per row itself.
const KEYS_ABLATION: &[&str] = &["sf", "users", "iters", "policy", "backend"];
/// Multi-tenant scenarios: tenant overrides instead of a policy slot.
const KEYS_MT: &[&str] = &["sf", "users", "iters", "flavor", "tenants", "backend"];
/// Churn scenarios: a generated tenant population (`churn=`) instead of
/// named tenant overrides.
const KEYS_CHURN: &[&str] = &["sf", "users", "iters", "flavor", "churn", "backend"];
/// Chaos scenarios: the sweep knobs plus a fault plan.
const KEYS_CHAOS: &[&str] = &[
    "sf",
    "users",
    "iters",
    "policy",
    "warmup",
    "guard",
    "interval_ms",
    "backend",
    "faults",
];
/// Pure timing/validation scenarios run no experiment at all.
const KEYS_NONE: &[&str] = &[];

/// All built-in scenarios: the former `emca-bench` binaries plus the
/// multi-tenant (`mt_*`) workloads and the serving layer (`serve_*`).
pub fn registry() -> ScenarioRegistry {
    let mut r = ScenarioRegistry::new();
    let items: [FnScenario; 26] = [
        FnScenario {
            name: "fig04",
            about: "Fig. 4 — Q6 vs concurrent clients (hand-coded C affinities vs OS/MonetDB)",
            schemas: fig04::SCHEMAS,
            run: fig04::run,
            keys: KEYS_FIG04,
        },
        FnScenario {
            name: "fig05",
            about: "Fig. 5 — thread lifespan and core migration under the OS scheduler",
            schemas: fig05::SCHEMAS,
            run: fig05::run,
            keys: KEYS_MECH,
        },
        FnScenario {
            name: "fig06",
            about: "Fig. 6 — Tomograph of Q6 (per-operator calls and time)",
            schemas: fig06::SCHEMAS,
            run: fig06::run,
            keys: KEYS_MECH,
        },
        FnScenario {
            name: "fig07",
            about: "Fig. 7 — PrT state transitions and allocated cores over Q6",
            schemas: fig07::SCHEMAS,
            run: fig07::run,
            keys: KEYS_POLICY_ITERS,
        },
        FnScenario {
            name: "fig13",
            about: "Fig. 13 — thetasubselect scheduling metrics vs concurrent clients",
            schemas: fig13::SCHEMAS,
            run: fig13::run,
            keys: KEYS_SWEEP,
        },
        FnScenario {
            name: "fig14",
            about: "Fig. 14 — memory access metrics at 256 clients",
            schemas: fig14::SCHEMAS,
            run: fig14::run,
            keys: KEYS_SWEEP,
        },
        FnScenario {
            name: "fig15",
            about: "Fig. 15 — L3 misses vs selectivity (256 clients)",
            schemas: fig15::SCHEMAS,
            run: fig15::run,
            keys: KEYS_SWEEP,
        },
        FnScenario {
            name: "fig16",
            about: "Fig. 16 — thread migration by allocation policy (single-client Q6)",
            schemas: fig16::SCHEMAS,
            run: fig16::run,
            keys: KEYS_POLICY,
        },
        FnScenario {
            name: "fig17",
            about: "Fig. 17 — CPU-load vs HT/IMC transition strategies",
            schemas: fig17::SCHEMAS,
            run: fig17::run,
            keys: KEYS_POLICY_ITERS,
        },
        FnScenario {
            name: "fig18",
            about: "Fig. 18 — stable-phases workload, per-socket memory throughput",
            schemas: fig18::SCHEMAS,
            run: fig18::run,
            keys: KEYS_PHASES,
        },
        FnScenario {
            name: "fig19",
            about: "Fig. 19 — mixed-phases per-query speedup and HT/IMC ratios",
            schemas: fig19::SCHEMAS,
            run: fig19::run,
            keys: KEYS_SWEEP,
        },
        FnScenario {
            name: "fig20",
            about: "Fig. 20 — per-query energy: OS scheduler vs the mechanism",
            schemas: fig20::SCHEMAS,
            run: fig20::run,
            keys: KEYS_SWEEP,
        },
        FnScenario {
            name: "mt_interference",
            about: "Two tenants — OLAP antagonist vs steady victim, with/without SLA caps",
            schemas: mt_interference::SCHEMAS,
            run: mt_interference::run,
            keys: KEYS_MT,
        },
        FnScenario {
            name: "mt_fairshare",
            about: "Two symmetric tenants — convergence to the fair core split",
            schemas: mt_fairshare::SCHEMAS,
            run: mt_fairshare::run,
            keys: KEYS_MT,
        },
        FnScenario {
            name: "mt_burst",
            about: "Antagonist burst against a priority tenant — core reclaim latency",
            schemas: mt_burst::SCHEMAS,
            run: mt_burst::run,
            keys: KEYS_MT,
        },
        FnScenario {
            name: "mt_churn",
            about: "Serverless churn at 64+ tenants — adaptive arbitration vs static partitioning",
            schemas: mt_churn::SCHEMAS,
            run: mt_churn::run,
            keys: KEYS_CHURN,
        },
        FnScenario {
            name: "mt_zipf",
            about: "Zipf demand-skew sweep under churn — core split vs demand distribution",
            schemas: mt_zipf::SCHEMAS,
            run: mt_zipf::run,
            keys: KEYS_CHURN,
        },
        FnScenario {
            name: "tab_summary",
            about: "Headline summary table; fidelity gate with check=1",
            schemas: tab_summary::SCHEMAS,
            run: tab_summary::run,
            keys: KEYS_SWEEP,
        },
        FnScenario {
            name: "tab_overhead",
            about: "§V overhead table — PrT step cost per allocation mode",
            schemas: tab_overhead::SCHEMAS,
            run: tab_overhead::run,
            keys: KEYS_NONE,
        },
        FnScenario {
            name: "ablation",
            about: "Ablation of the calibration choices (signal, guard, placement)",
            schemas: ablation::SCHEMAS,
            run: ablation::run,
            keys: KEYS_ABLATION,
        },
        FnScenario {
            name: "probe",
            about: "Calibration probe — quick OS-vs-mechanism comparison (no CSV)",
            schemas: probe::SCHEMAS,
            run: probe::run,
            keys: KEYS_SWEEP,
        },
        FnScenario {
            name: "chaos_recovery",
            about:
                "Kill workers mid-run — zero lost queries, bounded MTTR; chaos gate with check=1",
            schemas: chaos_recovery::SCHEMAS,
            run: chaos_recovery::run,
            keys: KEYS_CHAOS,
        },
        FnScenario {
            name: "chaos_serve",
            about: "Serving under faults — retries, deadlines, exact accounting; gate with check=1",
            schemas: chaos_serve::SCHEMAS,
            run: chaos_serve::run,
            keys: chaos_serve::CHAOS_SERVE_KEYS,
        },
        FnScenario {
            name: "serve_overload",
            about: "Serving layer — one past-saturation point: outcome split, p99, goodput",
            schemas: serve_overload::SCHEMAS,
            run: serve_overload::run,
            keys: serve::SERVE_KEYS,
        },
        FnScenario {
            name: "serve_latency_curve",
            about: "Serving layer — latency/goodput vs offered load; headline gate with check=1",
            schemas: serve_latency_curve::SCHEMAS,
            run: serve_latency_curve::run,
            keys: serve::SERVE_KEYS,
        },
        FnScenario {
            name: "csv_check",
            about: "Validate every declared results CSV against its schema",
            schemas: csv_check::SCHEMAS,
            run: csv_check::run,
            keys: KEYS_NONE,
        },
    ];
    for s in items {
        r.register(Box::new(s)).expect("built-in names are unique");
    }
    r
}

/// Validates every CSV declared by the registry's scenarios under
/// `dir`, returning the list of problems (empty = all good).
pub fn check_results(dir: &Path) -> Vec<String> {
    let mut problems = Vec::new();
    for scenario in registry().iter() {
        for (name, header) in scenario.csv_schemas() {
            if let Err(e) = emca_harness::validate_csv(&dir.join(name), header) {
                problems.push(e);
            }
        }
    }
    problems
}

/// The number of results files the registry declares (reporting).
pub fn declared_csv_count() -> usize {
    registry().iter().map(|s| s.csv_schemas().len()).sum()
}

/// Shared `Result` alias for scenario bodies.
pub type ScenarioResult = Result<(), ScenarioError>;

/// The default scale factor every figure scenario uses when the spec
/// does not pin one (the repo's pinned default scale; the paper's is
/// 1.0).
pub const DEFAULT_SF: f64 = 0.25;

/// Helper: the spec's scale at the standard figure default.
pub(crate) fn figure_scale(spec: &ExperimentSpec) -> volcano_db::tpch::TpchScale {
    spec.scale(DEFAULT_SF)
}
