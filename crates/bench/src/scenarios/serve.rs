//! Shared plumbing of the `serve_*` scenarios: the capacity probe, SLA
//! derivation, the three comparison series, and row emission.
//!
//! Both scenarios compare the same three front-door configurations on
//! one arrival schedule:
//!
//! - `os` — static OS baseline, no admission control: every arrival
//!   dispatches immediately, all cores always on;
//! - `adaptive` — the elastic mechanism, still no admission control:
//!   cores follow demand but nothing protects the engine past
//!   saturation;
//! - `admitted` — the elastic mechanism behind a concurrency-limit
//!   front door with a deadline-aware queue (the full serving layer).
//!
//! Offered load is expressed as multiples of the *measured* capacity
//! `C`: a quick closed-loop probe on the OS baseline (the same engine
//! and scale the serve runs use) measures C and the unloaded mean
//! response, from which the λ sweep and the default SLA derive. The
//! probe runs on the selected backend, so sim and threads runs are each
//! calibrated against their own saturation point.

use emca_harness::{
    run as run_config, run_serve, AdmissionSpec, Alloc, ArrivalSchedule, ExperimentSpec, RunConfig,
    ServeConfig, ServeOutput,
};
use emca_metrics::{stats, SimDuration};
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Serve scenarios default to a small scale so a λ sweep stays quick.
pub const SERVE_DEFAULT_SF: f64 = 0.05;

/// Offered-load window (seconds) when the spec pins no `duration`.
pub const DEFAULT_DURATION_S: f64 = 2.0;

/// The SLA when the spec pins no `sla_ms`: this multiple of the probe's
/// unloaded mean response (generous at light load, binding past
/// saturation).
pub const DEFAULT_SLA_X: f64 = 8.0;

/// Column list of both serve CSVs.
pub const ROW_FIELDS: &[&str] = &[
    "series",
    "policy",
    "admission",
    "offered_mult",
    "offered_qps",
    "arrivals",
    "completed",
    "shed_gate",
    "shed_timeout",
    "unfinished",
    "goodput_qps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "cores_mean",
];

/// [`ROW_FIELDS`] as the declared CSV header line.
pub const ROW_HEADER: &str = "series,policy,admission,offered_mult,offered_qps,arrivals,completed,\
shed_gate,shed_timeout,unfinished,goodput_qps,p50_ms,p95_ms,p99_ms,cores_mean";

/// Spec keys the serve scenarios honour (no `users`/`iters`/`tenants`:
/// the schedule replaces the closed-loop client model).
pub const SERVE_KEYS: &[&str] = &[
    "sf",
    "flavor",
    "policy",
    "warmup",
    "guard",
    "interval_ms",
    "backend",
    "arrival",
    "duration",
    "admission",
    "sla_ms",
];

/// What the calibration probe measured.
pub struct Probe {
    /// Closed-loop saturation throughput C (req/s).
    pub capacity_qps: f64,
    /// Unloaded mean response (ms).
    pub mean_ms: f64,
}

/// Measures C with a short closed-loop burst (4 clients × 6 Q6 each)
/// through the OS baseline on the spec's backend and scale.
pub fn probe(spec: &ExperimentSpec, data: &TpchData) -> Probe {
    let mut cfg = spec.apply(
        RunConfig::new(
            Alloc::OsAll,
            4,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 6,
            },
        )
        .with_scale(data.scale),
    );
    if let Some(f) = spec.flavor {
        cfg = cfg.with_flavor(f);
    }
    let out = run_config(cfg, data);
    Probe {
        capacity_qps: out.throughput_qps().max(1.0),
        mean_ms: out.mean_response().as_millis_f64().max(0.01),
    }
}

/// One comparison series of the serve scenarios.
pub struct Series {
    /// Row label.
    pub name: &'static str,
    /// Core-allocation policy.
    pub alloc: Alloc,
    /// Front-door policy.
    pub admission: AdmissionSpec,
}

/// The three-way comparison every serve scenario runs. `--policy`
/// retargets the mechanism slot; `--admission` retargets the front door
/// of the `admitted` series (default: a machine-width concurrency limit
/// with a 64-deep queue).
pub fn series(spec: &ExperimentSpec) -> Vec<Series> {
    let admission = spec.admission.unwrap_or(AdmissionSpec::Limit {
        max_inflight: 16,
        queue: Some(64),
    });
    vec![
        Series {
            name: "os",
            alloc: Alloc::OsAll,
            admission: AdmissionSpec::None,
        },
        Series {
            name: "adaptive",
            alloc: spec.mech_alloc(),
            admission: AdmissionSpec::None,
        },
        Series {
            name: "admitted",
            alloc: spec.mech_alloc(),
            admission,
        },
    ]
}

/// Stable row label of an allocation policy.
pub fn alloc_name(a: Alloc) -> &'static str {
    match a {
        Alloc::OsAll => "os",
        Alloc::Dense => "dense",
        Alloc::Sparse => "sparse",
        Alloc::Adaptive => "adaptive",
        Alloc::HillClimb => "hillclimb",
    }
}

/// The SLA the run is judged against: the spec's `sla_ms`, else
/// [`DEFAULT_SLA_X`] × the probe's unloaded mean.
pub fn sla_of(spec: &ExperimentSpec, p: &Probe) -> SimDuration {
    SimDuration::from_secs_f64(spec.sla_ms.unwrap_or(DEFAULT_SLA_X * p.mean_ms) / 1e3)
}

/// The offered-load window: the spec's `duration`, else
/// [`DEFAULT_DURATION_S`].
pub fn horizon_of(spec: &ExperimentSpec) -> SimDuration {
    SimDuration::from_secs_f64(spec.duration.unwrap_or(DEFAULT_DURATION_S))
}

/// Materialises the run's schedule: the spec's `arrival` when pinned
/// (a trace carries its own window), else Poisson at `lambda`.
pub fn schedule_of(
    spec: &ExperimentSpec,
    lambda: f64,
    horizon: SimDuration,
) -> Result<ArrivalSchedule, String> {
    match &spec.arrival {
        Some(a) => ArrivalSchedule::from_spec(a, horizon, spec.seed),
        None => Ok(ArrivalSchedule::poisson(lambda, horizon, spec.seed)),
    }
}

/// Runs one serve point for one series.
pub fn run_point(
    spec: &ExperimentSpec,
    data: &TpchData,
    s: &Series,
    schedule: ArrivalSchedule,
    sla: SimDuration,
) -> ServeOutput {
    let mut base = spec.apply(
        RunConfig::new(
            s.alloc,
            0,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 0,
            },
        )
        .with_scale(data.scale),
    );
    if let Some(f) = spec.flavor {
        base = base.with_flavor(f);
    }
    let cfg = ServeConfig {
        base,
        schedule,
        admission: s.admission,
        sla,
        // Grace for the in-flight tail: generous against the SLA but
        // bounded, so an engine drowning in backlog still reports its
        // unfinished requests instead of stretching the window.
        drain: sla
            .mul_f64(2.0)
            .max(SimDuration::from_millis(250))
            .min(SimDuration::from_secs(2)),
        // The plain serve scenarios predate the fault plane and keep
        // retry/deadline off so their committed CSVs stay byte-stable;
        // chaos_serve exercises both.
        retry: None,
        request_deadline: None,
    };
    run_serve(&cfg, data)
}

/// Formats a latency/goodput cell; infinities render as `inf`.
pub fn cell(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "inf".to_string()
    }
}

/// One CSV row for a finished point.
pub fn row(s: &Series, mult_label: &str, out: &ServeOutput) -> Vec<String> {
    use emca_harness::RequestOutcome as O;
    let lat = out.latencies_ms();
    let (p50, p95, p99) = match stats::latency_summary(&lat) {
        Some(l) => (l.p50, l.p95, l.p99),
        None => (f64::NAN, f64::NAN, f64::NAN),
    };
    let cores_mean = out.cores_series.mean().unwrap_or(0.0);
    vec![
        s.name.to_string(),
        alloc_name(s.alloc).to_string(),
        s.admission.to_string(),
        mult_label.to_string(),
        cell(out.offered as f64 / out.horizon.as_secs_f64().max(1e-9)),
        out.offered.to_string(),
        out.count(O::Completed).to_string(),
        out.count(O::ShedGate).to_string(),
        out.count(O::ShedTimeout).to_string(),
        out.count(O::Unfinished).to_string(),
        cell(out.goodput_qps()),
        cell(p50),
        cell(p95),
        cell(p99),
        format!("{cores_mean:.2}"),
    ]
}

/// The headline claim, judged on one past-saturation point: admission
/// plus the elastic mechanism must beat the unprotected static baseline
/// on goodput *and* keep p99 bounded. Returns a description of the
/// failure, `None` when the claim holds.
pub fn headline_violation(os: &ServeOutput, admitted: &ServeOutput) -> Option<String> {
    let g_os = os.goodput_qps();
    let g_ad = admitted.goodput_qps();
    let p99_os = os.latency_percentile_ms(0.99);
    let p99_ad = admitted.latency_percentile_ms(0.99);
    if g_ad <= g_os {
        return Some(format!(
            "goodput: admitted {g_ad:.2} qps must strictly beat the OS baseline {g_os:.2} qps"
        ));
    }
    if !p99_ad.is_finite() {
        return Some("p99: admission control must keep p99 finite".to_string());
    }
    if p99_ad >= p99_os {
        return Some(format!(
            "p99: admitted {p99_ad:.1} ms must stay below the no-admission baseline \
             ({})",
            cell(p99_os)
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::{ROW_FIELDS, ROW_HEADER};

    /// The serve scenarios declare `ROW_HEADER` in their SCHEMAS and
    /// build tables from `ROW_FIELDS`; the schema-sync waivers in
    /// serve_latency_curve.rs and serve_overload.rs cite this test as
    /// the cross-file link the per-file lint cannot see.
    #[test]
    fn row_header_matches_fields() {
        assert_eq!(ROW_FIELDS.join(","), ROW_HEADER);
    }
}
