//! `mt_zipf` — demand skew sweep under churn: does elastic arbitration
//! track a Zipf demand distribution?
//!
//! The same churn population (default `churn=32:resident=8`) runs at
//! three Zipf exponents; at each skew the plan runs under adaptive
//! arbitration and the static partitioner. The CSV reports, per
//! `(skew, run)`, aggregate throughput, the worst per-tenant p99 and
//! the mean core allocation of the heaviest (rank 1) vs lightest
//! (rank n) tenant.
//!
//! With `check=1` every run must lose zero queries across departures,
//! and the headline is gated at the highest skew: adaptive must (a)
//! keep aggregate throughput at the static partitioner's level, and
//! (b) give the heavy tenant a larger mean allocation than the light
//! one (judged on the deterministic sim backend) — skewed demand must
//! show up as a skewed core split, which a static 1/cap slice
//! structurally cannot provide.

use super::mt_churn::{churn_plan, run_churn, CHURN_DEFAULT_SF};
use super::ScenarioResult;
use crate::emit;
use emca_harness::ExperimentSpec;
use emca_metrics::table::{fnum, Table};
use volcano_db::tpch::TpchData;

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "mt_zipf.csv",
    "skew,run,aggregate_qps,worst_p99_ms,heavy_cores,light_cores,heavy_qps,light_qps",
)];

/// The swept Zipf exponents (0 = uniform demand).
pub const SKEWS: [f64; 3] = [0.0, 0.8, 1.6];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = spec.scale(CHURN_DEFAULT_SF);
    let data = TpchData::generate(scale);
    // The population defaults smaller than mt_churn's: the sweep runs
    // 2 × SKEWS.len() full churn experiments.
    let base = spec.churn.unwrap_or_else(|| {
        let mut c = emca_harness::ChurnSpec::new(32);
        c.resident = Some(8);
        c
    });
    eprintln!(
        "mt_zipf: sf={} tenants={} resident={} skews={SKEWS:?}",
        scale.sf,
        base.n,
        base.resident()
    );

    let mut table = Table::new(
        "mt_zipf — core split vs demand skew under churn",
        &[
            "skew",
            "run",
            "aggregate_qps",
            "worst_p99_ms",
            "heavy_cores",
            "light_cores",
            "heavy_qps",
            "light_qps",
        ],
    );
    // (skew, adaptive_qps, static_qps, heavy_cores, light_cores) at
    // each point, for the gate at the steepest skew.
    let mut points = Vec::new();
    for skew in SKEWS {
        let mut spec_at = spec.clone();
        let mut churn = base;
        churn.skew = Some(skew);
        spec_at.churn = Some(churn);
        let (churn, plan) = churn_plan(&spec_at);
        let heavy_name = plan
            .tenants
            .iter()
            .find(|t| t.rank == 1)
            .map(|t| t.name.clone())
            .unwrap_or_default();
        let light_name = plan
            .tenants
            .iter()
            .find(|t| t.rank == churn.n)
            .map(|t| t.name.clone())
            .unwrap_or_default();
        let mut qps_at = [0.0f64; 2];
        let mut split = (0.0f64, 0.0f64);
        for (ri, (label, static_partition)) in [("adaptive", false), ("static", true)]
            .into_iter()
            .enumerate()
        {
            let (out, stats) = run_churn(&spec_at, &plan, scale, &data, static_partition);
            if spec.check && stats.lost != 0 {
                return Err(format!(
                    "skew {skew}/{label}: {} queries lost across departures",
                    stats.lost
                )
                .into());
            }
            let heavy = out.tenant(&heavy_name);
            let light = out.tenant(&light_name);
            let heavy_cores = heavy.map_or(0.0, |t| t.cores_mean());
            let light_cores = light.map_or(0.0, |t| t.cores_mean());
            if !static_partition {
                split = (heavy_cores, light_cores);
            }
            qps_at[ri] = stats.aggregate_qps;
            table.row(vec![
                fnum(skew, 1),
                label.to_string(),
                fnum(stats.aggregate_qps, 2),
                fnum(stats.worst_p99_ms, 2),
                fnum(heavy_cores, 2),
                fnum(light_cores, 2),
                fnum(heavy.map_or(0.0, |t| t.throughput_qps()), 2),
                fnum(light.map_or(0.0, |t| t.throughput_qps()), 2),
            ]);
        }
        eprintln!(
            "mt_zipf skew={skew}: adaptive {:.1} q/s vs static {:.1} q/s, \
             heavy/light cores {:.1}/{:.1}",
            qps_at[0], qps_at[1], split.0, split.1
        );
        points.push((skew, qps_at[0], qps_at[1], split.0, split.1));
    }
    emit(spec, &table, "mt_zipf.csv");

    if spec.check {
        let Some(&(skew, adaptive, static_, heavy, light)) = points.last() else {
            return Err("no skew points ran".to_string().into());
        };
        // The discriminating gate here is the core split; the
        // throughput comparison carries a small allowance because the
        // default population (32 tenants, resident 8) leaves the
        // machine barely contended — adaptive's one-core cold-start
        // ramp can cost a fraction of a percent that the larger
        // mt_churn population amortises away. On threads the walls are
        // measured host time, so the allowance widens to 10 %.
        let qps_floor = if spec.backend == emca_harness::Backend::Sim {
            0.98
        } else {
            0.90
        };
        if adaptive < static_ * qps_floor {
            return Err(format!(
                "at skew {skew} adaptive aggregate throughput {adaptive:.2} q/s \
                 fell below the static partitioner's {static_:.2} q/s"
            )
            .into());
        }
        // The split gate is judged on sim only: the threads cores
        // series samples the pool controller's `active` count on a
        // shared host, where growth timing (and so the mean) is noise.
        if spec.backend == emca_harness::Backend::Sim && heavy <= light {
            return Err(format!(
                "at skew {skew} the heavy tenant's mean allocation ({heavy:.2} \
                 cores) does not exceed the light tenant's ({light:.2}) — the \
                 split is not tracking demand"
            )
            .into());
        }
    }
    Ok(())
}
