//! Fig. 13 — scheduling metrics for the thetasubselect microbenchmark
//! (45 % selectivity) with increasing concurrent clients: (a) throughput,
//! (b) CPU load, (c) tasks, (d) stolen tasks, across the four allocation
//! policies.

use super::{figure_scale, ScenarioResult};
use crate::{emit, user_sweep};
use emca_harness::{run as run_config, ExperimentSpec, RunConfig};
use emca_metrics::table::{fnum, Table};
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "fig13_sched_metrics.csv",
    "users,policy,throughput_qps,cpu_load_pct,tasks,stolen_tasks,cores_mean",
)];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let iters = spec.iters_or(4);
    let data = TpchData::generate(scale);
    eprintln!("fig13: sf={} iters={iters}", scale.sf);

    let mut t = Table::new(
        "Fig. 13 — thetasubselect scheduling metrics vs concurrent clients",
        &[
            "users",
            "policy",
            "throughput_qps",
            "cpu_load_pct",
            "tasks",
            "stolen_tasks",
            "cores_mean",
        ],
    );
    for users in user_sweep(spec.users_or(256)) {
        for alloc in spec.alloc_sweep() {
            let out = run_config(
                spec.apply(
                    RunConfig::new(
                        alloc,
                        users,
                        Workload::Repeat {
                            spec: QuerySpec::ThetaSubselect { sel_pct: 45 },
                            iterations: iters,
                        },
                    )
                    .with_scale(scale),
                ),
                &data,
            );
            t.row(vec![
                users.to_string(),
                alloc.label(Flavor::MonetDb),
                fnum(out.throughput_qps(), 2),
                fnum(out.load_series.mean().unwrap_or(0.0), 1),
                out.engine.tasks_created.to_string(),
                out.sched.steals.to_string(),
                fnum(out.cores_series.mean().unwrap_or(16.0), 1),
            ]);
        }
    }
    emit(spec, &t, "fig13_sched_metrics.csv");
    Ok(())
}
