//! `results/` CSV schema check (CI early job): validates that every
//! results file the registry's scenarios declare exists, has the
//! expected header, and that every data row matches the header's column
//! count. Catches truncated writes and accidental schema drift before
//! the expensive jobs run.
//!
//! The schemas are single-sourced from each scenario's declaration
//! (`Scenario::csv_schemas`); validation itself is
//! `emca_harness::validate_csv`, shared with the scenario smoke tests.

use super::ScenarioResult;
use emca_harness::ExperimentSpec;

/// Declared CSV outputs: none (this scenario only reads).
pub const SCHEMAS: &[(&str, &str)] = &[];

/// Runs the scenario: validates the spec's output directory (the
/// committed `results/` by default).
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let dir = spec.csv_path("");
    let problems = super::check_results(&dir);
    if problems.is_empty() {
        println!(
            "csv_check: {} results files validate",
            super::declared_csv_count()
        );
        Ok(())
    } else {
        for p in &problems {
            eprintln!("csv_check: {p}");
        }
        Err(format!("{} CSV schema problem(s)", problems.len()).into())
    }
}
