//! `results/` CSV schema check (CI early job): validates that every
//! results file the registry's scenarios declare exists, has the
//! expected header, and that every data row matches the header's column
//! count. Catches truncated writes and accidental schema drift before
//! the expensive jobs run.
//!
//! The schemas are single-sourced from each scenario's declaration
//! (`Scenario::csv_schemas`); validation itself is
//! `emca_harness::validate_csv`, shared with the scenario smoke tests.

use super::ScenarioResult;
use emca_harness::ExperimentSpec;

/// Declared CSV outputs: none (this scenario only reads).
pub const SCHEMAS: &[(&str, &str)] = &[];

/// Runs the scenario: validates the spec's output directory (the
/// committed `results/` by default), plus the repo-root
/// `BENCH_operators.json` perf trajectory when present.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let dir = spec.csv_path("");
    let mut problems = super::check_results(&dir);
    let bench_json = emca_harness::results_path("")
        .parent()
        .map(|root| root.join("BENCH_operators.json"));
    if let Some(path) = bench_json.filter(|p| p.exists()) {
        match std::fs::read_to_string(&path) {
            Ok(body) => problems.extend(
                check_bench_json(&body)
                    .into_iter()
                    .map(|p| format!("BENCH_operators.json: {p}")),
            ),
            Err(e) => problems.push(format!("BENCH_operators.json: unreadable: {e}")),
        }
    }
    let lint_report = dir.join("lint_report.json");
    if lint_report.exists() {
        match std::fs::read_to_string(&lint_report) {
            Ok(body) => problems.extend(
                check_lint_report(&body)
                    .into_iter()
                    .map(|p| format!("lint_report.json: {p}")),
            ),
            Err(e) => problems.push(format!("lint_report.json: unreadable: {e}")),
        }
    }
    if problems.is_empty() {
        println!(
            "csv_check: {} results files validate",
            super::declared_csv_count()
        );
        Ok(())
    } else {
        for p in &problems {
            eprintln!("csv_check: {p}");
        }
        Err(format!("{} schema problem(s)", problems.len()).into())
    }
}

/// Validates the bench-JSON trajectory: a (possibly empty) array of
/// records carrying `id` and the four numeric measurement fields. The
/// vendored shim writes one record per line, so validation is
/// line-oriented — no JSON parser dependency needed.
pub fn check_bench_json(body: &str) -> Vec<String> {
    let trimmed = body.trim();
    let mut problems = Vec::new();
    if !(trimmed.starts_with('[') && trimmed.ends_with(']')) {
        problems.push("not a JSON array".to_string());
        return problems;
    }
    let inner = &trimmed[1..trimmed.len() - 1];
    for (i, line) in inner
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .enumerate()
    {
        let rec = line.trim_end_matches(',');
        if !(rec.starts_with('{') && rec.ends_with('}')) {
            problems.push(format!("record {i}: not an object: {rec:.40}"));
            continue;
        }
        for field in [
            "\"id\"",
            "\"mean_ns\"",
            "\"median_ns\"",
            "\"min_ns\"",
            "\"samples\"",
        ] {
            if !rec.contains(field) {
                problems.push(format!("record {i}: missing field {field}"));
            }
        }
    }
    problems
}

/// Validates the committed lint report (`emca-lint`'s output): the
/// scalar fields must be present, `violations` must be `0` (a report
/// recording violations must never be committed), and every waiver
/// entry must carry file/line/rule/justification. Line-oriented like
/// [`check_bench_json`] — the report writer emits one waiver per line.
pub fn check_lint_report(body: &str) -> Vec<String> {
    let mut problems = Vec::new();
    for field in [
        "\"version\"",
        "\"files_scanned\"",
        "\"rules\"",
        "\"waivers\"",
    ] {
        if !body.contains(field) {
            problems.push(format!("missing field {field}"));
        }
    }
    match body.lines().find(|l| l.contains("\"violations\"")) {
        None => problems.push("missing field \"violations\"".to_string()),
        Some(line) if !line.contains(": 0") => {
            problems.push(format!(
                "committed report records violations: {}",
                line.trim()
            ));
        }
        Some(_) => {}
    }
    for (i, line) in body
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{') && l.contains("\"rule\""))
        .enumerate()
    {
        for field in ["\"file\"", "\"line\"", "\"rule\"", "\"justification\""] {
            if !line.contains(field) {
                problems.push(format!("waiver {i}: missing field {field}"));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::{check_bench_json, check_lint_report};

    #[test]
    fn bench_json_accepts_shim_output() {
        let good = r#"[
  {"id": "operators/scan_select/16384", "mean_ns": 1.0, "median_ns": 1.0, "min_ns": 0.9, "samples": 10, "elems_per_iter": 16384},
  {"id": "x", "mean_ns": 2.0, "median_ns": 2.0, "min_ns": 1.9, "samples": 3, "elems_per_iter": null}
]"#;
        assert!(check_bench_json(good).is_empty());
        assert!(check_bench_json("[]").is_empty());
        assert!(check_bench_json("[\n]").is_empty());
    }

    #[test]
    fn bench_json_rejects_malformed() {
        assert!(!check_bench_json("{}").is_empty());
        let missing = r#"[
  {"id": "x", "mean_ns": 2.0, "samples": 3}
]"#;
        let problems = check_bench_json(missing);
        assert_eq!(problems.len(), 2); // median_ns and min_ns missing
    }

    #[test]
    fn lint_report_accepts_clean_report() {
        let good = r#"{
  "version": 1,
  "files_scanned": 102,
  "rules": ["determinism", "float-ordering"],
  "violations": 0,
  "waivers": [
    {"file": "crates/dbms/src/exec/par.rs", "line": 42, "rule": "panic-freedom", "justification": "contained by catch_unwind"}
  ]
}
"#;
        assert!(check_lint_report(good).is_empty());
    }

    #[test]
    fn lint_report_rejects_violations_and_bare_waivers() {
        let dirty = r#"{
  "version": 1,
  "files_scanned": 5,
  "rules": [],
  "violations": 3,
  "waivers": [
    {"file": "x.rs", "line": 1, "rule": "determinism"}
  ]
}
"#;
        let problems = check_lint_report(dirty);
        assert!(
            problems.iter().any(|p| p.contains("violations")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("justification")),
            "{problems:?}"
        );
        assert!(!check_lint_report("{}").is_empty());
    }
}
