//! `mt_interference` — an OLAP tenant ramping against a steady tenant,
//! with and without SLA caps on the antagonist.
//!
//! Two runs of the same two-tenant workload:
//!
//! - **uncapped** — fair-share arbitration only: the antagonist may
//!   grow into every core the victim does not defend;
//! - **capped** — the antagonist carries an [`SlaPolicy`] core budget
//!   and the arbiter runs budget-capped, so the cap binds both at the
//!   governor and at the arbitration layer.
//!
//! The CSV reports, per run × tenant, throughput, latency, allocated
//! cores, SLA violations and the per-window throughput coefficient of
//! variation (the stability measure). With `check=1` the scenario
//! *enforces* the headline claim: the capped run keeps the victim's
//! throughput within [`STABILITY_BOUND`] of the uncapped run's (caps on
//! the antagonist must not hurt — and in practice help — the victim),
//! and the capped antagonist never exceeds its core budget.

use super::mt::{mt_scale, olap_workload, overlap, steady_workload, tenant_row, TENANT_ROW_HEADER};
use super::ScenarioResult;
use crate::emit;
use elastic_core::{ArbiterMode, SlaPolicy};
use emca_harness::{run_tenants, ExperimentSpec, MultiTenantConfig, TenantRunConfig};
use emca_metrics::table::Table;
use volcano_db::tpch::TpchData;

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[("mt_interference.csv", TENANT_ROW_HEADER)];

/// Core budget of the capped antagonist (of the machine's 16).
pub const ANTAGONIST_CAP: u32 = 6;

/// `check=1` claim: victim throughput in the capped run must be at
/// least this fraction of its uncapped-run throughput. Measured at the
/// default scale the cap *improves* victim throughput (the antagonist
/// stops stealing cores and memory bandwidth), so 1.0 is a conservative
/// floor with margin below the measured ratio.
pub const STABILITY_BOUND: f64 = 1.0;

fn config(
    spec: &ExperimentSpec,
    capped: bool,
    scale: volcano_db::tpch::TpchScale,
) -> Result<MultiTenantConfig, emca_harness::ScenarioError> {
    let iters = spec.iters_or(10);
    let steady = TenantRunConfig::new(
        "steady",
        steady_workload(iters * 2),
        spec.users_or(8).min(8),
    );
    let mut olap =
        TenantRunConfig::new("olap", olap_workload(iters, 11), spec.users_or(24)).with_weight(1);
    let mode = if capped {
        olap = olap.with_sla(SlaPolicy::cores(ANTAGONIST_CAP));
        ArbiterMode::BudgetCapped
    } else {
        ArbiterMode::FairShare
    };
    let mut cfg = MultiTenantConfig::new(mode, vec![steady, olap]).with_scale(scale);
    if let Some(f) = spec.flavor {
        cfg = cfg.with_flavor(f);
    }
    spec.apply_tenants(&mut cfg).map_err(|e| e.to_string())?;
    if !capped {
        // A `--tenants olap:cap=N` override parameterises the *capped*
        // run's budget; the baseline's antagonist must stay genuinely
        // uncapped or the comparison (and the check) is capped-vs-capped.
        // Other tenants' overrides are left alone — the victim's config
        // must be identical in both runs so the antagonist cap is the
        // only experimental variable.
        if let Some(olap) = cfg.tenants.iter_mut().find(|t| t.name == "olap") {
            olap.sla.max_cores = None;
        }
    }
    Ok(cfg)
}

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = mt_scale(spec);
    let data = TpchData::generate(scale);
    eprintln!("mt_interference: sf={} cap={ANTAGONIST_CAP}", scale.sf);

    let mut table = Table::new(
        "mt_interference — victim stability with and without antagonist SLA caps",
        &TENANT_ROW_HEADER.split(',').collect::<Vec<_>>(),
    );
    let mut victim_qps = [0.0f64; 2]; // [uncapped, capped]
    let mut capped_olap_cores_max = 0.0f64;
    // The budget the capped run actually enforces: a `--tenants
    // olap:cap=N` override replaces the scenario default, and the check
    // below must gate on the effective value, not the constant.
    let mut effective_cap = ANTAGONIST_CAP;
    for (i, capped) in [false, true].into_iter().enumerate() {
        let label = if capped { "capped" } else { "uncapped" };
        let cfg = config(spec, capped, scale)?;
        if capped {
            effective_cap = cfg
                .tenants
                .iter()
                .find(|t| t.name == "olap")
                .and_then(|t| t.sla.max_cores)
                .unwrap_or(ANTAGONIST_CAP);
        }
        let out = run_tenants(cfg, &data);
        let steady = out.tenant("steady").expect("steady tenant present");
        let olap = out.tenant("olap").expect("olap tenant present");
        let (from, to) = overlap(steady, olap);
        victim_qps[i] = steady.qps_between(from, to);
        if capped {
            capped_olap_cores_max = olap.cores_max();
        }
        for t in &out.tenants {
            table.row(tenant_row(label, t, from, to));
        }
        eprintln!(
            "mt_interference[{label}]: victim {:.2} q/s (cov {:.3}), antagonist {:.2} q/s, \
             arbiter denials={} yields={}",
            victim_qps[i],
            steady.qps_cov_between(from, to).unwrap_or(0.0),
            olap.qps_between(from, to),
            out.arbiter_denials,
            out.arbiter_yields,
        );
    }
    emit(spec, &table, "mt_interference.csv");

    if spec.check {
        let [uncapped, capped] = victim_qps;
        if capped < uncapped * STABILITY_BOUND {
            return Err(format!(
                "victim throughput under SLA caps ({capped:.2} q/s) fell below \
                 {STABILITY_BOUND}× the uncapped run ({uncapped:.2} q/s)"
            )
            .into());
        }
        if capped_olap_cores_max > effective_cap as f64 {
            return Err(format!(
                "capped antagonist exceeded its budget: {capped_olap_cores_max} cores > \
                 {effective_cap}"
            )
            .into());
        }
    }
    Ok(())
}
