//! `serve_latency_curve` — p50/p95/p99 latency and goodput vs offered
//! load, for the three front-door configurations (static OS baseline,
//! adaptive mechanism, adaptive + admission control).
//!
//! Offered load sweeps {0.5, 1.0, 1.5, 2.0}× the measured closed-loop
//! capacity C, crossing saturation on purpose: below C the three series
//! agree, past C the unprotected series drown in backlog (infinite p99
//! from requests that never finish inside the window) while admission
//! control sheds the excess and keeps the tail bounded.
//!
//! With `check=1`, the 2.0×C point gates the headline claim: the
//! adaptive policy with admission achieves strictly higher goodput and
//! a bounded p99 (finite, below the no-admission baseline's) than the
//! static OS baseline. A pinned `arrival=` replaces the sweep with that
//! single offered load; the gate then requires it to be ≥1.5×C.

use super::serve::{
    headline_violation, horizon_of, probe, row, run_point, schedule_of, series, sla_of, ROW_FIELDS,
    ROW_HEADER, SERVE_DEFAULT_SF,
};
use super::ScenarioResult;
use emca_harness::ExperimentSpec;
use emca_metrics::table::Table;
use volcano_db::tpch::TpchData;

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[("serve_latency_curve.csv", ROW_HEADER)];

/// The offered-load multipliers of the sweep.
pub const MULTS: &[f64] = &[0.5, 1.0, 1.5, 2.0];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let data = TpchData::generate(spec.scale(SERVE_DEFAULT_SF));
    let p = probe(spec, &data);
    let sla = sla_of(spec, &p);
    let horizon = horizon_of(spec);
    eprintln!(
        "[serve] probed capacity C={:.1} req/s, unloaded mean {:.2} ms, sla {:.1} ms, window {:.2} s",
        p.capacity_qps,
        p.mean_ms,
        sla.as_millis_f64(),
        horizon.as_secs_f64()
    );

    // A pinned arrival replaces the multiplier sweep with one point.
    let sweep: Vec<(String, f64)> = match spec.arrival {
        Some(_) => vec![("pinned".to_string(), 0.0)],
        None => MULTS
            .iter()
            .map(|m| (format!("{m}"), m * p.capacity_qps))
            .collect(),
    };

    // emca-lint: allow(schema-sync) — header is serve::ROW_FIELDS, declared as serve::ROW_HEADER; serve.rs's row_header_matches_fields test pins their agreement
    let mut table = Table::new(
        "serve_latency_curve — latency and goodput vs offered load",
        ROW_FIELDS,
    );
    let mut gate_pair = None;
    for (label, lambda) in &sweep {
        let schedule = schedule_of(spec, *lambda, horizon).map_err(|e| e.to_string())?;
        let mut os_out = None;
        let mut admitted_out = None;
        for s in series(spec) {
            let out = run_point(spec, &data, &s, schedule.clone(), sla);
            eprintln!(
                "[serve] mult={label} {}: {}/{} completed, goodput {:.1} qps, p99 {}",
                s.name,
                out.count(emca_harness::RequestOutcome::Completed),
                out.offered,
                out.goodput_qps(),
                super::serve::cell(out.latency_percentile_ms(0.99)),
            );
            table.row(row(&s, label, &out));
            match s.name {
                "os" => os_out = Some(out),
                "admitted" => admitted_out = Some(out),
                _ => {}
            }
        }
        // The gate judges the hottest sweep point (or the pinned one).
        let offered = schedule.offered_qps();
        let is_gate_point = match spec.arrival {
            Some(_) => true,
            None => (label.as_str(), lambda) == sweep.last().map(|(l, m)| (l.as_str(), m)).unwrap(),
        };
        if is_gate_point {
            gate_pair = Some((offered, os_out.unwrap(), admitted_out.unwrap()));
        }
    }
    crate::emit(spec, &table, "serve_latency_curve.csv");

    if spec.check {
        let (offered, os_out, admitted_out) = gate_pair.expect("sweep is never empty");
        if offered < 1.5 * p.capacity_qps {
            return Err(format!(
                "check=1 needs a past-saturation point: offered {offered:.1} req/s is below \
                 1.5×C ({:.1} req/s)",
                1.5 * p.capacity_qps
            )
            .into());
        }
        if let Some(why) = headline_violation(&os_out, &admitted_out) {
            return Err(format!(
                "headline claim failed at {offered:.1} req/s offered ({:.2}×C): {why}",
                offered / p.capacity_qps
            )
            .into());
        }
        eprintln!(
            "[serve] headline claim holds at {offered:.1} req/s offered ({:.2}×C)",
            offered / p.capacity_qps
        );
    }
    Ok(())
}
