//! Headline summary table (§I / §VII): maximum and average speedup and
//! HT/IMC traffic-ratio reduction of the mechanism policy vs the OS
//! scheduler, for both engine flavors, plus the total energy saving —
//! side by side with the paper's reported numbers.
//!
//! With `check=1` (CLI `--check`, env `EMCA_CHECK=1`) the scenario also
//! *enforces* the headline claims (the CI fidelity gate): policy max and
//! avg speedup must exceed 1.0× for both flavors, and every HT/IMC
//! reduction must either be below-noise (`inf`) or sit inside the
//! sanity band [`REDUCTION_BAND`]. Violations are reported as a
//! scenario error (non-zero exit).

use super::{figure_scale, ScenarioResult};
use crate::emit;
use emca_harness::{report, run as run_config, Alloc, ExperimentSpec, RunConfig};
use emca_metrics::stats;
use emca_metrics::table::{fnum, Table};
use numa_sim::{EnergyModel, HtImcReduction};
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[("tab_summary.csv", "flavor,metric,measured,paper")];

/// Sanity band for *finite* HT/IMC reductions: below 1.2 the mechanism
/// is not meaningfully reducing interconnect traffic; above 50 the
/// baseline itself is suspect (the paper measures 2.5–3.9×).
pub const REDUCTION_BAND: (f64, f64) = (1.2, 50.0);

/// Aggregate of per-tag reductions: the maximum/mean over finite values
/// plus whether any tag was below noise.
struct ReductionSummary {
    max: Option<HtImcReduction>,
    avg: Option<HtImcReduction>,
}

fn summarize(reductions: &[HtImcReduction]) -> ReductionSummary {
    let finite: Vec<f64> = reductions.iter().filter_map(|r| r.finite()).collect();
    let below_noise = reductions.len() - finite.len();
    let max = if below_noise > 0 {
        // An unbounded reduction dominates any finite one.
        Some(HtImcReduction::BelowNoise)
    } else {
        stats::max(&finite).map(HtImcReduction::Finite)
    };
    // The average is dominated by below-noise tags once they are the
    // majority: averaging only the finite minority would under-report
    // (and could spuriously fail the sanity band) when the mechanism
    // eliminated remote traffic for most queries.
    let avg = if below_noise * 2 >= reductions.len() && below_noise > 0 {
        Some(HtImcReduction::BelowNoise)
    } else {
        stats::mean(&finite).map(HtImcReduction::Finite)
    };
    ReductionSummary { max, avg }
}

fn render(r: Option<&HtImcReduction>) -> String {
    r.map(|r| r.to_string()).unwrap_or_default()
}

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let users = spec.users_or(64);
    let iters = spec.iters_or(6);
    let check = spec.check;
    let data = TpchData::generate(scale);
    eprintln!("tab_summary: sf={} users={users} iters={iters}", scale.sf);
    let specs: Vec<QuerySpec> = (1..=22)
        .flat_map(|n| {
            (0..4).map(move |v| QuerySpec::Tpch {
                number: n,
                variant: v,
            })
        })
        .collect();
    let workload = Workload::Mixed {
        specs,
        iterations: iters,
        seed: 7,
    };

    let mut t = Table::new(
        "Summary — adaptive vs OS (paper values in parentheses)",
        &["flavor", "metric", "measured", "paper"],
    );
    let model = EnergyModel::opteron_8387();
    let mut violations: Vec<String> = Vec::new();
    for (flavor, paper_speed_max, paper_speed_avg, paper_ratio_max, paper_ratio_avg) in [
        (Flavor::MonetDb, "1.53", "1.29", "3.87", "2.47"),
        (Flavor::SqlServer, "1.27", "1.14", "3.70", "2.57"),
    ] {
        let os = run_config(
            spec.apply(
                RunConfig::new(Alloc::OsAll, users, workload.clone())
                    .with_scale(scale)
                    .with_flavor(flavor),
            ),
            &data,
        );
        let ad = run_config(
            spec.apply(
                RunConfig::new(spec.mech_alloc(), users, workload.clone())
                    .with_scale(scale)
                    .with_flavor(flavor),
            ),
            &data,
        );
        let speedups: Vec<f64> = report::speedup_by_tag(&os.results, &ad.results)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        let os_tags = report::by_tag(&os.results);
        let ad_tags: emca_metrics::FxHashMap<u32, report::TagStats> =
            report::by_tag(&ad.results).into_iter().collect();
        let reductions: Vec<HtImcReduction> = os_tags
            .iter()
            .filter_map(|(tag, o)| {
                let a = ad_tags.get(tag)?;
                HtImcReduction::compare(o.mean_ht_imc, a.mean_ht_imc)
            })
            .collect();
        let reduction = summarize(&reductions);
        let fname = match flavor {
            Flavor::MonetDb => "MonetDB",
            Flavor::SqlServer => "SQL Server",
        };
        let max_speedup = stats::max(&speedups);
        let avg_speedup = stats::mean(&speedups);
        t.row(vec![
            fname.into(),
            "max speedup".into(),
            max_speedup.map(|v| fnum(v, 2)).unwrap_or_default(),
            paper_speed_max.into(),
        ]);
        t.row(vec![
            fname.into(),
            "avg speedup".into(),
            avg_speedup.map(|v| fnum(v, 2)).unwrap_or_default(),
            paper_speed_avg.into(),
        ]);
        t.row(vec![
            fname.into(),
            "max HT/IMC reduction".into(),
            render(reduction.max.as_ref()),
            paper_ratio_max.into(),
        ]);
        t.row(vec![
            fname.into(),
            "avg HT/IMC reduction".into(),
            render(reduction.avg.as_ref()),
            paper_ratio_avg.into(),
        ]);
        if flavor == Flavor::MonetDb {
            let e_os: f64 = report::energy_by_tag(&os.results, &model, 4)
                .iter()
                .map(|(_, e)| e.total())
                .sum();
            let e_ad: f64 = report::energy_by_tag(&ad.results, &model, 4)
                .iter()
                .map(|(_, e)| e.total())
                .sum();
            t.row(vec![
                fname.into(),
                "total energy saving %".into(),
                fnum(stats::saving_pct(e_os, e_ad).unwrap_or(0.0), 2),
                "26.05".into(),
            ]);
        }

        // Fidelity gate (check=1): the headline claims must hold.
        if check {
            match max_speedup {
                Some(v) if v > 1.0 => {}
                v => violations.push(format!("{fname}: adaptive max speedup {v:?} ≤ 1.0")),
            }
            match avg_speedup {
                Some(v) if v > 1.0 => {}
                v => violations.push(format!("{fname}: adaptive avg speedup {v:?} ≤ 1.0")),
            }
            // `max` is BelowNoise exactly when any tag eliminated its
            // remote traffic; a low *finite* average then just reflects
            // the non-eliminated minority, not a failing mechanism, so
            // only the upper band bound applies in that case.
            let any_below_noise = matches!(reduction.max, Some(HtImcReduction::BelowNoise));
            for agg in [&reduction.max, &reduction.avg] {
                match agg {
                    Some(HtImcReduction::Finite(v))
                        if *v > REDUCTION_BAND.1 || (*v < REDUCTION_BAND.0 && !any_below_noise) =>
                    {
                        violations.push(format!(
                            "{fname}: HT/IMC reduction {v:.2} outside sanity band \
                             [{}, {}]",
                            REDUCTION_BAND.0, REDUCTION_BAND.1
                        ));
                    }
                    Some(_) => {}
                    None => violations.push(format!("{fname}: no HT/IMC reduction measurable")),
                }
            }
        }
    }
    emit(spec, &t, "tab_summary.csv");
    if check {
        if violations.is_empty() {
            eprintln!("fidelity check: headline claims hold");
        } else {
            for v in &violations {
                eprintln!("fidelity violation: {v}");
            }
            return Err(format!("{} fidelity violation(s)", violations.len()).into());
        }
    }
    Ok(())
}
