//! Fig. 6 — Tomograph view of Q6: per-MAL-operator calls and total time
//! across the worker threads.

use super::{figure_scale, ScenarioResult};
use crate::emit;
use emca_harness::{report, run as run_config, Alloc, ExperimentSpec, RunConfig};
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[("fig06_tomograph.csv", "operator,calls,total_time")];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let data = TpchData::generate(scale);
    eprintln!("fig06: sf={}", scale.sf);
    let out = run_config(
        spec.apply(
            RunConfig::new(
                Alloc::OsAll,
                1, // single client: pinned by the figure's definition
                Workload::Repeat {
                    spec: QuerySpec::Q6 { variant: 0 },
                    iterations: 1,
                },
            )
            .with_scale(scale),
        ),
        &data,
    );
    let table =
        report::render_tomograph("Fig. 6 — Tomograph of Q6 (operator calls and time)", &out);
    emit(spec, &table, "fig06_tomograph.csv");
    Ok(())
}
