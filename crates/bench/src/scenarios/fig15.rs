//! Fig. 15 — L3 cache misses per socket at selectivities 2–100 % of the
//! thetasubselect with 256 concurrent clients, per allocation policy.

use super::{figure_scale, ScenarioResult};
use crate::emit;
use emca_harness::{run as run_config, ExperimentSpec, RunConfig};
use emca_metrics::table::Table;
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "fig15_selectivity.csv",
    "selectivity_pct,policy,l3_misses_S0,l3_misses_S1,l3_misses_S2,l3_misses_S3,total",
)];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let users = spec.users_or(256);
    let iters = spec.iters_or(2);
    let data = TpchData::generate(scale);
    eprintln!("fig15: sf={} users={users} iters={iters}", scale.sf);

    let mut t = Table::new(
        "Fig. 15 — L3 load misses vs selectivity (256 clients)",
        &[
            "selectivity_pct",
            "policy",
            "l3_misses_S0",
            "l3_misses_S1",
            "l3_misses_S2",
            "l3_misses_S3",
            "total",
        ],
    );
    for sel in [2u8, 4, 8, 16, 32, 64, 100] {
        for alloc in spec.alloc_sweep() {
            let out = run_config(
                spec.apply(
                    RunConfig::new(
                        alloc,
                        users,
                        Workload::Repeat {
                            spec: QuerySpec::ThetaSubselect { sel_pct: sel },
                            iterations: iters,
                        },
                    )
                    .with_scale(scale),
                ),
                &data,
            );
            let l3 = out.l3_misses_per_socket();
            let mut row = vec![sel.to_string(), alloc.label(Flavor::MonetDb)];
            row.extend(l3.iter().map(|m| m.to_string()));
            row.push(l3.iter().sum::<u64>().to_string());
            t.row(row);
        }
    }
    emit(spec, &t, "fig15_selectivity.csv");
    Ok(())
}
