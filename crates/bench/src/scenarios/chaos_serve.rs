//! `chaos_serve` — the full serving stack under fire, past saturation.
//!
//! One open-loop point at 1.5× the probed capacity, admitted through a
//! concurrency limit, with the fault plane armed: poisoned queries
//! (`badquery`) plus a mid-horizon worker kill (by default; a pinned
//! `faults=` spec overrides the plan). The serving side runs its full
//! resilience kit — retries with deterministic jittered backoff for
//! worker deaths, a per-request deadline at 4× the SLA covering every
//! attempt, and a drain at least as long as the deadline so every
//! dispatched request resolves inside the window.
//!
//! With `check=1` (the CI chaos gate, both backends):
//!
//! - **accounting exact** — completed + shed + unfinished + failed
//!   equals offered, nothing pending;
//! - **admitted p99 finite** — faults must not unbound the latency of
//!   the admitted series;
//! - **failures are explicit** — with `badquery` armed some requests
//!   fail, each carrying its error; with a deadline ≥ drain there are
//!   no unfinished stragglers.

use super::serve::{cell, horizon_of, probe, schedule_of, sla_of, SERVE_DEFAULT_SF, SERVE_KEYS};
use super::ScenarioResult;
use emca_harness::{
    run_serve, AdmissionSpec, ExperimentSpec, RequestOutcome, RetryPolicy, RunConfig, ServeConfig,
};
use emca_metrics::table::Table;
use emca_metrics::SimDuration;
use volcano_db::client::Workload;
use volcano_db::exec::FaultPlan;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Column list of the chaos-serve CSV.
pub const ROW_FIELDS: &[&str] = &[
    "backend",
    "offered_mult",
    "offered",
    "completed",
    "failed",
    "retried",
    "shed_gate",
    "shed_timeout",
    "unfinished",
    "recoveries",
    "mttr_ms",
    "goodput_qps",
    "p50_ms",
    "p99_ms",
    "wall_s",
];

/// [`ROW_FIELDS`] as the declared CSV header line.
pub const ROW_HEADER: &str = "backend,offered_mult,offered,completed,failed,retried,shed_gate,\
shed_timeout,unfinished,recoveries,mttr_ms,goodput_qps,p50_ms,p99_ms,wall_s";

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[("chaos_serve.csv", ROW_HEADER)];

/// Offered load as a multiple of the probed capacity.
pub const DEFAULT_MULT: f64 = 1.5;

/// Spec keys: the serve set plus `faults`.
pub const CHAOS_SERVE_KEYS: &[&str] = &[
    "sf",
    "flavor",
    "policy",
    "warmup",
    "guard",
    "interval_ms",
    "backend",
    "arrival",
    "duration",
    "admission",
    "sla_ms",
    "faults",
];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    debug_assert!(SERVE_KEYS.iter().all(|k| CHAOS_SERVE_KEYS.contains(k)));
    let data = TpchData::generate(spec.scale(SERVE_DEFAULT_SF));
    let p = probe(spec, &data);
    let sla = sla_of(spec, &p);
    let horizon = horizon_of(spec);
    let schedule =
        schedule_of(spec, DEFAULT_MULT * p.capacity_qps, horizon).map_err(|e| e.to_string())?;
    let plan = match &spec.faults {
        Some(f) => f.clone(),
        None => FaultPlan::default()
            .with_badquery(0.02)
            .with_kill(0, horizon.mul_f64(0.5)),
    };
    let deadline = sla.mul_f64(4.0);
    eprintln!(
        "[chaos_serve] C={:.1} req/s, offering {:.1} req/s over {:.2}s under `{plan}`, \
         sla {:.1} ms, deadline {:.1} ms",
        p.capacity_qps,
        schedule.offered_qps(),
        horizon.as_secs_f64(),
        sla.as_millis_f64(),
        deadline.as_millis_f64()
    );

    let mut base = spec.apply(
        RunConfig::new(
            spec.mech_alloc(),
            0,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 0,
            },
        )
        .with_scale(data.scale)
        .with_faults(plan),
    );
    if let Some(f) = spec.flavor {
        base = base.with_flavor(f);
    }
    let admission = spec.admission.unwrap_or(AdmissionSpec::Limit {
        max_inflight: 16,
        queue: Some(64),
    });
    let cfg = ServeConfig {
        base,
        schedule,
        admission,
        sla,
        // Drain ≥ deadline: every dispatched request resolves in-window.
        drain: deadline.max(SimDuration::from_millis(250)),
        retry: Some(RetryPolicy::default_chaos()),
        request_deadline: Some(deadline),
    };
    let out = run_serve(&cfg, &data);

    let completed = out.count(RequestOutcome::Completed);
    let failed = out.count(RequestOutcome::Failed);
    let shed_gate = out.count(RequestOutcome::ShedGate);
    let shed_timeout = out.count(RequestOutcome::ShedTimeout);
    let unfinished = out.count(RequestOutcome::Unfinished);
    let pending = out.count(RequestOutcome::Pending);
    let retried = out.records.iter().filter(|r| r.attempts > 1).count();
    let p50 = out.latency_percentile_ms(0.5);
    let p99 = out.latency_percentile_ms(0.99);
    eprintln!(
        "[chaos_serve] {completed} completed, {failed} failed ({retried} retried), \
         {} shed, {unfinished} unfinished, {} recoveries, p99 {}",
        shed_gate + shed_timeout,
        out.engine.engine_recoveries,
        cell(p99)
    );

    let mut table = Table::new("chaos_serve — serving under injected faults", ROW_FIELDS);
    let mttr = out.engine.mttr_ms();
    table.row(vec![
        cfg.base.backend.to_string(),
        match spec.arrival {
            Some(_) => "pinned".to_string(),
            None => format!("{DEFAULT_MULT}"),
        },
        out.offered.to_string(),
        completed.to_string(),
        failed.to_string(),
        retried.to_string(),
        shed_gate.to_string(),
        shed_timeout.to_string(),
        unfinished.to_string(),
        out.engine.engine_recoveries.to_string(),
        if mttr.is_finite() {
            format!("{mttr:.3}")
        } else {
            "0.000".to_string()
        },
        cell(out.goodput_qps()),
        cell(p50),
        cell(p99),
        format!("{:.3}", out.wall.as_secs_f64()),
    ]);
    crate::emit(spec, &table, "chaos_serve.csv");

    if spec.check {
        let resolved = completed + failed + shed_gate + shed_timeout + unfinished;
        if resolved != out.offered || pending != 0 {
            return Err(format!(
                "accounting must be exact: {resolved} resolved + {pending} pending \
                 of {} offered",
                out.offered
            )
            .into());
        }
        if !p99.is_finite() {
            return Err(format!(
                "admitted p99 must stay finite under faults, got {}",
                cell(p99)
            )
            .into());
        }
        if unfinished != 0 {
            return Err(format!(
                "with drain ≥ deadline every dispatched request must resolve, \
                 {unfinished} still unfinished"
            )
            .into());
        }
        if let Some(r) = out
            .records
            .iter()
            .find(|r| r.outcome == RequestOutcome::Failed && r.error.is_none())
        {
            return Err(format!(
                "a failed request must carry its error (arrival {:?})",
                r.arrival
            )
            .into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{ROW_FIELDS, ROW_HEADER};

    #[test]
    fn row_header_matches_fields() {
        assert_eq!(ROW_FIELDS.join(","), ROW_HEADER);
    }
}
