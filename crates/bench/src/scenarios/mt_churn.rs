//! `mt_churn` — serverless tenant churn at 64+ tenants: adaptive
//! arbitration vs a static partitioner.
//!
//! A seeded [`ChurnPlan`] (default `churn=64:resident=12`) drives
//! tenants through the machine: Zipf-skewed demand, scattered arrivals,
//! admission queueing at the resident cap, departure reclaim. The same
//! plan runs twice — once under the elastic arbiter (fair-share mode),
//! once under a static partitioner that pins each resident slot to a
//! fixed 1/cap slice — and the CSV reports one row per run.
//!
//! With `check=1` the headline gates are enforced:
//!
//! - **zero lost queries**: both runs complete exactly the plan's
//!   expected completions across every arrival/departure;
//! - **throughput**: adaptive aggregate throughput ≥ static (a 10 %
//!   noise allowance on the `threads` backend, where walls are host
//!   time);
//! - **tail fairness** (sim only — host p99 is too noisy on a shared
//!   runner): the worst per-tenant p99 response under adaptive ≤
//!   static (no tenant is starved into the tail);
//! - **decision cost**: the mean measured arbitration cost per control
//!   tick stays below the control interval.

use super::ScenarioResult;
use crate::emit;
use elastic_core::ArbiterMode;
use emca_harness::{
    run_tenants, ChurnPlan, ChurnSpec, ExperimentSpec, MultiTenantConfig, MultiTenantOutput,
};
use emca_metrics::table::{fnum, Table};
use emca_metrics::{SimDuration, SimTime};
use volcano_db::tpch::{TpchData, TpchScale};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "mt_churn.csv",
    "run,tenants,resident,aggregate_qps,worst_p99_ms,mean_queue_ms,lost,denials,yields,ticks,mean_tick_us",
)];

/// Default TPC-H scale factor of the churn scenarios: every tenant
/// loads its own copy, and the default population is 64 tenants.
pub const CHURN_DEFAULT_SF: f64 = 0.05;

/// Pinned control interval of both churn scenarios — also the bound the
/// decision-cost gate holds the measured arbitration tick under.
pub const CONTROL_INTERVAL: SimDuration = SimDuration::from_millis(2);

/// Summary metrics of one churn run.
pub(crate) struct ChurnRunStats {
    /// Total completions / wall (completions per second).
    pub aggregate_qps: f64,
    /// Worst per-tenant p99 response (ms) — the cross-tenant tail.
    pub worst_p99_ms: f64,
    /// Mean admission-queue wait (ms): admit time minus arrival time.
    pub mean_queue_ms: f64,
    /// Expected minus observed completions (0 = exact accounting).
    pub lost: i64,
    /// Mean measured arbitration cost per control tick (µs); 0 when no
    /// tick ran (the static baseline).
    pub mean_tick_us: f64,
}

/// Builds the shared churn config and runs one leg of the comparison.
pub(crate) fn run_churn(
    spec: &ExperimentSpec,
    plan: &ChurnPlan,
    scale: TpchScale,
    data: &TpchData,
    static_partition: bool,
) -> (MultiTenantOutput, ChurnRunStats) {
    let mut cfg = MultiTenantConfig::new(ArbiterMode::FairShare, plan.tenant_configs())
        .with_scale(scale)
        .with_mech_interval(CONTROL_INTERVAL)
        .with_sample_every(SimDuration::from_millis(1))
        .with_resident_cap(plan.resident)
        .with_backend(spec.backend);
    if let Some(f) = spec.flavor {
        cfg = cfg.with_flavor(f);
    }
    if static_partition {
        cfg = cfg.with_static_partition();
    }
    let out = run_tenants(cfg, data);

    let total: u64 = out.tenants.iter().map(|t| t.results.len() as u64).sum();
    let wall_s = out.wall.as_secs_f64();
    let aggregate_qps = if wall_s > 0.0 {
        total as f64 / wall_s
    } else {
        0.0
    };
    let worst_p99_ms = out
        .tenants
        .iter()
        .map(|t| t.response_percentile(0.99).as_millis_f64())
        .fold(0.0f64, f64::max);
    let queue_ms: f64 = out
        .tenants
        .iter()
        .map(|t| {
            t.started_at
                .since(SimTime::ZERO + t.config.start_after)
                .as_millis_f64()
        })
        .sum();
    let stats = ChurnRunStats {
        aggregate_qps,
        worst_p99_ms,
        mean_queue_ms: queue_ms / out.tenants.len().max(1) as f64,
        lost: plan.expected_completions() as i64 - total as i64,
        mean_tick_us: if out.arbiter_ticks > 0 {
            out.arbiter_ns as f64 / out.arbiter_ticks as f64 / 1000.0
        } else {
            0.0
        },
    };
    (out, stats)
}

/// The spec's churn plan (default `64:resident=12`), expanded at the
/// spec's seed and demand bounds.
pub(crate) fn churn_plan(spec: &ExperimentSpec) -> (ChurnSpec, ChurnPlan) {
    let churn = spec.churn.unwrap_or_else(|| {
        let mut c = ChurnSpec::new(64);
        c.resident = Some(12);
        c
    });
    let plan = churn.plan(spec.seed, spec.users_or(4), spec.iters_or(3));
    (churn, plan)
}

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = spec.scale(CHURN_DEFAULT_SF);
    let data = TpchData::generate(scale);
    let (churn, plan) = churn_plan(spec);
    eprintln!(
        "mt_churn: sf={} tenants={} resident={} expected_completions={}",
        scale.sf,
        churn.n,
        plan.resident,
        plan.expected_completions()
    );

    let mut table = Table::new(
        "mt_churn — adaptive arbitration vs static partitioning under churn",
        &[
            "run",
            "tenants",
            "resident",
            "aggregate_qps",
            "worst_p99_ms",
            "mean_queue_ms",
            "lost",
            "denials",
            "yields",
            "ticks",
            "mean_tick_us",
        ],
    );
    let mut runs = Vec::new();
    for (label, static_partition) in [("adaptive", false), ("static", true)] {
        let (out, stats) = run_churn(spec, &plan, scale, &data, static_partition);
        eprintln!(
            "mt_churn/{label}: {:.1} q/s aggregate, worst p99 {:.1} ms, \
             queue {:.0} ms mean, {} ticks at {:.2} µs",
            stats.aggregate_qps,
            stats.worst_p99_ms,
            stats.mean_queue_ms,
            out.arbiter_ticks,
            stats.mean_tick_us
        );
        table.row(vec![
            label.to_string(),
            churn.n.to_string(),
            plan.resident.to_string(),
            fnum(stats.aggregate_qps, 2),
            fnum(stats.worst_p99_ms, 2),
            fnum(stats.mean_queue_ms, 1),
            stats.lost.to_string(),
            out.arbiter_denials.to_string(),
            out.arbiter_yields.to_string(),
            out.arbiter_ticks.to_string(),
            fnum(stats.mean_tick_us, 2),
        ]);
        runs.push(stats);
    }
    emit(spec, &table, "mt_churn.csv");

    if spec.check {
        let (adaptive, static_) = (&runs[0], &runs[1]);
        // The comparative gates are strict on the deterministic sim
        // backend. On threads the walls and responses are measured host
        // time (same idea as the sim-only byte-replay gate in
        // chaos_recovery): throughput carries a 10 % noise allowance
        // and the tail comparison is judged on sim only — a shared CI
        // host makes per-query p99 swing severalfold run to run.
        let is_sim = spec.backend == emca_harness::Backend::Sim;
        let qps_floor = if is_sim { 1.0 } else { 0.90 };
        if adaptive.lost != 0 || static_.lost != 0 {
            return Err(format!(
                "lost queries across departures: adaptive {} static {}",
                adaptive.lost, static_.lost
            )
            .into());
        }
        if adaptive.aggregate_qps < static_.aggregate_qps * qps_floor {
            return Err(format!(
                "adaptive aggregate throughput {:.2} q/s below the static \
                 partitioner's {:.2} q/s",
                adaptive.aggregate_qps, static_.aggregate_qps
            )
            .into());
        }
        if is_sim && adaptive.worst_p99_ms > static_.worst_p99_ms {
            return Err(format!(
                "adaptive worst-tenant p99 {:.2} ms above the static \
                 partitioner's {:.2} ms",
                adaptive.worst_p99_ms, static_.worst_p99_ms
            )
            .into());
        }
        let interval_us = CONTROL_INTERVAL.as_nanos() as f64 / 1000.0;
        if adaptive.mean_tick_us >= interval_us {
            return Err(format!(
                "arbiter decision cost {:.2} µs/tick not below the control \
                 interval ({interval_us:.0} µs)",
                adaptive.mean_tick_us
            )
            .into());
        }
    }
    Ok(())
}
