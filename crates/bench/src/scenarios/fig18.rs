//! Fig. 18 — stable-phases workload: per-socket memory throughput over
//! time, where every phase is the concurrent execution of one TPC-H
//! query by all clients. Four panels: {OS, mechanism} × {MonetDB,
//! SQL Server}.

use super::{figure_scale, ScenarioResult};
use crate::emit;
use emca_harness::{report, run as run_config, Alloc, ExperimentSpec, RunConfig};
use emca_metrics::table::{fnum, Table};
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs (default-policy panel names).
pub const SCHEMAS: &[(&str, &str)] = &[
    ("fig18_adaptive-monetdb.csv", "time_s,S0,S1,S2,S3"),
    ("fig18_adaptive-sqlserver.csv", "time_s,S0,S1,S2,S3"),
    ("fig18_os_monetdb-monetdb.csv", "time_s,S0,S1,S2,S3"),
    ("fig18_os_sql server-sqlserver.csv", "time_s,S0,S1,S2,S3"),
    ("fig18_summary.csv", "panel,total_time_s,ht_GB,imc_GB,qps"),
];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let users = spec.users_or(64);
    let data = TpchData::generate(scale);
    eprintln!("fig18: sf={} users={users}", scale.sf);
    let specs: Vec<QuerySpec> = (1..=22)
        .map(|n| QuerySpec::Tpch {
            number: n,
            variant: 0,
        })
        .collect();

    let mut summary = Table::new(
        "Fig. 18 — stable phases summary",
        &["panel", "total_time_s", "ht_GB", "imc_GB", "qps"],
    );
    for (flavor, fname) in [
        (Flavor::MonetDb, "MonetDB"),
        (Flavor::SqlServer, "SQLServer"),
    ] {
        for alloc in [Alloc::OsAll, spec.mech_alloc()] {
            let out = run_config(
                spec.apply(
                    RunConfig::new(
                        alloc,
                        users,
                        Workload::StablePhases {
                            specs: specs.clone(),
                        },
                    )
                    .with_scale(scale)
                    .with_flavor(flavor),
                ),
                &data,
            );
            let label = format!("{}-{}", alloc.label(flavor).replace('/', "_"), fname);
            let series: Vec<&emca_metrics::TimeSeries> = out.imc_series.iter().collect();
            let table = report::render_series(
                &format!("Fig. 18 ({label}) per-socket memory throughput (GB/s)"),
                &series,
            );
            emit(spec, &table, &format!("fig18_{}.csv", label.to_lowercase()));
            summary.row(vec![
                label,
                fnum(out.wall.as_secs_f64(), 2),
                fnum(out.ht_bytes() as f64 / 1e9, 1),
                fnum(
                    out.imc_bytes_per_socket().iter().sum::<u64>() as f64 / 1e9,
                    1,
                ),
                fnum(out.throughput_qps(), 2),
            ]);
        }
    }
    emit(spec, &summary, "fig18_summary.csv");
    Ok(())
}
