//! Fig. 17 — single-client Q6 under the two PrT state-transition
//! strategies (CPU load vs HT/IMC ratio): response time, HT traffic and
//! per-socket L3 misses, per policy.

use super::{figure_scale, ScenarioResult};
use crate::emit;
use emca_harness::{run as run_config, ExperimentSpec, RunConfig};
use emca_metrics::table::{fnum, Table};
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs.
pub const SCHEMAS: &[(&str, &str)] = &[(
    "fig17_strategies.csv",
    "strategy,policy,response_s,ht_traffic_MBps,l3_misses_S0,l3_misses_S1,\
     l3_misses_S2,l3_misses_S3",
)];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    let scale = figure_scale(spec);
    let iters = spec.iters_or(5);
    let data = TpchData::generate(scale);
    eprintln!("fig17: sf={} iters={iters}", scale.sf);

    let mut t = Table::new(
        "Fig. 17 — CPU-load vs HT/IMC transition strategies (Q6, 1 client)",
        &[
            "strategy",
            "policy",
            "response_s",
            "ht_traffic_MBps",
            "l3_misses_S0",
            "l3_misses_S1",
            "l3_misses_S2",
            "l3_misses_S3",
        ],
    );
    for (strategy, metric) in [
        ("CPU load", elastic_core::MetricKind::CpuLoad),
        ("HT/IMC", elastic_core::MetricKind::HtImcRatio),
    ] {
        for alloc in spec.alloc_sweep() {
            let out = run_config(
                spec.apply(
                    RunConfig::new(
                        alloc,
                        1, // single client: pinned by the figure's definition
                        Workload::Repeat {
                            spec: QuerySpec::Q6 { variant: 0 },
                            iterations: iters,
                        },
                    )
                    .with_scale(scale)
                    .with_metric(metric),
                ),
                &data,
            );
            let l3 = out.l3_misses_per_socket();
            let mut row = vec![
                strategy.to_string(),
                alloc.label(Flavor::MonetDb),
                fnum(out.mean_response().as_secs_f64(), 4),
                fnum(out.ht_rate() / 1e6, 1),
            ];
            row.extend(l3.iter().map(|m| m.to_string()));
            t.row(row);
        }
    }
    emit(spec, &t, "fig17_strategies.csv");
    Ok(())
}
