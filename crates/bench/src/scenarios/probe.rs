//! Calibration probe: quick OS-vs-mechanism comparison plus real-time
//! cost measurement. Not a paper figure; used to sanity-check the
//! simulation before running the full harness. Prints only (no CSV).
//!
//! Extra diagnostics, deliberately probe-local (not [`ExperimentSpec`]
//! fields — they only shape this printout): `EMCA_WORKLOAD=mixed`
//! swaps the Q6 repeat for the mixed TPC-H workload (`q6` is the
//! default; anything else errors), `EMCA_DETAIL=1` prints per-tag
//! speedups and the allocation trajectory.

use super::ScenarioResult;
use emca_harness::{run as run_config, Alloc, ExperimentSpec, RunConfig};
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData};

/// Declared CSV outputs: none (diagnostic printout only).
pub const SCHEMAS: &[(&str, &str)] = &[];

/// Runs the scenario.
pub fn run(spec: &ExperimentSpec) -> ScenarioResult {
    // The probe's historical defaults: a fast sf=0.05 sanity pass.
    let scale = spec.scale(0.05);
    let clients = spec.users_or(64);
    let iters = spec.iters_or(2);

    eprintln!("generating sf={} ...", scale.sf);
    let t0 = std::time::Instant::now();
    let data = TpchData::generate(scale);
    eprintln!(
        "generated {} MB in {:?}",
        data.raw_bytes() / 1_000_000,
        t0.elapsed()
    );

    // Probe-local diagnostic knobs (not spec fields — they exist only
    // for this printout); a typo is an error, not a silent Q6 run.
    let mixed = match std::env::var("EMCA_WORKLOAD") {
        Err(_) => false,
        Ok(w) if w == "q6" => false,
        Ok(w) if w == "mixed" => true,
        Ok(w) => return Err(format!("EMCA_WORKLOAD must be q6|mixed, got {w:?}").into()),
    };
    let workload = if mixed {
        let specs: Vec<QuerySpec> = (1..=22)
            .flat_map(|n| {
                (0..4).map(move |v| QuerySpec::Tpch {
                    number: n,
                    variant: v,
                })
            })
            .collect();
        Workload::Mixed {
            specs,
            iterations: iters,
            seed: 7,
        }
    } else {
        Workload::Repeat {
            spec: QuerySpec::Q6 { variant: 0 },
            iterations: iters,
        }
    };
    let mut outputs = Vec::new();
    for alloc in [Alloc::OsAll, spec.mech_alloc(), Alloc::Dense, Alloc::Sparse] {
        let t0 = std::time::Instant::now();
        let out = run_config(
            spec.apply(RunConfig::new(alloc, clients, workload.clone()).with_scale(scale)),
            &data,
        );
        let real = t0.elapsed();
        let imc = out.imc_bytes_per_socket();
        let imc_total: u64 = imc.iter().sum();
        let l3 = out.l3_misses_per_socket();
        println!(
            "{:<10} wall={:>9} qps={:>7.2} ht={:>6.1}GB imc={:>6.1}GB imc_rate={:>5.2}GB/s imc/skt={:?} l3hit={:>5.1}% faults={:>7} steals={:>5} migr={:>6} cores_end={:>3}  [real {:?}]",
            format!("{alloc:?}"),
            format!("{}", out.wall),
            out.throughput_qps(),
            out.ht_bytes() as f64 / 1e9,
            imc_total as f64 / 1e9,
            out.wall.rate_per_sec(imc_total) / 1e9,
            imc.iter().map(|b| ((*b as f64 / 1e8).round() / 10.0) as f32).collect::<Vec<_>>(),
            {
                let hits: u64 = out.hw_after.l3_hits.iter().sum::<u64>()
                    - out.hw_before.l3_hits.iter().sum::<u64>();
                let misses: u64 = l3.iter().sum();
                100.0 * hits as f64 / (hits + misses).max(1) as f64
            },
            out.minor_faults(),
            out.sched.steals,
            out.sched.migrations,
            out.cores_series.last().map(|(_, v)| v).unwrap_or(0.0),
            real,
        );
        outputs.push(out);
    }
    // Per-tag speedup detail (OS vs mechanism), enabled by EMCA_DETAIL=1.
    if std::env::var("EMCA_DETAIL").as_deref() == Ok("1") {
        use emca_harness::report;
        let os = &outputs[0];
        let ad = &outputs[1];
        let os_tags = report::by_tag(&os.results);
        let ad_tags: emca_metrics::FxHashMap<u32, report::TagStats> =
            report::by_tag(&ad.results).into_iter().collect();
        println!("\n tag     n  os_resp_ms  ad_resp_ms  speedup  os_htimc  ad_htimc");
        for (tag, o) in &os_tags {
            let Some(a) = ad_tags.get(tag) else { continue };
            println!(
                "{tag:>4} {:>5}  {:>10.2}  {:>10.2}  {:>7.2}  {:>8.3}  {:>8.3}",
                o.n,
                o.mean_response.as_secs_f64() * 1e3,
                a.mean_response.as_secs_f64() * 1e3,
                o.mean_response.as_secs_f64() / a.mean_response.as_secs_f64(),
                o.mean_ht_imc,
                a.mean_ht_imc,
            );
        }
        println!("\nadaptive cores over time (sampled):");
        let s = ad.cores_series.samples();
        let step = (s.len() / 40).max(1);
        for (at, v) in s.iter().step_by(step) {
            println!("  {:>8.3}s  {v:>4.1}", at.as_secs_f64());
        }
    }
    Ok(())
}
