//! Fig. 5 — lifespan and core migration of the threads spawned for a
//! single-client Q6 under the plain OS scheduler with all 16 cores.

use emca_bench::{emit, env_sf};
use emca_harness::{report, run, Alloc, RunConfig};
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData};

fn main() {
    let scale = env_sf();
    let data = TpchData::generate(scale);
    eprintln!("fig05: sf={}", scale.sf);
    let out = run(
        RunConfig::new(
            Alloc::OsAll,
            1,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 1,
            },
        )
        .with_scale(scale)
        .with_trace(),
        &data,
    );
    let trace = out.trace.as_ref().expect("tracing enabled");
    let topo = numa_sim::Topology::opteron_4x4();
    let table =
        report::render_migration_map("Fig. 5 — OS/MonetDB thread migration map", trace, &topo);
    let (threads, migrations) = report::migration_summary(trace);
    emit(&table, "fig05_migration_os.csv");
    println!("threads traced: {threads}, total core migrations: {migrations}");
}
