//! Deprecated shim for Fig. 5: the scenario now lives in
//! `emca_bench::scenarios::fig05` and is driven by `emca run fig05`.
//! The shim keeps existing invocations working: default outputs are
//! byte-identical, and the documented `EMCA_*` fallbacks are honoured —
//! now via the shared spec parser, so malformed values are hard errors
//! (exit 2) and the newer fallbacks (`EMCA_POLICY`, `EMCA_FLAVOR`,
//! `EMCA_WARMUP`, `EMCA_GUARD`, `EMCA_INTERVAL_MS`, `EMCA_OUT_DIR`)
//! apply here too.

fn main() {
    emca_bench::shim_main("fig05");
}
