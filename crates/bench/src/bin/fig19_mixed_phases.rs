//! Fig. 19 — mixed-phases workload: per-query speedup of the adaptive
//! mode over the OS scheduler and per-query HT/IMC ratios for all four
//! policies, on both engine flavors.

use emca_bench::{emit, env_clients, env_iters, env_sf};
use emca_harness::{report, run, Alloc, RunConfig, RunOutput};
use emca_metrics::table::{fnum, Table};
use emca_metrics::FxHashMap;
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::{QuerySpec, TpchData};

fn mixed(iters: u32) -> Workload {
    let specs: Vec<QuerySpec> = (1..=22)
        .flat_map(|n| {
            (0..4).map(move |v| QuerySpec::Tpch {
                number: n,
                variant: v,
            })
        })
        .collect();
    Workload::Mixed {
        specs,
        iterations: iters,
        seed: 7,
    }
}

fn panel(
    flavor: Flavor,
    users: usize,
    iters: u32,
    data: &TpchData,
    scale: volcano_db::tpch::TpchScale,
) -> Table {
    let outputs: Vec<RunOutput> = Alloc::all()
        .into_iter()
        .map(|alloc| {
            run(
                RunConfig::new(alloc, users, mixed(iters))
                    .with_scale(scale)
                    .with_flavor(flavor),
                data,
            )
        })
        .collect();
    let fname = match flavor {
        Flavor::MonetDb => "MonetDB",
        Flavor::SqlServer => "SQL Server",
    };
    let mut t = Table::new(
        format!("Fig. 19 ({fname}) — per-query speedup and HT/IMC ratio"),
        &[
            "query",
            "speedup_adaptive",
            "ratio_OS",
            "ratio_Dense",
            "ratio_Sparse",
            "ratio_Adaptive",
        ],
    );
    let speedups: FxHashMap<u32, f64> =
        report::speedup_by_tag(&outputs[0].results, &outputs[3].results)
            .into_iter()
            .collect();
    let per_alloc: Vec<FxHashMap<u32, report::TagStats>> = outputs
        .iter()
        .map(|o| report::by_tag(&o.results).into_iter().collect())
        .collect();
    for q in 1..=22u32 {
        let ratio = |i: usize| {
            per_alloc[i]
                .get(&q)
                .map(|s| fnum(s.mean_ht_imc, 3))
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            format!("Q{q}"),
            speedups
                .get(&q)
                .map(|s| fnum(*s, 2))
                .unwrap_or_else(|| "-".into()),
            ratio(0),
            ratio(1),
            ratio(2),
            ratio(3),
        ]);
    }
    t
}

fn main() {
    let scale = env_sf();
    let users = env_clients(64);
    let iters = env_iters(6);
    let data = TpchData::generate(scale);
    eprintln!("fig19: sf={} users={users} iters={iters}", scale.sf);

    let monetdb = panel(Flavor::MonetDb, users, iters, &data, scale);
    emit(&monetdb, "fig19_monetdb.csv");
    let sqlserver = panel(Flavor::SqlServer, users, iters, &data, scale);
    emit(&sqlserver, "fig19_sqlserver.csv");
}
