//! `results/` CSV schema check (CI early job): validates that every
//! committed results file for the 16 figure/table binaries exists, has
//! the expected header, and that every data row matches the header's
//! column count. Catches truncated writes and accidental schema drift
//! before the expensive jobs run.
//!
//! Exits 0 when everything validates, 1 with a per-file diagnostic
//! otherwise.

use std::path::Path;

/// Expected header per committed results CSV (filename → header).
const SCHEMAS: &[(&str, &str)] = &[
    (
        "ablation.csv",
        "variant,qps,ht_GB,faults,cores_mean,transitions",
    ),
    (
        "fig04_q6_users.csv",
        "users,series,throughput_qps,minor_faults_per_s,ht_traffic_MBps",
    ),
    (
        "fig05_migration_os.csv",
        "thread,name_hint,core,node,start_ms,end_ms",
    ),
    ("fig06_tomograph.csv", "operator,calls,total_time"),
    (
        "fig07_transitions.csv",
        "time_s,transition,state,u,cpu_load_pct,cores",
    ),
    (
        "fig13_sched_metrics.csv",
        "users,policy,throughput_qps,cpu_load_pct,tasks,stolen_tasks,cores_mean",
    ),
    (
        "fig14_memory_metrics.csv",
        "policy,l3_misses_S0,l3_misses_S1,l3_misses_S2,l3_misses_S3,\
         mem_tp_S0_GBps,mem_tp_S1_GBps,mem_tp_S2_GBps,mem_tp_S3_GBps,ht_traffic_GBps",
    ),
    (
        "fig15_selectivity.csv",
        "selectivity_pct,policy,l3_misses_S0,l3_misses_S1,l3_misses_S2,l3_misses_S3,total",
    ),
    (
        "fig16_migration_adaptive.csv",
        "thread,name_hint,core,node,start_ms,end_ms",
    ),
    (
        "fig16_migration_dense.csv",
        "thread,name_hint,core,node,start_ms,end_ms",
    ),
    (
        "fig16_migration_os_monetdb.csv",
        "thread,name_hint,core,node,start_ms,end_ms",
    ),
    (
        "fig16_migration_sparse.csv",
        "thread,name_hint,core,node,start_ms,end_ms",
    ),
    ("fig16_summary.csv", "policy,threads,migrations,spans"),
    (
        "fig17_strategies.csv",
        "strategy,policy,response_s,ht_traffic_MBps,l3_misses_S0,l3_misses_S1,\
         l3_misses_S2,l3_misses_S3",
    ),
    ("fig18_adaptive-monetdb.csv", "time_s,S0,S1,S2,S3"),
    ("fig18_adaptive-sqlserver.csv", "time_s,S0,S1,S2,S3"),
    ("fig18_os_monetdb-monetdb.csv", "time_s,S0,S1,S2,S3"),
    ("fig18_os_sql server-sqlserver.csv", "time_s,S0,S1,S2,S3"),
    ("fig18_summary.csv", "panel,total_time_s,ht_GB,imc_GB,qps"),
    (
        "fig19_monetdb.csv",
        "query,speedup_adaptive,ratio_OS,ratio_Dense,ratio_Sparse,ratio_Adaptive",
    ),
    (
        "fig19_sqlserver.csv",
        "query,speedup_adaptive,ratio_OS,ratio_Dense,ratio_Sparse,ratio_Adaptive",
    ),
    (
        "fig20_energy.csv",
        "query,os_cpu_J,os_ht_J,adaptive_cpu_J,adaptive_ht_J,cpu_saving_pct,ht_saving_pct",
    ),
    (
        "tab_overhead.csv",
        "mode,paper_token_flow_s,simulated_actuation_s,our_prt_step_us",
    ),
    ("tab_summary.csv", "flavor,metric,measured,paper"),
];

/// Counts RFC-4180-ish CSV fields (the quoting `Table::to_csv` emits).
fn n_fields(line: &str) -> usize {
    let mut n = 1;
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => n += 1,
            _ => {}
        }
    }
    n
}

fn main() {
    let dir = emca_harness::results_path("");
    let mut problems: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for (name, header) in SCHEMAS {
        let path: &Path = &dir.join(name);
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                problems.push(format!("{name}: unreadable ({e})"));
                continue;
            }
        };
        let mut lines = content.lines();
        match lines.next() {
            Some(first) if first == *header => {}
            Some(first) => {
                problems.push(format!(
                    "{name}: header mismatch\n  expected: {header}\n  found:    {first}"
                ));
                continue;
            }
            None => {
                problems.push(format!("{name}: empty file"));
                continue;
            }
        }
        let want = n_fields(header);
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let got = n_fields(line);
            if got != want {
                problems.push(format!(
                    "{name}: row {} has {got} columns, header has {want}",
                    i + 2
                ));
                break;
            }
        }
        checked += 1;
    }
    if problems.is_empty() {
        println!("csv_check: {checked} results files validate");
    } else {
        for p in &problems {
            eprintln!("csv_check: {p}");
        }
        std::process::exit(1);
    }
}
