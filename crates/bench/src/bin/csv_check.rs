//! Deprecated shim for the results-CSV schema check: the validation now
//! lives in `emca_bench::scenarios::csv_check` (schemas single-sourced
//! from each scenario's declaration) and is driven by `emca check`.

fn main() {
    emca_bench::shim_main("csv_check");
}
