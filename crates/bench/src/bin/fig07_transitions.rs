//! Fig. 7 — PrT state transitions and core allocation along the
//! execution of TPC-H Q6 (single client, adaptive mode, CPU-load
//! strategy).

use emca_bench::{emit, env_iters, env_sf};
use emca_harness::{report, run, Alloc, RunConfig};
use emca_metrics::SimDuration;
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData};

fn main() {
    let scale = env_sf();
    let data = TpchData::generate(scale);
    eprintln!("fig07: sf={}", scale.sf);
    let out = run(
        RunConfig::new(
            Alloc::Adaptive,
            1,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: env_iters(10),
            },
        )
        .with_scale(scale)
        .with_mech_interval(SimDuration::from_millis(10)),
        &data,
    );
    let table = report::render_transitions(
        "Fig. 7 — state transitions and allocated cores over Q6",
        &out.transitions,
    );
    emit(&table, "fig07_transitions.csv");
    if let Some(lonc) = elastic_core::lonc::analyze(&out.transitions) {
        println!(
            "LONC: {} cores (stable streak of {} control steps from {})",
            lonc.lonc, lonc.streak, lonc.reached_at
        );
    }
}
