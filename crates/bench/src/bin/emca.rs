//! `emca` — the single scenario CLI of the reproduction.
//!
//! ```text
//! emca list [--names]                 list registered scenarios
//! emca run <scenario> [flags]         run one scenario
//! emca sweep <scenario> --over k=v1,v2,... [flags]
//!                                     run a scenario once per value
//! emca check [--fidelity] [flags]     validate results CSVs
//!                                     (+ the tab_summary fidelity gate)
//! emca help                           this text
//! ```
//!
//! Flags mirror the [`ExperimentSpec`] fields; the documented `EMCA_*`
//! environment variables remain as fallbacks and flags override them:
//!
//! ```text
//! --sf <f>  --seed <n>  --users <n>  --iters <n>
//! --policy dense|sparse|adaptive|hillclimb
//! --flavor monetdb|sqlserver
//! --warmup loader|interleave|none
//! --guard off|<threshold>  --interval-ms <ms>
//! --out-dir <dir>  --check  --backend sim|threads
//! --tenants name[:policy=..][:users=..][:weight=..][:cap=..],...
//! ```
//!
//! Typical invocations:
//!
//! ```sh
//! cargo run --release -p emca-bench --bin emca -- run fig19 --policy adaptive --sf 0.25
//! cargo run --release -p emca-bench --bin emca -- run tab_summary --policy hillclimb
//! cargo run --release -p emca-bench --bin emca -- sweep fig07 --over policy=dense,sparse,adaptive
//! EMCA_SF=0.25 cargo run --release -p emca-bench --bin emca -- check --fidelity
//! ```

use emca_bench::scenarios;
use emca_harness::ExperimentSpec;

const USAGE: &str = "\
usage: emca <command> [...]

commands:
  list [--names]                     list scenarios (--names: bare names only)
  run <scenario> [flags]             run one scenario
  sweep <scenario> --over k=v1,v2,.. run once per value of one spec key
  check [--fidelity] [flags]         validate declared results CSVs;
                                     --fidelity also runs the tab_summary gate
  help                               show this text

flags (override the EMCA_* environment fallbacks):
  --sf <f> --seed <n> --users <n> --iters <n>
  --policy dense|sparse|adaptive|hillclimb
  --flavor monetdb|sqlserver --warmup loader|interleave|none
  --guard off|<threshold> --interval-ms <ms> --out-dir <dir> --check
  --backend sim|threads              execute on simulated workers or real OS threads
  --tenants name[:policy=..][:users=..][:weight=..][:cap=..],...
                                     per-tenant overrides (mt_* scenarios)";

fn fail(msg: &str) -> ! {
    eprintln!("emca: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Maps `--flag value` pairs onto spec fields; returns leftovers that
/// are not spec flags (command-specific switches).
fn parse_flags(spec: &mut ExperimentSpec, args: &[String]) -> Vec<String> {
    let mut rest = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let key = match arg.as_str() {
            "--sf" => "sf",
            "--seed" => "seed",
            "--users" => "users",
            "--iters" => "iters",
            "--policy" => "policy",
            "--flavor" => "flavor",
            "--warmup" => "warmup",
            "--guard" => "guard",
            "--interval-ms" => "interval_ms",
            "--out-dir" => "out_dir",
            "--tenants" => "tenants",
            "--backend" => "backend",
            "--check" => {
                spec.check = true;
                continue;
            }
            _ => {
                rest.push(arg.clone());
                continue;
            }
        };
        let Some(value) = it.next() else {
            fail(&format!("{arg} requires a value"));
        };
        if let Err(e) = spec.set(key, value) {
            fail(&e.to_string());
        }
    }
    rest
}

fn base_spec() -> ExperimentSpec {
    match emca_harness::config::from_env() {
        Ok(spec) => spec,
        Err(e) => fail(&e.to_string()),
    }
}

/// Runs one scenario with the wall clock stamped (`[wall] <name>=..s`);
/// returns the elapsed seconds so gates can budget them.
fn run_one(registry: &emca_harness::ScenarioRegistry, name: &str, spec: &ExperimentSpec) -> f64 {
    spec.log_resolved();
    let timer = emca_harness::WallTimer::start(name);
    if let Err(e) = registry.run(name, spec) {
        eprintln!("emca run {name}: {e}");
        std::process::exit(1);
    }
    timer.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = scenarios::registry();
    match args.first().map(String::as_str) {
        Some("list") => {
            let names_only = args.iter().any(|a| a == "--names");
            if names_only {
                for name in registry.names() {
                    println!("{name}");
                }
            } else {
                let width = registry.names().iter().map(|n| n.len()).max().unwrap_or(0);
                for s in registry.iter() {
                    println!("{:width$}  {}", s.name(), s.about());
                }
            }
        }
        Some("run") => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                fail("run requires a scenario name (see `emca list`)");
            };
            let mut spec = base_spec();
            spec.scenario = name.clone();
            let rest = parse_flags(&mut spec, &args[2..]);
            if let Some(extra) = rest.first() {
                fail(&format!("unknown flag {extra:?}"));
            }
            if registry.get(name).is_none() {
                eprintln!(
                    "emca: unknown scenario {name:?} (valid: {})",
                    registry.names().join(", ")
                );
                std::process::exit(2);
            }
            run_one(&registry, name, &spec);
        }
        Some("sweep") => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                fail("sweep requires a scenario name (see `emca list`)");
            };
            let mut spec = base_spec();
            spec.scenario = name.clone();
            let rest = parse_flags(&mut spec, &args[2..]);
            let mut over: Option<(String, Vec<String>)> = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                if arg == "--over" {
                    let Some(kv) = it.next() else {
                        fail("--over requires key=v1,v2,...");
                    };
                    let Some((key, values)) = kv.split_once('=') else {
                        fail("--over requires key=v1,v2,...");
                    };
                    over = Some((
                        key.to_string(),
                        values.split(',').map(str::to_string).collect(),
                    ));
                } else {
                    fail(&format!("unknown flag {arg:?}"));
                }
            }
            let Some((key, values)) = over else {
                fail("sweep requires --over key=v1,v2,...");
            };
            if registry.get(name).is_none() {
                fail(&format!(
                    "unknown scenario {name:?} (valid: {})",
                    registry.names().join(", ")
                ));
            }
            for value in &values {
                let mut step = spec.clone();
                if let Err(e) = step.set(&key, value) {
                    fail(&e.to_string());
                }
                eprintln!("== sweep {key}={value} ==");
                run_one(&registry, name, &step);
            }
        }
        Some("check") => {
            let mut spec = base_spec();
            let rest = parse_flags(&mut spec, &args[1..]);
            let mut fidelity = false;
            for arg in &rest {
                match arg.as_str() {
                    "--fidelity" => fidelity = true,
                    other => fail(&format!("unknown flag {other:?}")),
                }
            }
            spec.scenario = "csv_check".to_string();
            run_one(&registry, "csv_check", &spec);
            if fidelity {
                let mut spec = spec.clone();
                spec.scenario = "tab_summary".to_string();
                spec.check = true;
                let elapsed = run_one(&registry, "tab_summary", &spec);
                // Wall budget (EMCA_WALL_BUDGET_S): the fidelity gate
                // doubles as the hot-path regression tripwire.
                match emca_harness::wall_budget_from_env() {
                    Err(e) => fail(&e),
                    Ok(Some(budget)) => {
                        match emca_harness::enforce_wall_budget("tab_summary", elapsed, budget) {
                            Ok(msg) => eprintln!("emca check: {msg}"),
                            Err(msg) => {
                                eprintln!("emca check: {msg}");
                                std::process::exit(1);
                            }
                        }
                    }
                    Ok(None) => {}
                }
            }
        }
        Some("help") | Some("--help") | Some("-h") => println!("{USAGE}"),
        Some(other) => fail(&format!("unknown command {other:?}")),
        None => fail("missing command"),
    }
}
