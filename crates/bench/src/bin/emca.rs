//! `emca` — the single scenario CLI of the reproduction.
//!
//! ```text
//! emca list [--names]                 list registered scenarios
//! emca run <scenario> [flags]         run one scenario
//! emca sweep <scenario> --over k=v1,v2,... [flags]
//!                                     run a scenario once per value
//! emca check [--fidelity] [flags]     validate results CSVs
//!                                     (+ the tab_summary fidelity gate)
//! emca check --lint                   run the workspace lint (emca-lint)
//!                                     and refresh results/lint_report.json
//! emca legacy <binary> [args]         run a retired per-figure binary
//!                                     by its old name
//! emca help                           this text
//! ```
//!
//! Flags mirror the [`ExperimentSpec`] fields; the documented `EMCA_*`
//! environment variables remain as fallbacks and flags override them:
//!
//! ```text
//! --sf <f>  --seed <n>  --users <n>  --iters <n>
//! --policy dense|sparse|adaptive|hillclimb
//! --flavor monetdb|sqlserver
//! --warmup loader|interleave|none
//! --guard off|<threshold>  --interval-ms <ms>
//! --out-dir <dir>  --check  --backend sim|threads
//! --tenants name[:policy=..][:users=..][:weight=..][:cap=..],...
//! --arrival poisson:<qps>|trace:<path>  --duration <s>
//! --admission none|limit:<n>[:queue=<cap>]  --sla-ms <ms>
//! ```
//!
//! `run` and `sweep` also take `--prune-unsupported`: instead of
//! rejecting a spec that pins a key the scenario ignores, drop the key
//! (with a note) and run — the switch for generic CI loops that pass
//! one flag set to every scenario.
//!
//! Typical invocations:
//!
//! ```sh
//! cargo run --release -p emca-bench --bin emca -- run fig19 --policy adaptive --sf 0.25
//! cargo run --release -p emca-bench --bin emca -- run serve_latency_curve --check
//! cargo run --release -p emca-bench --bin emca -- sweep fig07 --over policy=dense,sparse,adaptive
//! EMCA_SF=0.25 cargo run --release -p emca-bench --bin emca -- check --fidelity
//! ```

use emca_bench::scenarios;
use emca_harness::ExperimentSpec;

const USAGE: &str = "\
usage: emca <command> [...]

commands:
  list [--names]                     list scenarios (--names: bare names only)
  run <scenario> [flags]             run one scenario
  sweep <scenario> --over k=v1,v2,.. run once per value of one spec key
  check [--fidelity] [flags]         validate declared results CSVs;
                                     --fidelity also runs the tab_summary gate;
                                     --scenario <name> (repeatable) restricts
                                     the check to that scenario's CSVs;
                                     --lint runs the workspace static analysis
                                     (emca-lint, see docs/LINTS.md) instead
  legacy <binary> [args]             run a retired per-figure binary by its
                                     old name (fig04_q6_users, probe, ...)
  help                               show this text

flags (override the EMCA_* environment fallbacks):
  --sf <f> --seed <n> --users <n> --iters <n>
  --policy dense|sparse|adaptive|hillclimb
  --flavor monetdb|sqlserver --warmup loader|interleave|none
  --guard off|<threshold> --interval-ms <ms> --out-dir <dir> --check
  --backend sim|threads              execute on simulated workers or real OS threads
  --tenants name[:policy=..][:users=..][:weight=..][:cap=..],...
                                     per-tenant overrides (mt_* scenarios)
  --arrival poisson:<qps>|trace:<path>  open-loop schedule (serve_* scenarios)
  --duration <s> --sla-ms <ms>       offered-load window and latency SLA
  --admission none|limit:<n>[:queue=<cap>]
                                     front-door policy of the admitted series
  --faults panic:worker=<n>@<t>,stall:worker=<n>@<t>:dur=<d>,badquery:rate=<p>
                                     deterministic fault plan (chaos_* scenarios,
                                     or any run; unset = fault plane inert)
  --churn <n>[:resident=<r>][:skew=<s>][:spread=<secs>]
                                     generated churn population (mt_churn/mt_zipf)
  --prune-unsupported                drop (with a note) spec keys the scenario
                                     does not honour instead of erroring";

fn fail(msg: &str) -> ! {
    eprintln!("emca: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// `emca check --lint`: runs the emca-lint engine over the workspace,
/// prints every diagnostic, refreshes `results/lint_report.json`, and
/// exits non-zero on violations. Exclusive of the CSV check — the lint
/// reads source trees, not results files.
fn run_lint() {
    let root = emca_harness::results_path("")
        .parent()
        .map(std::path::Path::to_path_buf)
        .filter(|r| r.join("lint.toml").exists())
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|cwd| emca_lint::find_repo_root(&cwd))
        })
        .unwrap_or_else(|| fail("check --lint: no lint.toml found (run from inside the repo)"));
    let outcome = match emca_lint::run_workspace(&root) {
        Ok(o) => o,
        Err(e) => fail(&format!("check --lint: {e}")),
    };
    for d in &outcome.diagnostics {
        println!("{d}");
    }
    let report_path = root.join("results").join("lint_report.json");
    if let Err(e) = std::fs::write(&report_path, emca_lint::report::render(&outcome)) {
        fail(&format!(
            "check --lint: writing {}: {e}",
            report_path.display()
        ));
    }
    println!(
        "check --lint: {} files, {} violations, {} waivers -> {}",
        outcome.files.len(),
        outcome.diagnostics.len(),
        outcome.waivers.len(),
        report_path.display()
    );
    if !outcome.clean() {
        std::process::exit(1);
    }
}

/// Maps `--flag value` pairs onto spec fields; returns leftovers that
/// are not spec flags (command-specific switches).
fn parse_flags(spec: &mut ExperimentSpec, args: &[String]) -> Vec<String> {
    let mut rest = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let key = match arg.as_str() {
            "--sf" => "sf",
            "--seed" => "seed",
            "--users" => "users",
            "--iters" => "iters",
            "--policy" => "policy",
            "--flavor" => "flavor",
            "--warmup" => "warmup",
            "--guard" => "guard",
            "--interval-ms" => "interval_ms",
            "--out-dir" => "out_dir",
            "--tenants" => "tenants",
            "--backend" => "backend",
            "--arrival" => "arrival",
            "--duration" => "duration",
            "--admission" => "admission",
            "--sla-ms" => "sla_ms",
            "--faults" => "faults",
            "--churn" => "churn",
            "--check" => {
                spec.check = true;
                continue;
            }
            _ => {
                rest.push(arg.clone());
                continue;
            }
        };
        let Some(value) = it.next() else {
            fail(&format!("{arg} requires a value"));
        };
        if let Err(e) = spec.set(key, value) {
            fail(&e.to_string());
        }
    }
    rest
}

fn base_spec() -> ExperimentSpec {
    match emca_harness::config::from_env() {
        Ok(spec) => spec,
        Err(e) => fail(&e.to_string()),
    }
}

/// The retired per-figure binaries, by their old `--bin` names, mapped
/// to the scenario each one wrapped. `emca legacy <name>` keeps muscle
/// memory and old scripts working through the one remaining binary.
const LEGACY: &[(&str, &str)] = &[
    ("ablation", "ablation"),
    ("csv_check", "csv_check"),
    ("fig04_q6_users", "fig04"),
    ("fig05_migration_os", "fig05"),
    ("fig06_tomograph", "fig06"),
    ("fig07_transitions", "fig07"),
    ("fig13_sched_metrics", "fig13"),
    ("fig14_memory_metrics", "fig14"),
    ("fig15_selectivity", "fig15"),
    ("fig16_migration_modes", "fig16"),
    ("fig17_strategies", "fig17"),
    ("fig18_stable_phases", "fig18"),
    ("fig19_mixed_phases", "fig19"),
    ("fig20_energy", "fig20"),
    ("probe", "probe"),
    ("tab_overhead", "tab_overhead"),
    ("tab_summary", "tab_summary"),
];

/// `emca legacy <binary> [args]` — the shim-binary surface folded into
/// the dispatcher: EMCA_* fallbacks apply as before, and `probe` keeps
/// its historical positional `[sf] [clients] [iters]` arguments.
fn run_legacy(registry: &emca_harness::ScenarioRegistry, args: &[String]) {
    let Some(binary) = args.first() else {
        fail("legacy requires a retired binary name (e.g. fig04_q6_users)");
    };
    let Some((_, scenario)) = LEGACY.iter().find(|(old, _)| old == binary) else {
        let known: Vec<&str> = LEGACY.iter().map(|(old, _)| *old).collect();
        fail(&format!(
            "unknown legacy binary {binary:?} (known: {})",
            known.join(", ")
        ));
    };
    let mut spec = base_spec();
    spec.scenario = scenario.to_string();
    let rest = &args[1..];
    if *scenario == "probe" {
        for (i, key) in [(0usize, "sf"), (1, "users"), (2, "iters")] {
            if let Some(v) = rest.get(i) {
                if let Err(e) = spec.set(key, v) {
                    fail(&format!("legacy probe argument {}: {e}", i + 1));
                }
            }
        }
    } else if let Some(extra) = rest.first() {
        fail(&format!(
            "legacy {binary} takes no arguments (got {extra:?}); \
             use `emca run {scenario}` for flags"
        ));
    }
    eprintln!("note: the {binary} binary is retired; this ran `emca run {scenario}`");
    // The retired binaries read the EMCA_* env and silently ignored
    // what they didn't use; the compatibility path keeps that shape by
    // pruning (with a note) rather than hard-erroring.
    prune_spec(registry, scenario, &mut spec);
    run_one(registry, scenario, &spec);
}

/// Removes `switch` from `rest` if present; returns whether it was.
fn take_switch(rest: &mut Vec<String>, switch: &str) -> bool {
    let before = rest.len();
    rest.retain(|a| a != switch);
    before != rest.len()
}

/// Drops (with a note) every pinned key `name` does not honour — the
/// `--prune-unsupported` path for generic loops that pass one flag set
/// to every scenario.
fn prune_spec(
    registry: &emca_harness::ScenarioRegistry,
    name: &str,
    spec: &mut emca_harness::ExperimentSpec,
) {
    for (key, value) in registry.prune_unsupported(name, spec) {
        eprintln!("emca: {name} does not honour {key}={value}; dropped (--prune-unsupported)");
    }
}

/// Runs one scenario with the wall clock stamped (`[wall] <name>=..s`);
/// returns the elapsed seconds so gates can budget them.
fn run_one(registry: &emca_harness::ScenarioRegistry, name: &str, spec: &ExperimentSpec) -> f64 {
    // Spec problems (a pinned key the scenario ignores) are usage
    // errors — one-line diagnostic, exit 2 — distinct from a scenario
    // that started and then failed (exit 1).
    if let Err(e) = registry.validate_spec(name, spec) {
        eprintln!("emca run {name}: {e}");
        std::process::exit(2);
    }
    spec.log_resolved();
    let timer = emca_harness::WallTimer::start(name);
    if let Err(e) = registry.run(name, spec) {
        eprintln!("emca run {name}: {e}");
        std::process::exit(1);
    }
    timer.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = scenarios::registry();
    match args.first().map(String::as_str) {
        Some("list") => {
            let names_only = args.iter().any(|a| a == "--names");
            if names_only {
                for name in registry.names() {
                    println!("{name}");
                }
            } else {
                let width = registry.names().iter().map(|n| n.len()).max().unwrap_or(0);
                for s in registry.iter() {
                    println!("{:width$}  {}", s.name(), s.about());
                }
            }
        }
        Some("run") => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                fail("run requires a scenario name (see `emca list`)");
            };
            let mut spec = base_spec();
            spec.scenario = name.clone();
            let mut rest = parse_flags(&mut spec, &args[2..]);
            let prune = take_switch(&mut rest, "--prune-unsupported");
            if let Some(extra) = rest.first() {
                fail(&format!("unknown flag {extra:?}"));
            }
            if registry.get(name).is_none() {
                eprintln!(
                    "emca: unknown scenario {name:?} (valid: {})",
                    registry.names().join(", ")
                );
                std::process::exit(2);
            }
            if prune {
                prune_spec(&registry, name, &mut spec);
            }
            run_one(&registry, name, &spec);
        }
        Some("sweep") => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                fail("sweep requires a scenario name (see `emca list`)");
            };
            let mut spec = base_spec();
            spec.scenario = name.clone();
            let mut rest = parse_flags(&mut spec, &args[2..]);
            let prune = take_switch(&mut rest, "--prune-unsupported");
            let mut over: Option<(String, Vec<String>)> = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                if arg == "--over" {
                    let Some(kv) = it.next() else {
                        fail("--over requires key=v1,v2,...");
                    };
                    let Some((key, values)) = kv.split_once('=') else {
                        fail("--over requires key=v1,v2,...");
                    };
                    over = Some((
                        key.to_string(),
                        values.split(',').map(str::to_string).collect(),
                    ));
                } else {
                    fail(&format!("unknown flag {arg:?}"));
                }
            }
            let Some((key, values)) = over else {
                fail("sweep requires --over key=v1,v2,...");
            };
            if registry.get(name).is_none() {
                fail(&format!(
                    "unknown scenario {name:?} (valid: {})",
                    registry.names().join(", ")
                ));
            }
            for value in &values {
                let mut step = spec.clone();
                if let Err(e) = step.set(&key, value) {
                    fail(&e.to_string());
                }
                if prune {
                    prune_spec(&registry, name, &mut step);
                }
                eprintln!("== sweep {key}={value} ==");
                run_one(&registry, name, &step);
            }
        }
        Some("check") => {
            let mut spec = base_spec();
            let rest = parse_flags(&mut spec, &args[1..]);
            let mut fidelity = false;
            let mut lint = false;
            let mut only: Vec<String> = Vec::new();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--fidelity" => fidelity = true,
                    "--lint" => lint = true,
                    "--scenario" => match it.next() {
                        Some(name) => only.push(name.clone()),
                        None => fail("--scenario requires a scenario name"),
                    },
                    other => fail(&format!("unknown flag {other:?}")),
                }
            }
            if lint {
                run_lint();
                return;
            }
            if !only.is_empty() {
                // Restricted check: validate only the named scenarios'
                // declared CSVs (smoke jobs that emit a subset).
                let mut checked = 0usize;
                let mut problems = 0usize;
                for name in &only {
                    let Some(s) = registry.get(name) else {
                        fail(&format!(
                            "unknown scenario {name:?} (valid: {})",
                            registry.names().join(", ")
                        ));
                    };
                    for (file, header) in s.csv_schemas() {
                        checked += 1;
                        if let Err(e) = emca_harness::validate_csv(&spec.csv_path(file), header) {
                            eprintln!("emca check: {e}");
                            problems += 1;
                        }
                    }
                }
                if problems > 0 {
                    eprintln!("emca check: {problems} schema problem(s)");
                    std::process::exit(1);
                }
                println!(
                    "emca check: {checked} file(s) validate for {}",
                    only.join(", ")
                );
                return;
            }
            // `check` inherits the ambient EMCA_* env (the fidelity
            // gate pins scale that way); the scenarios it drives are
            // fixed, so ambient keys they don't honour are pruned, not
            // hard errors — only `run`/`sweep` treat pins as explicit.
            let mut csv_spec = spec.clone();
            csv_spec.scenario = "csv_check".to_string();
            prune_spec(&registry, "csv_check", &mut csv_spec);
            run_one(&registry, "csv_check", &csv_spec);
            if fidelity {
                let mut spec = spec.clone();
                spec.scenario = "tab_summary".to_string();
                spec.check = true;
                prune_spec(&registry, "tab_summary", &mut spec);
                let elapsed = run_one(&registry, "tab_summary", &spec);
                // Wall budget (EMCA_WALL_BUDGET_S): the fidelity gate
                // doubles as the hot-path regression tripwire.
                match emca_harness::wall_budget_from_env() {
                    Err(e) => fail(&e),
                    Ok(Some(budget)) => {
                        match emca_harness::enforce_wall_budget("tab_summary", elapsed, budget) {
                            Ok(msg) => eprintln!("emca check: {msg}"),
                            Err(msg) => {
                                eprintln!("emca check: {msg}");
                                std::process::exit(1);
                            }
                        }
                    }
                    Ok(None) => {}
                }
            }
        }
        Some("legacy") => run_legacy(&registry, &args[1..]),
        Some("help") | Some("--help") | Some("-h") => println!("{USAGE}"),
        Some(other) => fail(&format!("unknown command {other:?}")),
        None => fail("missing command"),
    }
}
