//! Deprecated shim for the calibration probe: the scenario now lives in
//! `emca_bench::scenarios::probe` and is driven by `emca run probe`.
//! The legacy positional arguments (`probe [sf] [clients] [iters]`)
//! are folded into the spec.

fn main() {
    emca_bench::shim_main_with("probe", |spec| {
        let args: Vec<String> = std::env::args().skip(1).collect();
        for (i, key) in [(0usize, "sf"), (1, "users"), (2, "iters")] {
            if let Some(v) = args.get(i) {
                if let Err(e) = spec.set(key, v) {
                    eprintln!("probe: argument {}: {e}", i + 1);
                    std::process::exit(2);
                }
            }
        }
    });
}
