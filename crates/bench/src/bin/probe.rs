//! Calibration probe: quick OS-vs-Adaptive comparison plus real-time
//! cost measurement. Not a paper figure; used to sanity-check the
//! simulation before running the full harness.

use emca_harness::{run, Alloc, RunConfig};
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData, TpchScale};

fn main() {
    let scale = TpchScale {
        sf: std::env::args()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.05),
        seed: 42,
    };
    let clients: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let iters: u32 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    eprintln!("generating sf={} ...", scale.sf);
    let t0 = std::time::Instant::now();
    let data = TpchData::generate(scale);
    eprintln!("generated {} MB in {:?}", data.raw_bytes() / 1_000_000, t0.elapsed());

    let workload = Workload::Repeat {
        spec: QuerySpec::Q6 { variant: 0 },
        iterations: iters,
    };
    for alloc in [Alloc::OsAll, Alloc::Adaptive, Alloc::Dense, Alloc::Sparse] {
        let t0 = std::time::Instant::now();
        let out = run(
            RunConfig::new(alloc, clients, workload.clone()).with_scale(scale),
            &data,
        );
        let real = t0.elapsed();
        let imc = out.imc_bytes_per_socket();
        let imc_total: u64 = imc.iter().sum();
        let l3 = out.l3_misses_per_socket();
        println!(
            "{:<10} wall={:>9} qps={:>7.2} ht={:>6.1}GB imc={:>6.1}GB imc_rate={:>5.2}GB/s imc/skt={:?} l3hit={:>5.1}% faults={:>7} steals={:>5} migr={:>6} cores_end={:>3}  [real {:?}]",
            format!("{alloc:?}"),
            format!("{}", out.wall),
            out.throughput_qps(),
            out.ht_bytes() as f64 / 1e9,
            imc_total as f64 / 1e9,
            out.wall.rate_per_sec(imc_total) / 1e9,
            imc.iter().map(|b| (b / 1_000_000_000) as u32).collect::<Vec<_>>(),
            {
                let hits: u64 = out.hw_after.l3_hits.iter().sum::<u64>()
                    - out.hw_before.l3_hits.iter().sum::<u64>();
                let misses: u64 = l3.iter().sum();
                100.0 * hits as f64 / (hits + misses).max(1) as f64
            },
            out.minor_faults(),
            out.sched.steals,
            out.sched.migrations,
            out.cores_series.last().map(|(_, v)| v).unwrap_or(0.0),
            real,
        );
    }
}
