//! Fig. 16 — lifespan and core migration of the Q6 threads under the
//! four policies (single client), the four-panel version of Fig. 5.

use emca_bench::{emit, env_sf};
use emca_harness::{report, run, Alloc, RunConfig};
use emca_metrics::table::Table;
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::{QuerySpec, TpchData};

fn main() {
    let scale = env_sf();
    let data = TpchData::generate(scale);
    eprintln!("fig16: sf={}", scale.sf);
    let topo = numa_sim::Topology::opteron_4x4();

    let mut summary = Table::new(
        "Fig. 16 — thread migration by policy (single-client Q6)",
        &["policy", "threads", "migrations", "spans"],
    );
    for alloc in Alloc::all() {
        let out = run(
            RunConfig::new(
                alloc,
                1,
                Workload::Repeat {
                    spec: QuerySpec::Q6 { variant: 0 },
                    iterations: 1,
                },
            )
            .with_scale(scale)
            .with_trace(),
            &data,
        );
        let label = alloc.label(Flavor::MonetDb);
        let trace = out.trace.as_ref().expect("tracing enabled");
        let map =
            report::render_migration_map(&format!("Fig. 16 ({label}) migration map"), trace, &topo);
        let file = format!(
            "fig16_migration_{}.csv",
            label.replace('/', "_").to_lowercase()
        );
        emit(&map, &file);
        let (threads, migrations) = report::migration_summary(trace);
        summary.row(vec![
            label,
            threads.to_string(),
            migrations.to_string(),
            trace.spans().len().to_string(),
        ]);
    }
    emit(&summary, "fig16_summary.csv");
}
