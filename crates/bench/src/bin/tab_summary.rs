//! Headline summary table (§I / §VII): maximum and average speedup and
//! HT/IMC traffic-ratio reduction of the adaptive mode vs the OS
//! scheduler, for both engine flavors, plus the total energy saving —
//! side by side with the paper's reported numbers.

use emca_bench::{emit, env_clients, env_iters, env_sf};
use emca_harness::{report, run, Alloc, RunConfig};
use emca_metrics::stats;
use emca_metrics::table::{fnum, Table};
use numa_sim::EnergyModel;
use volcano_db::client::Workload;
use volcano_db::exec::engine::Flavor;
use volcano_db::tpch::{QuerySpec, TpchData};

fn main() {
    let scale = env_sf();
    let users = env_clients(64);
    let iters = env_iters(6);
    let data = TpchData::generate(scale);
    eprintln!("tab_summary: sf={} users={users} iters={iters}", scale.sf);
    let specs: Vec<QuerySpec> = (1..=22)
        .flat_map(|n| (0..4).map(move |v| QuerySpec::Tpch { number: n, variant: v }))
        .collect();
    let workload = Workload::Mixed {
        specs,
        iterations: iters,
        seed: 7,
    };

    let mut t = Table::new(
        "Summary — adaptive vs OS (paper values in parentheses)",
        &["flavor", "metric", "measured", "paper"],
    );
    let model = EnergyModel::opteron_8387();
    for (flavor, paper_speed_max, paper_speed_avg, paper_ratio_max, paper_ratio_avg) in [
        (Flavor::MonetDb, "1.53", "1.29", "3.87", "2.47"),
        (Flavor::SqlServer, "1.27", "1.14", "3.70", "2.57"),
    ] {
        let os = run(
            RunConfig::new(Alloc::OsAll, users, workload.clone())
                .with_scale(scale)
                .with_flavor(flavor),
            &data,
        );
        let ad = run(
            RunConfig::new(Alloc::Adaptive, users, workload.clone())
                .with_scale(scale)
                .with_flavor(flavor),
            &data,
        );
        let speedups: Vec<f64> = report::speedup_by_tag(&os.results, &ad.results)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        let os_tags = report::by_tag(&os.results);
        let ad_tags: emca_metrics::FxHashMap<u32, report::TagStats> =
            report::by_tag(&ad.results).into_iter().collect();
        let ratio_reductions: Vec<f64> = os_tags
            .iter()
            .filter_map(|(tag, o)| {
                let a = ad_tags.get(tag)?;
                if a.mean_ht_imc > 1e-6 {
                    Some(o.mean_ht_imc / a.mean_ht_imc)
                } else if o.mean_ht_imc > 1e-6 {
                    // Adaptive produced (near-)zero remote traffic.
                    Some(o.mean_ht_imc / 1e-6)
                } else {
                    None
                }
            })
            .collect();
        let fname = match flavor {
            Flavor::MonetDb => "MonetDB",
            Flavor::SqlServer => "SQL Server",
        };
        t.row(vec![
            fname.into(),
            "max speedup".into(),
            stats::max(&speedups).map(|v| fnum(v, 2)).unwrap_or_default(),
            paper_speed_max.into(),
        ]);
        t.row(vec![
            fname.into(),
            "avg speedup".into(),
            stats::mean(&speedups).map(|v| fnum(v, 2)).unwrap_or_default(),
            paper_speed_avg.into(),
        ]);
        t.row(vec![
            fname.into(),
            "max HT/IMC reduction".into(),
            stats::max(&ratio_reductions)
                .map(|v| fnum(v.min(999.0), 2))
                .unwrap_or_default(),
            paper_ratio_max.into(),
        ]);
        t.row(vec![
            fname.into(),
            "avg HT/IMC reduction".into(),
            stats::mean(&ratio_reductions)
                .map(|v| fnum(v.min(999.0), 2))
                .unwrap_or_default(),
            paper_ratio_avg.into(),
        ]);
        if flavor == Flavor::MonetDb {
            let e_os: f64 = report::energy_by_tag(&os.results, &model, 4)
                .iter()
                .map(|(_, e)| e.total())
                .sum();
            let e_ad: f64 = report::energy_by_tag(&ad.results, &model, 4)
                .iter()
                .map(|(_, e)| e.total())
                .sum();
            t.row(vec![
                fname.into(),
                "total energy saving %".into(),
                fnum(stats::saving_pct(e_os, e_ad).unwrap_or(0.0), 2),
                "26.05".into(),
            ]);
        }
    }
    emit(&t, "tab_summary.csv");
}
