//! Fig. 6 — Tomograph view of Q6: per-MAL-operator calls and total time
//! across the worker threads.

use emca_bench::{emit, env_sf};
use emca_harness::{report, run, Alloc, RunConfig};
use volcano_db::client::Workload;
use volcano_db::tpch::{QuerySpec, TpchData};

fn main() {
    let scale = env_sf();
    let data = TpchData::generate(scale);
    eprintln!("fig06: sf={}", scale.sf);
    let out = run(
        RunConfig::new(
            Alloc::OsAll,
            1,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 1,
            },
        )
        .with_scale(scale),
        &data,
    );
    let table =
        report::render_tomograph("Fig. 6 — Tomograph of Q6 (operator calls and time)", &out);
    emit(&table, "fig06_tomograph.csv");
}
