//! # emca-bench — figure and table regeneration
//!
//! Every figure/table of the paper is a registered
//! [`Scenario`](emca_harness::Scenario) (see [`scenarios::registry`])
//! driven by a typed [`ExperimentSpec`]; one CLI runs them all:
//!
//! ```sh
//! cargo run --release -p emca-bench --bin emca -- list
//! cargo run --release -p emca-bench --bin emca -- run fig19 --policy adaptive --sf 0.25
//! cargo run --release -p emca-bench --bin emca -- check --fidelity
//! ```
//!
//! The documented `EMCA_*` environment variables remain as fallbacks,
//! parsed once by `emca_harness::config::from_env()`; CLI flags override
//! them. The former one-binary-per-figure entry points still exist as
//! thin shims over the same scenarios.

pub mod scenarios;

use emca_harness::{ExperimentSpec, ScenarioError};

/// The paper's user-count sweep {1, 4, 16, 64, 256}, capped.
pub fn user_sweep(cap: usize) -> Vec<usize> {
    [1usize, 4, 16, 64, 256]
        .into_iter()
        .filter(|&u| u <= cap)
        .collect()
}

/// Prints a table and writes its CSV under the spec's output directory
/// (the workspace `results/` by default).
pub fn emit(spec: &ExperimentSpec, table: &emca_metrics::table::Table, csv_name: &str) {
    println!("{}", table.render());
    let path = spec.csv_path(csv_name);
    if let Err(e) = table.write_csv(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("[csv] {}", path.display());
    }
}

/// Entry point of the deprecated per-figure binaries: builds the spec
/// from the `EMCA_*` environment, runs the named scenario, exits
/// non-zero on failure. `tweak` lets a shim fold legacy positional
/// arguments into the spec.
pub fn shim_main_with(scenario: &str, tweak: impl FnOnce(&mut ExperimentSpec)) {
    let mut spec = match emca_harness::config::from_env() {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    spec.scenario = scenario.to_string();
    tweak(&mut spec);
    eprintln!(
        "note: the per-figure binaries are deprecated; use `emca run {scenario}` \
         (cargo run -p emca-bench --bin emca -- run {scenario})"
    );
    spec.log_resolved();
    if let Err(ScenarioError(e)) = scenarios::registry().run(scenario, &spec) {
        eprintln!("{scenario}: {e}");
        std::process::exit(1);
    }
}

/// [`shim_main_with`] without argument folding.
pub fn shim_main(scenario: &str) {
    shim_main_with(scenario, |_| {});
}
