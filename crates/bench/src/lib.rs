//! # emca-bench — figure and table regeneration
//!
//! One binary per figure/table of the paper (see DESIGN.md §5 for the
//! index). Shared environment knobs:
//!
//! - `EMCA_SF` — TPC-H scale factor (default 0.25; the paper uses 1.0,
//!   which the binaries accept but takes proportionally longer);
//! - `EMCA_CLIENTS` — caps the largest client count of sweeps;
//! - `EMCA_ITERS` — per-client iterations (workload length).
//!
//! Every binary prints aligned tables and writes CSVs under `results/`.

use volcano_db::tpch::TpchScale;

/// Scale factor from `EMCA_SF` (default 0.25).
pub fn env_sf() -> TpchScale {
    let sf = std::env::var("EMCA_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    TpchScale { sf, seed: 42 }
}

/// Client-count cap from `EMCA_CLIENTS` (default `default_cap`).
pub fn env_clients(default_cap: usize) -> usize {
    std::env::var("EMCA_CLIENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_cap)
}

/// Iterations from `EMCA_ITERS` (default `default`).
pub fn env_iters(default: u32) -> u32 {
    std::env::var("EMCA_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The paper's user-count sweep {1, 4, 16, 64, 256}, capped.
pub fn user_sweep(cap: usize) -> Vec<usize> {
    [1usize, 4, 16, 64, 256]
        .into_iter()
        .filter(|&u| u <= cap)
        .collect()
}

/// Applies probe-only environment overrides to a run configuration
/// (diagnostics, not paper figures): `EMCA_GUARD` (`off` or a
/// threshold), `EMCA_INTERVAL_MS`, `EMCA_WARMUP`
/// (`loader`/`interleave`/`none`).
pub fn apply_env_overrides(mut cfg: emca_harness::RunConfig) -> emca_harness::RunConfig {
    use emca_metrics::SimDuration;
    if let Ok(g) = std::env::var("EMCA_GUARD") {
        cfg =
            cfg.with_guard(if g == "off" {
                None
            } else {
                // A typo must not silently disable the guard (None means
                // "guard off" and changes allocation behaviour).
                Some(g.parse().unwrap_or_else(|_| {
                    panic!("EMCA_GUARD must be 'off' or a threshold, got {g:?}")
                }))
            });
    }
    if let Ok(ms) = std::env::var("EMCA_INTERVAL_MS") {
        let ms: f64 = ms
            .parse()
            .unwrap_or_else(|_| panic!("EMCA_INTERVAL_MS must be a number, got {ms:?}"));
        cfg = cfg.with_mech_interval(SimDuration::from_micros((ms * 1000.0) as u64));
    }
    if let Ok(w) = std::env::var("EMCA_WARMUP") {
        cfg = cfg.with_warmup(match w.as_str() {
            "loader" => emca_harness::Warmup::Loader,
            "interleave" => emca_harness::Warmup::Interleave,
            "none" => emca_harness::Warmup::None,
            other => panic!("EMCA_WARMUP must be loader|interleave|none, got {other:?}"),
        });
    }
    cfg
}

/// Prints a table and writes its CSV under `results/`.
pub fn emit(table: &emca_metrics::table::Table, csv_name: &str) {
    println!("{}", table.render());
    let path = emca_harness::results_path(csv_name);
    if let Err(e) = table.write_csv(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("[csv] {}", path.display());
    }
}
