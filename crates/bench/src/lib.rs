//! # emca-bench — figure and table regeneration
//!
//! Every figure/table of the paper is a registered
//! [`Scenario`](emca_harness::Scenario) (see [`scenarios::registry`])
//! driven by a typed [`ExperimentSpec`]; one CLI runs them all:
//!
//! ```sh
//! cargo run --release -p emca-bench --bin emca -- list
//! cargo run --release -p emca-bench --bin emca -- run fig19 --policy adaptive --sf 0.25
//! cargo run --release -p emca-bench --bin emca -- check --fidelity
//! ```
//!
//! The documented `EMCA_*` environment variables remain as fallbacks,
//! parsed once by `emca_harness::config::from_env()`; CLI flags override
//! them. The former one-binary-per-figure entry points are retired:
//! `emca legacy <old-binary-name>` dispatches the old names (see the
//! README migration table).

pub mod scenarios;

use emca_harness::ExperimentSpec;

/// The paper's user-count sweep {1, 4, 16, 64, 256}, capped.
pub fn user_sweep(cap: usize) -> Vec<usize> {
    [1usize, 4, 16, 64, 256]
        .into_iter()
        .filter(|&u| u <= cap)
        .collect()
}

/// Prints a table and writes its CSV under the spec's output directory
/// (the workspace `results/` by default).
pub fn emit(spec: &ExperimentSpec, table: &emca_metrics::table::Table, csv_name: &str) {
    println!("{}", table.render());
    let path = spec.csv_path(csv_name);
    if let Err(e) = table.write_csv(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("[csv] {}", path.display());
    }
}
