//! The generic Predicate/Transition net: domain `{P, T, F, R, M}`.
//!
//! - `P`, `T`: disjoint finite sets of places and transitions;
//! - `F ⊆ (P × T) ∪ (T × P)`: the flow relation, split into the `Pre`
//!   and `Post` functions (input and output arcs);
//! - `R`: the net inscription — a guard formula per transition plus arc
//!   inscriptions that bind/produce valued tokens;
//! - `M`: the marking — a multiset of integer-valued tokens per place.
//!
//! Firing follows the PrT semantics of the paper's §III: a transition is
//! enabled when every input place holds a token and the guard holds under
//! the binding formed by its input-arc variables; firing consumes the
//! input tokens and produces output tokens from the output-arc
//! expressions. The [`PrtNet::incidence`] export renders the
//! `Aᵀ = Post − Pre` matrix of Fig. 8.

use crate::expr::{Binding, Expr, Pred};
use std::fmt;

/// Place identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PlaceId(pub usize);

/// Transition identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TransitionId(pub usize);

/// An input arc `<p, t>`: consumes one token from `place` and binds its
/// value to `var`.
#[derive(Clone, Debug)]
pub struct InArc {
    /// Source place.
    pub place: PlaceId,
    /// Variable name the consumed token value is bound to.
    pub var: &'static str,
}

/// An output arc `<t, p>`: produces one token into `place` with the value
/// of `expr` under the firing binding.
#[derive(Clone, Debug)]
pub struct OutArc {
    /// Destination place.
    pub place: PlaceId,
    /// Value inscription.
    pub expr: Expr,
}

/// A transition with its guard and arcs.
#[derive(Clone, Debug)]
pub struct Transition {
    /// Human-readable name (`t0`, `t1`, ...).
    pub name: String,
    /// Guard formula.
    pub guard: Pred,
    /// Input arcs (the `Pre` row).
    pub pre: Vec<InArc>,
    /// Output arcs (the `Post` row).
    pub post: Vec<OutArc>,
}

/// Token multiset per place.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Marking {
    tokens: Vec<Vec<i64>>,
}

impl Marking {
    /// An empty marking over `n` places.
    pub fn new(n_places: usize) -> Self {
        Marking {
            tokens: vec![Vec::new(); n_places],
        }
    }

    /// Adds a token with `value` to `place`.
    pub fn add(&mut self, place: PlaceId, value: i64) {
        self.tokens[place.0].push(value);
    }

    /// Number of tokens in a place.
    pub fn count(&self, place: PlaceId) -> usize {
        self.tokens[place.0].len()
    }

    /// The tokens of a place.
    pub fn tokens(&self, place: PlaceId) -> &[i64] {
        &self.tokens[place.0]
    }

    /// Removes and returns the first token of a place.
    pub fn take(&mut self, place: PlaceId) -> Option<i64> {
        let ts = &mut self.tokens[place.0];
        if ts.is_empty() {
            None
        } else {
            Some(ts.remove(0))
        }
    }

    /// Replaces the tokens of a place with a single `value` (the paper's
    /// "Checks is synchronously updated with the current resource usage").
    pub fn set_single(&mut self, place: PlaceId, value: i64) {
        self.tokens[place.0].clear();
        self.tokens[place.0].push(value);
    }

    /// Total number of tokens in the net.
    pub fn total(&self) -> usize {
        self.tokens.iter().map(|t| t.len()).sum()
    }
}

/// A symbolic incidence-matrix entry (the paper prints variables, not
/// numbers, in `Aᵀ`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IncidenceEntry {
    /// No arc.
    Zero,
    /// Output arc producing `expr`.
    Pos(String),
    /// Input arc consuming a token bound to `var`.
    Neg(String),
    /// Both an input and output arc (self-loop); shown as `±x∓y`.
    Both(String, String),
}

impl fmt::Display for IncidenceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncidenceEntry::Zero => write!(f, "0"),
            IncidenceEntry::Pos(s) => write!(f, "+{s}"),
            IncidenceEntry::Neg(s) => write!(f, "-{s}"),
            IncidenceEntry::Both(p, n) => write!(f, "+{p}-{n}"),
        }
    }
}

/// The net structure `{P, T, F, R}` (marking held separately so a net can
/// be shared/stepped from multiple initial markings).
#[derive(Clone, Debug, Default)]
pub struct PrtNet {
    place_names: Vec<String>,
    transitions: Vec<Transition>,
}

/// Result of one firing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Firing {
    /// Which transition fired.
    pub transition: TransitionId,
    /// The binding it fired under.
    pub binding: Binding,
}

impl PrtNet {
    /// An empty net.
    pub fn new() -> Self {
        PrtNet::default()
    }

    /// Adds a place, returning its id.
    pub fn add_place(&mut self, name: impl Into<String>) -> PlaceId {
        self.place_names.push(name.into());
        PlaceId(self.place_names.len() - 1)
    }

    /// Adds a transition, returning its id. Panics if any arc references
    /// an unknown place (structural validation — `P ∩ T = ∅` holds by
    /// construction).
    pub fn add_transition(&mut self, t: Transition) -> TransitionId {
        for a in &t.pre {
            assert!(
                a.place.0 < self.place_names.len(),
                "pre-arc to unknown place"
            );
        }
        for a in &t.post {
            assert!(
                a.place.0 < self.place_names.len(),
                "post-arc to unknown place"
            );
        }
        self.transitions.push(t);
        TransitionId(self.transitions.len() - 1)
    }

    /// Number of places.
    pub fn n_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions.
    pub fn n_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// A place's name.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.place_names[p.0]
    }

    /// A transition's name.
    pub fn transition_name(&self, t: TransitionId) -> &str {
        &self.transitions[t.0].name
    }

    /// The transition definition.
    pub fn transition(&self, t: TransitionId) -> &Transition {
        &self.transitions[t.0]
    }

    /// Creates an empty marking shaped for this net.
    pub fn empty_marking(&self) -> Marking {
        Marking::new(self.n_places())
    }

    /// Computes the binding for a transition given a marking, if every
    /// input place has a token. Ambient constants (e.g. `ntotal`) are
    /// provided through `base`.
    fn binding_for(&self, t: &Transition, marking: &Marking, base: &Binding) -> Option<Binding> {
        let mut b = base.clone();
        for arc in &t.pre {
            let tokens = marking.tokens(arc.place);
            let &value = tokens.first()?;
            b.bind(arc.var, value);
        }
        Some(b)
    }

    /// Whether `t` is enabled under `marking` (tokens present + guard).
    pub fn is_enabled(&self, t: TransitionId, marking: &Marking, base: &Binding) -> bool {
        let tr = &self.transitions[t.0];
        match self.binding_for(tr, marking, base) {
            Some(b) => tr.guard.eval(&b).unwrap_or(false),
            None => false,
        }
    }

    /// All enabled transitions, in id order.
    pub fn enabled(&self, marking: &Marking, base: &Binding) -> Vec<TransitionId> {
        (0..self.transitions.len())
            .map(TransitionId)
            .filter(|&t| self.is_enabled(t, marking, base))
            .collect()
    }

    /// Fires `t`, mutating `marking`. Panics if not enabled (callers check
    /// with [`PrtNet::is_enabled`] / use [`PrtNet::fire_first_enabled`]).
    pub fn fire(&self, t: TransitionId, marking: &mut Marking, base: &Binding) -> Firing {
        let tr = &self.transitions[t.0];
        let binding = self
            .binding_for(tr, marking, base)
            .expect("fire: transition not token-enabled");
        assert_eq!(
            tr.guard.eval(&binding),
            Some(true),
            "fire: guard of {} not satisfied",
            tr.name
        );
        for arc in &tr.pre {
            marking.take(arc.place).expect("token vanished");
        }
        for arc in &tr.post {
            let v = arc
                .expr
                .eval(&binding)
                .unwrap_or_else(|| panic!("unbound inscription on {}", tr.name));
            marking.add(arc.place, v);
        }
        Firing {
            transition: t,
            binding,
        }
    }

    /// Fires the lowest-id enabled transition, if any (the deterministic
    /// execution rule used by the mechanism).
    pub fn fire_first_enabled(&self, marking: &mut Marking, base: &Binding) -> Option<Firing> {
        let t = (0..self.transitions.len())
            .map(TransitionId)
            .find(|&t| self.is_enabled(t, marking, base))?;
        Some(self.fire(t, marking, base))
    }

    /// Runs to quiescence or `max_firings`, returning the firing sequence.
    pub fn run_to_quiescence(
        &self,
        marking: &mut Marking,
        base: &Binding,
        max_firings: usize,
    ) -> Vec<Firing> {
        let mut fired = Vec::new();
        while fired.len() < max_firings {
            match self.fire_first_enabled(marking, base) {
                Some(f) => fired.push(f),
                None => break,
            }
        }
        fired
    }

    /// The symbolic incidence matrix `Aᵀ = Post − Pre`, rows = places,
    /// columns = transitions (Fig. 8).
    pub fn incidence(&self) -> Vec<Vec<IncidenceEntry>> {
        let mut m = vec![vec![IncidenceEntry::Zero; self.transitions.len()]; self.n_places()];
        for (ti, t) in self.transitions.iter().enumerate() {
            for arc in &t.pre {
                let cell = &mut m[arc.place.0][ti];
                *cell = match cell.clone() {
                    IncidenceEntry::Zero => IncidenceEntry::Neg(arc.var.to_string()),
                    IncidenceEntry::Pos(p) => IncidenceEntry::Both(p, arc.var.to_string()),
                    other => other,
                };
            }
            for arc in &t.post {
                let cell = &mut m[arc.place.0][ti];
                *cell = match cell.clone() {
                    IncidenceEntry::Zero => IncidenceEntry::Pos(arc.expr.to_string()),
                    IncidenceEntry::Neg(n) => IncidenceEntry::Both(arc.expr.to_string(), n),
                    other => other,
                };
            }
        }
        m
    }

    /// Renders the incidence matrix as an aligned text block.
    pub fn incidence_text(&self) -> String {
        let m = self.incidence();
        let mut out = String::new();
        out.push_str("A^T = Post - Pre\n");
        let header: Vec<String> = self.transitions.iter().map(|t| t.name.clone()).collect();
        out.push_str(&format!("{:>10}", ""));
        for h in &header {
            out.push_str(&format!("{h:>14}"));
        }
        out.push('\n');
        for (pi, row) in m.iter().enumerate() {
            out.push_str(&format!("{:>10}", self.place_names[pi]));
            for cell in row {
                out.push_str(&format!("{:>14}", cell.to_string()));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Cmp;

    /// Builds the paper's *stable* sub-net (Fig. 11): Checks -t2-> Stable
    /// -t3-> Checks with guard 10 < u < 70 on t2.
    fn stable_subnet() -> (PrtNet, PlaceId, PlaceId) {
        let mut net = PrtNet::new();
        let checks = net.add_place("Checks");
        let stable = net.add_place("Stable");
        net.add_transition(Transition {
            name: "t2".into(),
            guard: Pred::and(
                Pred::var_cmp("u", Cmp::Gt, 10),
                Pred::var_cmp("u", Cmp::Lt, 70),
            ),
            pre: vec![InArc {
                place: checks,
                var: "u",
            }],
            post: vec![OutArc {
                place: stable,
                expr: Expr::Var("u"),
            }],
        });
        net.add_transition(Transition {
            name: "t3".into(),
            guard: Pred::True,
            pre: vec![InArc {
                place: stable,
                var: "u",
            }],
            post: vec![OutArc {
                place: checks,
                expr: Expr::Var("u"),
            }],
        });
        (net, checks, stable)
    }

    #[test]
    fn stable_subnet_fires_roundtrip() {
        let (net, checks, stable) = stable_subnet();
        let mut m = net.empty_marking();
        m.add(checks, 40);
        let base = Binding::new();
        let f1 = net.fire_first_enabled(&mut m, &base).expect("t2 enabled");
        assert_eq!(net.transition_name(f1.transition), "t2");
        assert_eq!(m.count(stable), 1);
        assert_eq!(m.tokens(stable), &[40]);
        assert_eq!(m.count(checks), 0);
        let f2 = net.fire_first_enabled(&mut m, &base).expect("t3 enabled");
        assert_eq!(net.transition_name(f2.transition), "t3");
        assert_eq!(m.tokens(checks), &[40]);
        assert_eq!(m.total(), 1, "token conservation in the stable loop");
    }

    #[test]
    fn guard_blocks_out_of_range_token() {
        let (net, checks, _) = stable_subnet();
        let mut m = net.empty_marking();
        m.add(checks, 99); // overload: t2 guard fails
        assert!(net.fire_first_enabled(&mut m, &Binding::new()).is_none());
        assert_eq!(m.tokens(checks), &[99]);
    }

    #[test]
    fn enabled_lists_in_order() {
        let (net, checks, _) = stable_subnet();
        let mut m = net.empty_marking();
        m.add(checks, 40);
        let e = net.enabled(&m, &Binding::new());
        assert_eq!(e, vec![TransitionId(0)]);
    }

    #[test]
    fn run_to_quiescence_bounded() {
        // The stable sub-net loops forever (t2,t3,t2,t3...), so the bound
        // must stop it.
        let (net, checks, _) = stable_subnet();
        let mut m = net.empty_marking();
        m.add(checks, 40);
        let fired = net.run_to_quiescence(&mut m, &Binding::new(), 7);
        assert_eq!(fired.len(), 7);
        assert_eq!(m.total(), 1);
    }

    #[test]
    fn incidence_matches_fig11_shape() {
        let (net, _, _) = stable_subnet();
        let m = net.incidence();
        // Row Checks: -u under t2, +u under t3.
        assert_eq!(m[0][0], IncidenceEntry::Neg("u".into()));
        assert_eq!(m[0][1], IncidenceEntry::Pos("u".into()));
        // Row Stable: +u under t2, -u under t3.
        assert_eq!(m[1][0], IncidenceEntry::Pos("u".into()));
        assert_eq!(m[1][1], IncidenceEntry::Neg("u".into()));
        let text = net.incidence_text();
        assert!(text.contains("Checks"));
        assert!(text.contains("t2"));
    }

    #[test]
    fn ambient_constants_reach_guards() {
        let mut net = PrtNet::new();
        let p = net.add_place("P");
        net.add_transition(Transition {
            name: "t".into(),
            guard: Pred::cmp(Expr::Var("x"), Cmp::Lt, Expr::Var("ntotal")),
            pre: vec![InArc { place: p, var: "x" }],
            post: vec![],
        });
        let mut m = net.empty_marking();
        m.add(p, 3);
        let base = Binding::new().with("ntotal", 16);
        assert!(net.fire_first_enabled(&mut m, &base).is_some());
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn marking_set_single_replaces() {
        let (net, checks, _) = stable_subnet();
        let mut m = net.empty_marking();
        m.add(checks, 1);
        m.add(checks, 2);
        m.set_single(checks, 50);
        assert_eq!(m.tokens(checks), &[50]);
    }

    #[test]
    #[should_panic(expected = "unknown place")]
    fn arc_validation() {
        let mut net = PrtNet::new();
        net.add_transition(Transition {
            name: "bad".into(),
            guard: Pred::True,
            pre: vec![InArc {
                place: PlaceId(9),
                var: "u",
            }],
            post: vec![],
        });
    }
}
