//! Guard predicates and arc expressions — the net inscription `R` of the
//! paper's tuple `{P, T, F, R, M}`.
//!
//! `R : T → <oper, bool>(X)` associates each transition with a first-order
//! logic formula over the variables bound by its input arcs (§III-A).
//! Variables are integer-valued (the paper's `u` is a percentage; ratio
//! metrics are scaled to integers by the caller).

use std::collections::BTreeMap;
use std::fmt;

/// A variable binding produced by matching input-arc inscriptions against
/// consumed tokens, plus any ambient constants (e.g. `ntotal`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Binding {
    vars: BTreeMap<&'static str, i64>,
}

impl Binding {
    /// An empty binding.
    pub fn new() -> Self {
        Binding::default()
    }

    /// Binds `name` to `value` (overwrites).
    pub fn bind(&mut self, name: &'static str, value: i64) {
        self.vars.insert(name, value);
    }

    /// Looks a variable up.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.vars.get(name).copied()
    }

    /// Builder-style bind.
    pub fn with(mut self, name: &'static str, value: i64) -> Self {
        self.bind(name, value);
        self
    }
}

/// An integer expression over bound variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A literal.
    Const(i64),
    /// A bound variable.
    Var(&'static str),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// `Var(name) + k` — the common allocation increment.
    pub fn var_plus(name: &'static str, k: i64) -> Expr {
        Expr::Add(Box::new(Expr::Var(name)), Box::new(Expr::Const(k)))
    }

    /// Evaluates under a binding. Returns `None` on unbound variables
    /// (an inscription bug surfaced at validation time).
    pub fn eval(&self, b: &Binding) -> Option<i64> {
        match self {
            Expr::Const(k) => Some(*k),
            Expr::Var(v) => b.get(v),
            Expr::Add(l, r) => Some(l.eval(b)?.checked_add(r.eval(b)?)?),
            Expr::Sub(l, r) => Some(l.eval(b)?.checked_sub(r.eval(b)?)?),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(k) => write!(f, "{k}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(l, r) => write!(f, "{l}+{r}"),
            Expr::Sub(l, r) => write!(f, "{l}-{r}"),
        }
    }
}

/// Comparison operators of the guard language.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl Cmp {
    fn apply(self, l: i64, r: i64) -> bool {
        match self {
            Cmp::Lt => l < r,
            Cmp::Le => l <= r,
            Cmp::Eq => l == r,
            Cmp::Ne => l != r,
            Cmp::Ge => l >= r,
            Cmp::Gt => l > r,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
            Cmp::Ge => ">=",
            Cmp::Gt => ">",
        };
        write!(f, "{s}")
    }
}

/// A first-order guard formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pred {
    /// Always true (e.g. the paper's `t3`).
    True,
    /// Binary comparison.
    Cmp(Expr, Cmp, Expr),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// `l op r` helper.
    pub fn cmp(l: Expr, op: Cmp, r: Expr) -> Pred {
        Pred::Cmp(l, op, r)
    }

    /// `var op const` helper — the common predicate shape
    /// (`u >= 70`, `nalloc < 16`, ...).
    pub fn var_cmp(name: &'static str, op: Cmp, k: i64) -> Pred {
        Pred::Cmp(Expr::Var(name), op, Expr::Const(k))
    }

    /// `a && b` helper.
    pub fn and(a: Pred, b: Pred) -> Pred {
        Pred::And(Box::new(a), Box::new(b))
    }

    /// Evaluates under a binding; `None` on unbound variables.
    pub fn eval(&self, b: &Binding) -> Option<bool> {
        match self {
            Pred::True => Some(true),
            Pred::Cmp(l, op, r) => Some(op.apply(l.eval(b)?, r.eval(b)?)),
            Pred::And(a, c) => Some(a.eval(b)? && c.eval(b)?),
            Pred::Or(a, c) => Some(a.eval(b)? || c.eval(b)?),
            Pred::Not(a) => Some(!a.eval(b)?),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
            Pred::And(a, b) => write!(f, "({a} && {b})"),
            Pred::Or(a, b) => write!(f, "({a} || {b})"),
            Pred::Not(a) => write!(f, "!({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval() {
        let b = Binding::new().with("u", 40).with("nalloc", 3);
        assert_eq!(Expr::Const(5).eval(&b), Some(5));
        assert_eq!(Expr::Var("u").eval(&b), Some(40));
        assert_eq!(Expr::var_plus("nalloc", 1).eval(&b), Some(4));
        assert_eq!(
            Expr::Sub(Box::new(Expr::Var("nalloc")), Box::new(Expr::Const(1))).eval(&b),
            Some(2)
        );
        assert_eq!(Expr::Var("missing").eval(&b), None);
    }

    #[test]
    fn pred_eval_paper_guards() {
        // The paper's t1 guard: u >= 70.
        let t1 = Pred::var_cmp("u", Cmp::Ge, 70);
        assert_eq!(t1.eval(&Binding::new().with("u", 99)), Some(true));
        assert_eq!(t1.eval(&Binding::new().with("u", 40)), Some(false));
        // t2: 10 < u < 70.
        let t2 = Pred::and(
            Pred::var_cmp("u", Cmp::Gt, 10),
            Pred::var_cmp("u", Cmp::Lt, 70),
        );
        assert_eq!(t2.eval(&Binding::new().with("u", 40)), Some(true));
        assert_eq!(t2.eval(&Binding::new().with("u", 10)), Some(false));
        assert_eq!(t2.eval(&Binding::new().with("u", 70)), Some(false));
    }

    #[test]
    fn logical_connectives() {
        let b = Binding::new().with("x", 1);
        let p = Pred::Or(
            Box::new(Pred::var_cmp("x", Cmp::Eq, 2)),
            Box::new(Pred::Not(Box::new(Pred::var_cmp("x", Cmp::Eq, 3)))),
        );
        assert_eq!(p.eval(&b), Some(true));
        assert_eq!(Pred::True.eval(&Binding::new()), Some(true));
    }

    #[test]
    fn unbound_guard_is_none() {
        let p = Pred::var_cmp("ghost", Cmp::Eq, 1);
        assert_eq!(p.eval(&Binding::new()), None);
    }

    #[test]
    fn display_round() {
        let p = Pred::and(
            Pred::var_cmp("u", Cmp::Ge, 70),
            Pred::var_cmp("nalloc", Cmp::Lt, 16),
        );
        assert_eq!(format!("{p}"), "(u >= 70 && nalloc < 16)");
        assert_eq!(format!("{}", Expr::var_plus("nalloc", 1)), "nalloc+1");
    }
}
