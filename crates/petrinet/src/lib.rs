//! # prt-petrinet — Predicate/Transition nets for elastic core allocation
//!
//! A small, dependency-free PrT-net engine implementing the abstract model
//! of *"An Elastic Multi-Core Allocation Mechanism for Database Systems"*
//! (ICDE 2018, §III): the domain `{P, T, F, R, M}` with valued tokens,
//! first-order guards, `Pre`/`Post` flow functions and the symbolic
//! incidence matrix `Aᵀ = Post − Pre` of Fig. 8.
//!
//! [`ElasticNet`] is the paper's concrete five-place net
//! (`Checks`, `Idle`, `Stable`, `Overload`, `Provision`; `t0..t7`). One
//! [`ElasticNet::step`] is one rule-condition-action cycle: inject the
//! measured resource usage, fire to quiescence, and read off whether a
//! core must be allocated or released.
//!
//! ```
//! use prt_petrinet::{ElasticNet, Thresholds, AllocAction};
//!
//! let mut net = ElasticNet::new(Thresholds::cpu_load_default(), 16, 3);
//! let report = net.step(99); // CPU load at 99%
//! assert_eq!(report.action, AllocAction::Allocate);
//! assert_eq!(report.label, "t1-Overload-t5"); // as in the paper's Fig. 7
//! assert_eq!(net.nalloc(), 4);
//! ```

pub mod elastic;
pub mod expr;
pub mod net;

pub use elastic::{AllocAction, ElasticNet, StateKind, StepReport, Thresholds};
pub use expr::{Binding, Cmp, Expr, Pred};
pub use net::{
    Firing, InArc, IncidenceEntry, Marking, OutArc, PlaceId, PrtNet, Transition, TransitionId,
};
