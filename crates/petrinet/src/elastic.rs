//! The paper's elastic core-allocation net (§III-B).
//!
//! Places `P = {Checks, Idle, Stable, Overload, Provision}` and
//! transitions `T = {t0..t7}`:
//!
//! | transition | sub-net   | guard                 | effect |
//! |------------|-----------|-----------------------|--------|
//! | `t0` | idle     | `u <= thmin`           | Checks → Idle |
//! | `t1` | overload | `u >= thmax`           | Checks → Overload |
//! | `t2` | stable   | `thmin < u < thmax`    | Checks → Stable |
//! | `t3` | stable   | true                   | Stable → Checks |
//! | `t4` | idle     | `nalloc > 1`           | Idle → Checks, releases a core |
//! | `t7` | idle     | `nalloc == 1`          | Idle → Checks, lower bound hit |
//! | `t5` | overload | `nalloc < ntotal`      | Overload → Checks, allocates a core |
//! | `t6` | overload | `nalloc == ntotal`     | Overload → Checks, upper bound hit |
//!
//! `Checks` carries the resource-usage token `u` (CPU load percent by
//! default; the HT/IMC ratio strategy of §V-B uses per-mille). `Provision`
//! carries the `nalloc` token. The initial marking is
//! `m0(Provision) = {nalloc0}` (the paper starts with one core).

use crate::expr::{Binding, Cmp, Expr, Pred};
use crate::net::{InArc, Marking, OutArc, PlaceId, PrtNet, Transition, TransitionId};

/// Performance thresholds (integer domain units).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Thresholds {
    /// Below-or-equal ⇒ Idle.
    pub thmin: i64,
    /// Above-or-equal ⇒ Overload.
    pub thmax: i64,
}

impl Thresholds {
    /// The paper's CPU-load thresholds (percent): `thmin=10, thmax=70`,
    /// "following the rules of thumb in the literature".
    pub fn cpu_load_default() -> Self {
        Thresholds {
            thmin: 10,
            thmax: 70,
        }
    }

    /// The paper's HT/IMC-ratio thresholds (§V-B): `0.1 / 0.4`, scaled to
    /// per-mille so tokens stay integral.
    pub fn ht_imc_default() -> Self {
        Thresholds {
            thmin: 100,
            thmax: 400,
        }
    }

    /// Validates `thmin < thmax`.
    pub fn validate(&self) {
        assert!(
            self.thmin < self.thmax,
            "thmin ({}) must be below thmax ({})",
            self.thmin,
            self.thmax
        );
    }
}

/// The database performance state after a step (the paper's places).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateKind {
    /// `u <= thmin`.
    Idle,
    /// `thmin < u < thmax`.
    Stable,
    /// `u >= thmax`.
    Overload,
}

impl StateKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            StateKind::Idle => "Idle",
            StateKind::Stable => "Stable",
            StateKind::Overload => "Overload",
        }
    }
}

/// The action the mechanism must take after a step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocAction {
    /// Allocate one more core (t5 fired).
    Allocate,
    /// Release one core (t4 fired).
    Release,
    /// Keep the current allocation (t3, t6 or t7 fired).
    Hold,
}

/// Report of one rule-condition-action step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Classified state.
    pub state: StateKind,
    /// Resulting action.
    pub action: AllocAction,
    /// Fired transition ids, in order.
    pub fired: Vec<TransitionId>,
    /// Label in the paper's Fig. 7 style, e.g. `"t1-Overload-t5"`.
    pub label: String,
    /// `nalloc` after the step.
    pub nalloc: u32,
    /// The `u` value the step classified.
    pub u: i64,
}

/// The elastic net plus its marking and ambient constants.
#[derive(Clone, Debug)]
pub struct ElasticNet {
    net: PrtNet,
    marking: Marking,
    thresholds: Thresholds,
    ntotal: u32,
    checks: PlaceId,
    provision: PlaceId,
    idle: PlaceId,
    stable: PlaceId,
    overload: PlaceId,
    /// t0..t7 ids for label generation.
    t: [TransitionId; 8],
}

impl ElasticNet {
    /// Builds the net with `ntotal` cores available, `nalloc0` initially
    /// allocated (the paper defaults to 1) and the given thresholds.
    pub fn new(thresholds: Thresholds, ntotal: u32, nalloc0: u32) -> Self {
        thresholds.validate();
        assert!(ntotal >= 1, "need at least one core");
        assert!(
            (1..=ntotal).contains(&nalloc0),
            "nalloc0 must be in 1..=ntotal"
        );
        let mut net = PrtNet::new();
        let checks = net.add_place("Checks");
        let idle = net.add_place("Idle");
        let stable = net.add_place("Stable");
        let overload = net.add_place("Overload");
        let provision = net.add_place("Provision");

        let u_arc = |p| InArc { place: p, var: "u" };
        let n_arc = |p| InArc {
            place: p,
            var: "nalloc",
        };
        let out_u = |p| OutArc {
            place: p,
            expr: Expr::Var("u"),
        };
        let out_n = |p, d: i64| OutArc {
            place: p,
            expr: if d == 0 {
                Expr::Var("nalloc")
            } else {
                Expr::var_plus("nalloc", d)
            },
        };

        // t0: Checks --(u <= thmin)--> Idle
        let t0 = net.add_transition(Transition {
            name: "t0".into(),
            guard: Pred::var_cmp("u", Cmp::Le, thresholds.thmin),
            pre: vec![u_arc(checks)],
            post: vec![out_u(idle)],
        });
        // t1: Checks --(u >= thmax)--> Overload
        let t1 = net.add_transition(Transition {
            name: "t1".into(),
            guard: Pred::var_cmp("u", Cmp::Ge, thresholds.thmax),
            pre: vec![u_arc(checks)],
            post: vec![out_u(overload)],
        });
        // t2: Checks --(thmin < u < thmax)--> Stable
        let t2 = net.add_transition(Transition {
            name: "t2".into(),
            guard: Pred::and(
                Pred::var_cmp("u", Cmp::Gt, thresholds.thmin),
                Pred::var_cmp("u", Cmp::Lt, thresholds.thmax),
            ),
            pre: vec![u_arc(checks)],
            post: vec![out_u(stable)],
        });
        // t3: Stable --> Checks (monitor again)
        let t3 = net.add_transition(Transition {
            name: "t3".into(),
            guard: Pred::True,
            pre: vec![u_arc(stable)],
            post: vec![out_u(checks)],
        });
        // t4: Idle + Provision --(nalloc > 1)--> Checks + Provision(nalloc-1)
        let t4 = net.add_transition(Transition {
            name: "t4".into(),
            guard: Pred::var_cmp("nalloc", Cmp::Gt, 1),
            pre: vec![u_arc(idle), n_arc(provision)],
            post: vec![out_u(checks), out_n(provision, -1)],
        });
        // t5: Overload + Provision --(nalloc < ntotal)--> Checks + Provision(nalloc+1)
        let t5 = net.add_transition(Transition {
            name: "t5".into(),
            guard: Pred::cmp(Expr::Var("nalloc"), Cmp::Lt, Expr::Var("ntotal")),
            pre: vec![u_arc(overload), n_arc(provision)],
            post: vec![out_u(checks), out_n(provision, 1)],
        });
        // t6: Overload + Provision --(nalloc == ntotal)--> Checks + Provision(nalloc)
        let t6 = net.add_transition(Transition {
            name: "t6".into(),
            guard: Pred::cmp(Expr::Var("nalloc"), Cmp::Eq, Expr::Var("ntotal")),
            pre: vec![u_arc(overload), n_arc(provision)],
            post: vec![out_u(checks), out_n(provision, 0)],
        });
        // t7: Idle + Provision --(nalloc == 1)--> Checks + Provision(nalloc)
        let t7 = net.add_transition(Transition {
            name: "t7".into(),
            guard: Pred::var_cmp("nalloc", Cmp::Eq, 1),
            pre: vec![u_arc(idle), n_arc(provision)],
            post: vec![out_u(checks), out_n(provision, 0)],
        });

        let mut marking = net.empty_marking();
        marking.add(provision, nalloc0 as i64);

        ElasticNet {
            net,
            marking,
            thresholds,
            ntotal,
            checks,
            provision,
            idle,
            stable,
            overload,
            t: [t0, t1, t2, t3, t4, t5, t6, t7],
        }
    }

    /// The underlying generic net (incidence export, inspection).
    pub fn net(&self) -> &PrtNet {
        &self.net
    }

    /// Current number of allocated cores (the `Provision` token).
    pub fn nalloc(&self) -> u32 {
        self.marking.tokens(self.provision)[0] as u32
    }

    /// Forces the `Provision` token (used when the actuator could not
    /// honour an action, keeping model and system consistent).
    pub fn set_nalloc(&mut self, nalloc: u32) {
        assert!((1..=self.ntotal).contains(&nalloc), "nalloc out of range");
        self.marking.set_single(self.provision, nalloc as i64);
    }

    /// Total cores of the machine.
    pub fn ntotal(&self) -> u32 {
        self.ntotal
    }

    /// The configured thresholds.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// One rule-condition-action step: inject the measured usage `u` into
    /// `Checks`, run the net to quiescence, and report the classified
    /// state, fired path and resulting action.
    pub fn step(&mut self, u: i64) -> StepReport {
        // Rule: the Checks place is synchronously updated with the current
        // resource usage.
        self.marking.set_single(self.checks, u);
        let base = Binding::new().with("ntotal", self.ntotal as i64);
        let before = self.nalloc();

        // Condition/action: fire until the token returns to Checks. The
        // net is 1-safe on the state places, so at most 2 firings are
        // needed for idle/overload paths and exactly 2 for stable; the
        // bound of 4 guards against inscription bugs.
        let mut fired = Vec::with_capacity(2);
        for _ in 0..4 {
            match self.net.fire_first_enabled(&mut self.marking, &base) {
                Some(f) => {
                    let state_pending = [self.idle, self.stable, self.overload]
                        .iter()
                        .any(|&p| self.marking.count(p) > 0);
                    fired.push(f.transition);
                    if !state_pending {
                        break;
                    }
                }
                None => break,
            }
        }
        debug_assert_eq!(
            self.marking.count(self.checks),
            1,
            "token must return to Checks"
        );

        let state = if u <= self.thresholds.thmin {
            StateKind::Idle
        } else if u >= self.thresholds.thmax {
            StateKind::Overload
        } else {
            StateKind::Stable
        };
        let after = self.nalloc();
        let action = match after.cmp(&before) {
            std::cmp::Ordering::Greater => AllocAction::Allocate,
            std::cmp::Ordering::Less => AllocAction::Release,
            std::cmp::Ordering::Equal => AllocAction::Hold,
        };
        let label = match fired.as_slice() {
            [a, b] => format!(
                "{}-{}-{}",
                self.net.transition_name(*a),
                state.name(),
                self.net.transition_name(*b)
            ),
            [a] => format!("{}-{}", self.net.transition_name(*a), state.name()),
            _ => state.name().to_string(),
        };
        StepReport {
            state,
            action,
            fired,
            label,
            nalloc: after,
            u,
        }
    }

    /// Structural invariant used by tests: outside of `step`, exactly one
    /// token sits in `Provision`, at most one in `Checks`, and none in the
    /// state places.
    pub fn check_invariants(&self) {
        assert_eq!(
            self.marking.count(self.provision),
            1,
            "Provision not 1-safe"
        );
        assert!(self.marking.count(self.checks) <= 1, "Checks overfull");
        for p in [self.idle, self.stable, self.overload] {
            assert_eq!(self.marking.count(p), 0, "state place retained a token");
        }
        let n = self.nalloc();
        assert!((1..=self.ntotal).contains(&n), "nalloc out of bounds: {n}");
    }

    /// The ids of `t0..t7` (for tests and trace decoding).
    pub fn transition_ids(&self) -> [TransitionId; 8] {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net16() -> ElasticNet {
        ElasticNet::new(Thresholds::cpu_load_default(), 16, 1)
    }

    #[test]
    fn overload_allocates_until_full() {
        let mut net = net16();
        for expected in 2..=16 {
            let r = net.step(99);
            assert_eq!(r.state, StateKind::Overload);
            assert_eq!(r.action, AllocAction::Allocate);
            assert_eq!(r.nalloc, expected);
            net.check_invariants();
        }
        // At ntotal, t6 holds.
        let r = net.step(99);
        assert_eq!(r.action, AllocAction::Hold);
        assert_eq!(r.nalloc, 16);
        assert_eq!(r.label, "t1-Overload-t6");
    }

    #[test]
    fn idle_releases_until_one() {
        let mut net = ElasticNet::new(Thresholds::cpu_load_default(), 16, 4);
        for expected in (1..=3).rev() {
            let r = net.step(5);
            assert_eq!(r.state, StateKind::Idle);
            assert_eq!(r.action, AllocAction::Release);
            assert_eq!(r.nalloc, expected);
            net.check_invariants();
        }
        let r = net.step(5);
        assert_eq!(r.action, AllocAction::Hold);
        assert_eq!(r.nalloc, 1);
        assert_eq!(r.label, "t0-Idle-t7");
    }

    #[test]
    fn stable_holds() {
        let mut net = ElasticNet::new(Thresholds::cpu_load_default(), 16, 3);
        let r = net.step(40);
        assert_eq!(r.state, StateKind::Stable);
        assert_eq!(r.action, AllocAction::Hold);
        assert_eq!(r.nalloc, 3);
        assert_eq!(r.label, "t2-Stable-t3");
        net.check_invariants();
    }

    #[test]
    fn paper_example_fig9() {
        // Fig. 9: u = 99%, nalloc = 3 of 16, thmax = 70 -> t1 then t5,
        // allocating a fourth core.
        let mut net = ElasticNet::new(Thresholds::cpu_load_default(), 16, 3);
        let r = net.step(99);
        assert_eq!(r.label, "t1-Overload-t5");
        assert_eq!(r.nalloc, 4);
    }

    #[test]
    fn paper_example_fig10() {
        // Fig. 10: u = 8..10%, 5 cores provisioned, thmin = 10 -> t0 then
        // t4, releasing one core.
        let mut net = ElasticNet::new(Thresholds::cpu_load_default(), 16, 5);
        let r = net.step(8);
        assert_eq!(r.label, "t0-Idle-t4");
        assert_eq!(r.nalloc, 4);
    }

    #[test]
    fn boundary_values_route_correctly() {
        let mut net = ElasticNet::new(Thresholds::cpu_load_default(), 16, 8);
        assert_eq!(net.step(10).state, StateKind::Idle); // u == thmin
        assert_eq!(net.step(70).state, StateKind::Overload); // u == thmax
        assert_eq!(net.step(11).state, StateKind::Stable);
        assert_eq!(net.step(69).state, StateKind::Stable);
    }

    #[test]
    fn ht_imc_thresholds() {
        let mut net = ElasticNet::new(Thresholds::ht_imc_default(), 16, 4);
        // Ratio 0.05 (50 per-mille) <= 0.1 -> idle -> release.
        assert_eq!(net.step(50).action, AllocAction::Release);
        // Ratio 0.5 (500 per-mille) >= 0.4 -> overload -> allocate.
        assert_eq!(net.step(500).action, AllocAction::Allocate);
    }

    #[test]
    fn set_nalloc_resyncs_model() {
        let mut net = net16();
        net.set_nalloc(7);
        assert_eq!(net.nalloc(), 7);
        let r = net.step(5);
        assert_eq!(r.nalloc, 6);
        net.check_invariants();
    }

    #[test]
    fn incidence_has_eight_transitions_five_places() {
        let net = net16();
        let m = net.net().incidence();
        assert_eq!(m.len(), 5);
        assert_eq!(m[0].len(), 8);
        let text = net.net().incidence_text();
        for name in ["Checks", "Idle", "Stable", "Overload", "Provision"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn mutually_exclusive_classification() {
        // For any u exactly one of t0/t1/t2 is enabled from Checks.
        let net = net16();
        for u in -5..=120 {
            let mut m = net.net().empty_marking();
            m.add(PlaceId(0), u); // Checks
            m.add(PlaceId(4), 3); // Provision
            let base = Binding::new().with("ntotal", 16);
            let enabled = net.net().enabled(&m, &base);
            let classifiers = enabled.iter().filter(|t| t.0 <= 2).count();
            assert_eq!(classifiers, 1, "u={u} enabled {classifiers} classifiers");
        }
    }

    #[test]
    #[should_panic(expected = "thmin")]
    fn inverted_thresholds_rejected() {
        let _ = ElasticNet::new(
            Thresholds {
                thmin: 70,
                thmax: 10,
            },
            16,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "nalloc0")]
    fn bad_initial_allocation_rejected() {
        let _ = ElasticNet::new(Thresholds::cpu_load_default(), 16, 0);
    }
}
