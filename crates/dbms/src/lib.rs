//! # volcano-db — a Volcano-style columnar DBMS over a simulated NUMA box
//!
//! The database substrate of the ICDE'18 "Elastic Multi-Core Allocation"
//! reproduction. It implements the engine model the paper evaluates:
//!
//! - **BAT storage** (`storage`): typed column vectors bound to simulated
//!   memory regions, with a catalog of the TPC-H schema;
//! - **TPC-H workload** (`tpch`): deterministic data generation plus the
//!   22 query plans (Q6 exactly matching the paper's Fig. 3 MAL plan);
//! - **execution** (`exec`): MAL-style operator DAGs, horizontal
//!   partitioning into worker tasks (operator-at-a-time materialisation),
//!   genuine operator evaluation, a worker pool scheduled by the
//!   simulated OS, per-operator Tomograph tracing, and two flavors —
//!   MonetDB-like (OS-scheduled) and SQL Server-like (NUMA-aware pinned);
//! - **clients** (`client`): closed-loop concurrent sessions with the
//!   paper's Repeat / StablePhases / Mixed workloads;
//! - **hand-coded baseline** (`handcoded`): the fused pthreads Q6 of
//!   §II-B with OS/Dense/Sparse affinity.

pub mod client;
pub mod exec;
pub mod handcoded;
pub mod storage;
pub mod tpch;

pub use client::{drain_results, spawn_clients, ClientBody, SharedLog, Workload};
pub use exec::{Engine, EngineConfig, EngineStats, Flavor, QueryResult};
pub use storage::{Bat, BatStore, Catalog, ColData};
pub use tpch::{build_query, query_name, QuerySpec, TpchData, TpchScale};
