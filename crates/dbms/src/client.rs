//! Client sessions and workload drivers.
//!
//! The paper's experiments run 1–256 *concurrent clients* in a closed
//! loop: each client submits a query, waits for its completion, and
//! immediately submits the next. Three workload types reproduce §V:
//!
//! - [`Workload::Repeat`] — the same query over and over (the Q6 and
//!   thetasubselect microbenchmarks, Figs. 4/13/14/15);
//! - [`Workload::StablePhases`] — all clients run query *i* concurrently,
//!   then everyone advances to query *i+1* (Fig. 18);
//! - [`Workload::Mixed`] — every client continuously runs a random query
//!   of the 22 (Fig. 19/20).

use crate::exec::engine::{Engine, QueryResult};
use crate::exec::task::QueryId;
use crate::tpch::queries::{build_query, QuerySpec};
use emca_metrics::SimDuration;
use os_sim::{SimWork, StepOutcome, Tid, WorkCtx};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// What a client session runs.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Run `spec` exactly `iterations` times.
    Repeat {
        /// The query.
        spec: QuerySpec,
        /// How many executions per client.
        iterations: u32,
    },
    /// Phase `i` = every client executes `specs[i]` once; a shared
    /// barrier advances all clients to the next phase together.
    StablePhases {
        /// The phase queries, in order.
        specs: Vec<QuerySpec>,
    },
    /// Each iteration picks a uniformly random query from `specs`
    /// (deterministic per-client RNG).
    Mixed {
        /// Candidate queries.
        specs: Vec<QuerySpec>,
        /// Iterations per client.
        iterations: u32,
        /// Base seed (client index is mixed in).
        seed: u64,
    },
}

/// Shared barrier state for [`Workload::StablePhases`].
pub struct PhaseBarrier {
    n_clients: usize,
    phase: usize,
    arrived: usize,
    waiting: Vec<Tid>,
}

impl PhaseBarrier {
    /// A barrier for `n_clients` participants.
    pub fn new(n_clients: usize) -> Rc<RefCell<PhaseBarrier>> {
        Rc::new(RefCell::new(PhaseBarrier {
            n_clients,
            phase: 0,
            arrived: 0,
            waiting: Vec::new(),
        }))
    }

    /// Current phase index.
    pub fn phase(&self) -> usize {
        self.phase
    }
}

/// Completed-query records of one client.
#[derive(Clone, Debug, Default)]
pub struct ClientLog {
    /// One entry per completed query.
    pub results: Vec<QueryResult>,
    /// One rendered [`crate::exec::QueryError`] per *failed* query
    /// (e.g. fault-plan poisoning). A failed query never aliases an
    /// unfinished one: it is recorded here and the client moves on.
    pub errors: Vec<String>,
}

/// Shared collection of client logs (harness side).
pub type SharedLog = Rc<RefCell<ClientLog>>;

enum ClientState {
    /// Ready to pick the next query.
    Idle,
    /// Burning the parse/optimise overhead before submitting `spec`.
    Planning {
        /// The query to submit once planning completes.
        spec: QuerySpec,
        /// Remaining planning CPU time.
        remaining: SimDuration,
    },
    /// Waiting for a submitted query.
    Waiting(QueryId),
    /// Parked on the phase barrier.
    AtBarrier(usize),
    /// Done.
    Finished,
}

/// A client session thread body.
pub struct ClientBody {
    engine: Engine,
    workload: Workload,
    iteration: u32,
    state: ClientState,
    log: SharedLog,
    rng: StdRng,
    barrier: Option<Rc<RefCell<PhaseBarrier>>>,
    #[allow(dead_code)]
    client_idx: usize,
}

impl ClientBody {
    /// Creates a client. For [`Workload::StablePhases`] a shared barrier
    /// must be supplied.
    pub fn new(
        engine: Engine,
        workload: Workload,
        #[allow(dead_code)] client_idx: usize,
        barrier: Option<Rc<RefCell<PhaseBarrier>>>,
    ) -> (Self, SharedLog) {
        let seed = match &workload {
            Workload::Mixed { seed, .. } => seed.wrapping_add(client_idx as u64 * 0x9e37),
            _ => client_idx as u64,
        };
        if matches!(workload, Workload::StablePhases { .. }) {
            assert!(barrier.is_some(), "stable phases need a shared barrier");
        }
        let log: SharedLog = Rc::new(RefCell::new(ClientLog::default()));
        (
            ClientBody {
                engine,
                workload,
                iteration: 0,
                state: ClientState::Idle,
                log: Rc::clone(&log),
                rng: StdRng::seed_from_u64(seed),
                barrier,
                client_idx,
            },
            log,
        )
    }

    /// Decides the next query to run, or `None` when the workload is
    /// exhausted. May park the client at the phase barrier.
    fn next_spec(&mut self) -> NextAction {
        match &self.workload {
            Workload::Repeat { spec, iterations } => {
                if self.iteration >= *iterations {
                    NextAction::Done
                } else {
                    self.iteration += 1;
                    NextAction::Run(*spec)
                }
            }
            Workload::StablePhases { specs } => {
                let barrier = self.barrier.as_ref().expect("barrier checked at new");
                let phase = barrier.borrow().phase();
                if phase >= specs.len() {
                    NextAction::Done
                } else if self.iteration as usize > phase {
                    // Already ran this phase's query: wait for the others.
                    NextAction::Barrier(phase)
                } else {
                    self.iteration += 1;
                    NextAction::Run(specs[phase])
                }
            }
            Workload::Mixed {
                specs, iterations, ..
            } => {
                if self.iteration >= *iterations {
                    NextAction::Done
                } else {
                    self.iteration += 1;
                    let i = self.rng.random_range(0..specs.len());
                    NextAction::Run(specs[i])
                }
            }
        }
    }

    /// Arrives at the barrier; returns true if this arrival released the
    /// phase (the caller then wakes the waiters).
    fn arrive_barrier(&mut self, ctx: &mut WorkCtx<'_>, phase: usize) -> bool {
        let barrier = Rc::clone(self.barrier.as_ref().expect("barrier present"));
        let mut b = barrier.borrow_mut();
        if b.phase != phase {
            // Phase already advanced while we were being scheduled.
            return true;
        }
        b.arrived += 1;
        if b.arrived >= b.n_clients {
            b.phase += 1;
            b.arrived = 0;
            let waiters = std::mem::take(&mut b.waiting);
            for tid in waiters {
                ctx.wake(tid);
            }
            true
        } else {
            b.waiting.push(ctx.tid);
            false
        }
    }
}

enum NextAction {
    Run(QuerySpec),
    Barrier(usize),
    Done,
}

impl SimWork for ClientBody {
    fn step(&mut self, ctx: &mut WorkCtx<'_>) -> StepOutcome {
        let mut used = SimDuration::ZERO;
        loop {
            match &self.state {
                ClientState::Finished => return StepOutcome::Finished(used),
                ClientState::Planning { spec, remaining } => {
                    let spec = *spec;
                    let burn = (*remaining).min(ctx.budget.saturating_sub(used));
                    used += burn;
                    let left = remaining.saturating_sub(burn);
                    if left.is_zero() {
                        let plan = Rc::new(build_query(&spec));
                        let qid = self.engine.submit(ctx, plan, spec.tag(), used);
                        self.state = ClientState::Waiting(qid);
                        return StepOutcome::Blocked(used);
                    }
                    self.state = ClientState::Planning {
                        spec,
                        remaining: left,
                    };
                    return StepOutcome::Ran(used);
                }
                ClientState::Waiting(qid) => {
                    let qid = *qid;
                    match self.engine.take_result(qid) {
                        Some(Ok(result)) => {
                            self.log.borrow_mut().results.push(result);
                            self.state = ClientState::Idle;
                        }
                        Some(Err(error)) => {
                            // A failed query is terminal for the query,
                            // not the client: record the typed error and
                            // continue the workload.
                            self.log.borrow_mut().errors.push(error.to_string());
                            self.state = ClientState::Idle;
                        }
                        // Spurious wake (e.g. broadcast): keep waiting.
                        None => return StepOutcome::Blocked(used),
                    }
                }
                ClientState::AtBarrier(phase) => {
                    let phase = *phase;
                    let current = self
                        .barrier
                        .as_ref()
                        .expect("barrier present")
                        .borrow()
                        .phase();
                    if current > phase {
                        self.state = ClientState::Idle;
                    } else {
                        return StepOutcome::Blocked(used);
                    }
                }
                ClientState::Idle => match self.next_spec() {
                    NextAction::Done => {
                        self.state = ClientState::Finished;
                        return StepOutcome::Finished(used);
                    }
                    NextAction::Barrier(phase) => {
                        if self.arrive_barrier(ctx, phase) {
                            self.state = ClientState::Idle;
                        } else {
                            self.state = ClientState::AtBarrier(phase);
                            return StepOutcome::Blocked(used);
                        }
                    }
                    NextAction::Run(spec) => {
                        // Parse/plan overhead is charged to the session,
                        // spread across ticks by the Planning state.
                        self.state = ClientState::Planning {
                            spec,
                            remaining: self.engine.plan_overhead(),
                        };
                    }
                },
            }
        }
    }

    fn label(&self) -> &str {
        "client"
    }
}

/// Spawns `n` concurrent clients into `group`, returning their logs.
pub fn spawn_clients(
    kernel: &mut os_sim::Kernel,
    engine: &Engine,
    group: os_sim::GroupId,
    n: usize,
    workload: Workload,
) -> Vec<SharedLog> {
    let barrier = match &workload {
        Workload::StablePhases { .. } => Some(PhaseBarrier::new(n)),
        _ => None,
    };
    (0..n)
        .map(|i| {
            let (body, log) = ClientBody::new(engine.clone(), workload.clone(), i, barrier.clone());
            kernel.spawn(format!("client{i}"), group, None, Box::new(body));
            log
        })
        .collect()
}

/// Materialises the query sequence one client will run, as phases: every
/// query of phase `p` completes before any client starts phase `p+1`
/// (the threads backend separates phases with a [`std::sync::Barrier`]).
/// `Repeat` and `Mixed` are a single phase; `StablePhases` is one query
/// per phase — the same sequencing [`ClientBody`] produces in the
/// simulation. The `Mixed` draws use the identical seed mixing and RNG,
/// so a client runs the same queries on either backend.
pub fn materialize_phases(workload: &Workload, client_idx: usize) -> Vec<Vec<QuerySpec>> {
    match workload {
        Workload::Repeat { spec, iterations } => {
            vec![vec![*spec; *iterations as usize]]
        }
        Workload::StablePhases { specs } => specs.iter().map(|s| vec![*s]).collect(),
        Workload::Mixed {
            specs,
            iterations,
            seed,
        } => {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(client_idx as u64 * 0x9e37));
            vec![(0..*iterations)
                .map(|_| specs[rng.random_range(0..specs.len())])
                .collect()]
        }
    }
}

/// Collects every query result recorded across client logs.
pub fn drain_results(logs: &[SharedLog]) -> Vec<QueryResult> {
    logs.iter()
        .flat_map(|l| l.borrow().results.clone())
        .collect()
}

/// Collects every rendered query error recorded across client logs.
pub fn drain_errors(logs: &[SharedLog]) -> Vec<String> {
    logs.iter()
        .flat_map(|l| l.borrow().errors.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_workload_counts_iterations() {
        let engine = Engine::new(crate::exec::engine::EngineConfig::default(), 4);
        let (mut body, _log) = ClientBody::new(
            engine,
            Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 2,
            },
            0,
            None,
        );
        assert!(matches!(body.next_spec(), NextAction::Run(_)));
        assert!(matches!(body.next_spec(), NextAction::Run(_)));
        assert!(matches!(body.next_spec(), NextAction::Done));
    }

    #[test]
    fn mixed_workload_is_deterministic_per_client() {
        let engine = Engine::new(crate::exec::engine::EngineConfig::default(), 4);
        let specs: Vec<QuerySpec> = (1..=22)
            .map(|n| QuerySpec::Tpch {
                number: n,
                variant: 0,
            })
            .collect();
        let mk = |idx| {
            let (mut body, _) = ClientBody::new(
                engine.clone(),
                Workload::Mixed {
                    specs: specs.clone(),
                    iterations: 10,
                    seed: 7,
                },
                idx,
                None,
            );
            let mut seq = Vec::new();
            while let NextAction::Run(s) = body.next_spec() {
                seq.push(s.tag());
            }
            seq
        };
        assert_eq!(mk(0), mk(0), "same client index must repeat");
        assert_ne!(mk(0), mk(1), "different clients should diverge");
    }

    #[test]
    fn materialized_phases_match_clientbody_sequencing() {
        let specs: Vec<QuerySpec> = (1..=22)
            .map(|n| QuerySpec::Tpch {
                number: n,
                variant: 0,
            })
            .collect();
        let wl = Workload::Mixed {
            specs: specs.clone(),
            iterations: 10,
            seed: 7,
        };
        let engine = Engine::new(crate::exec::engine::EngineConfig::default(), 4);
        for idx in [0usize, 1, 5] {
            let (mut body, _) = ClientBody::new(engine.clone(), wl.clone(), idx, None);
            let mut sim_seq = Vec::new();
            while let NextAction::Run(s) = body.next_spec() {
                sim_seq.push(s.tag());
            }
            let phases = materialize_phases(&wl, idx);
            assert_eq!(phases.len(), 1);
            let thr_seq: Vec<u32> = phases[0].iter().map(|s| s.tag()).collect();
            assert_eq!(sim_seq, thr_seq, "client {idx} draw sequence must match");
        }
        let phased = materialize_phases(
            &Workload::StablePhases {
                specs: specs[..3].to_vec(),
            },
            0,
        );
        assert_eq!(phased.len(), 3);
        assert!(phased.iter().all(|p| p.len() == 1));
        let rep = materialize_phases(
            &Workload::Repeat {
                spec: QuerySpec::Q6 { variant: 0 },
                iterations: 4,
            },
            3,
        );
        assert_eq!(rep, vec![vec![QuerySpec::Q6 { variant: 0 }; 4]]);
    }

    #[test]
    #[should_panic(expected = "barrier")]
    fn stable_phases_require_barrier() {
        let engine = Engine::new(crate::exec::engine::EngineConfig::default(), 4);
        let _ = ClientBody::new(
            engine,
            Workload::StablePhases {
                specs: vec![QuerySpec::Q6 { variant: 0 }],
            },
            0,
            None,
        );
    }
}
