//! Query execution: MAL-style plans, partitioned tasks, the worker pool
//! and the two engine flavors.

pub mod cost;
pub mod engine;
pub mod eval;
pub mod fault;
pub mod mat;
pub mod par;
pub mod plan;
pub mod task;
pub mod tomograph;

pub use engine::{Engine, EngineConfig, EngineStats, Flavor, QueryResult};
pub use fault::{FaultPlan, WorkerFault, WorkerFaultKind};
pub use mat::{Mat, NodeStorage, PairsMat, PosMat, ValMat};
pub use par::{BaseData, ParEngine, ParEngineConfig, QueryError};
pub use plan::{AggKind, ArithOp, CmpOp, NodeId, PhysOp, Plan, ScalarPred, Side};
pub use tomograph::{OpStats, Tomograph};
