//! Tomograph — per-operator execution statistics (Fig. 6).
//!
//! MonetDB's Tomograph facility tracks how many calls each MAL operator
//! made and how long they took across worker threads. The engine feeds
//! this registry on every completed task.

use emca_metrics::{FxHashMap, SimDuration};

/// Aggregate statistics of one operator kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Number of task executions ("calls" in Fig. 6).
    pub calls: u64,
    /// Total simulated execution time across all calls.
    pub total_time: SimDuration,
}

/// The per-operator trace registry.
#[derive(Clone, Debug, Default)]
pub struct Tomograph {
    ops: FxHashMap<&'static str, OpStats>,
}

impl Tomograph {
    /// An empty registry.
    pub fn new() -> Self {
        Tomograph::default()
    }

    /// Records one operator call.
    pub fn record(&mut self, op: &'static str, time: SimDuration) {
        let s = self.ops.entry(op).or_default();
        s.calls += 1;
        s.total_time += time;
    }

    /// Stats of one operator (zero if never seen).
    pub fn op(&self, name: &str) -> OpStats {
        self.ops.get(name).copied().unwrap_or_default()
    }

    /// All operators, sorted by total time descending (the Fig. 6 layout).
    pub fn by_time(&self) -> Vec<(&'static str, OpStats)> {
        let mut v: Vec<_> = self.ops.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by(|a, b| b.1.total_time.cmp(&a.1.total_time).then(a.0.cmp(b.0)));
        v
    }

    /// Total calls across all operators.
    pub fn total_calls(&self) -> u64 {
        self.ops.values().map(|s| s.calls).sum()
    }

    /// Clears the registry (between experiments).
    pub fn reset(&mut self) {
        self.ops.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut t = Tomograph::new();
        t.record("algebra.thetasubselect", SimDuration::from_millis(10));
        t.record("algebra.thetasubselect", SimDuration::from_millis(5));
        t.record("aggr.sum", SimDuration::from_millis(1));
        let s = t.op("algebra.thetasubselect");
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_time, SimDuration::from_millis(15));
        assert_eq!(t.total_calls(), 3);
        assert_eq!(t.op("nothing"), OpStats::default());
    }

    #[test]
    fn by_time_sorts_descending() {
        let mut t = Tomograph::new();
        t.record("a", SimDuration::from_millis(1));
        t.record("b", SimDuration::from_millis(9));
        let v = t.by_time();
        assert_eq!(v[0].0, "b");
        assert_eq!(v[1].0, "a");
    }

    #[test]
    fn reset_clears() {
        let mut t = Tomograph::new();
        t.record("a", SimDuration::from_millis(1));
        t.reset();
        assert_eq!(t.total_calls(), 0);
    }
}
