//! Partition tasks and their charging cursors.
//!
//! Every plan node is split horizontally into partition tasks (one per
//! worker, fewer for small inputs). A running task is a [`TaskCursor`]: a
//! prepared sequence of charge items — segment reads, compute quanta,
//! segment writes — that the worker advances against its time budget.
//! Real evaluation happens eagerly at preparation (engine side); the
//! cursor only meters simulated time and traffic.

use crate::exec::eval::GroupAcc;
use crate::exec::plan::NodeId;
use emca_metrics::SimDuration;
use numa_sim::{AccessKind, Region, SegId, StreamId};
use os_sim::WorkCtx;

/// Identifier of a running query inside the engine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QueryId(pub u64);

/// Minimum rows per partition before an operator is split less wide.
pub const MIN_ROWS_PER_PART: usize = 4096;

/// A schedulable unit: one partition of one plan node.
#[derive(Clone, Copy, Debug)]
pub struct Task {
    /// Owning query.
    pub qid: QueryId,
    /// Plan node.
    pub node: NodeId,
    /// Partition index.
    pub part: u32,
    /// Total partitions of the node.
    pub n_parts: u32,
    /// Preferred NUMA node (SQL Server flavor dispatch), derived from the
    /// home of the partition's first input segment.
    pub pref_node: Option<numa_sim::NodeId>,
    /// Preferred worker (MonetDB flavor dispatch): the worker that
    /// executed the same slice of the producing operator. Mitosis chains
    /// an input slice through the whole operator pipeline on one dataflow
    /// thread, so consumer tasks inherit their producer's worker and read
    /// its still-warm output.
    pub pref_worker: Option<u32>,
}

/// The real partial result of a task.
#[derive(Clone, Debug)]
pub enum Partial {
    /// Selected positions.
    Pos(Vec<u32>),
    /// Projected / computed f64 values.
    ValsF64(Vec<f64>),
    /// Projected i64 values.
    ValsI64(Vec<i64>),
    /// Rows written in place into the node's shared output buffer
    /// (fixed-width value operators; see `NodeRun::out_vals`).
    Written(usize),
    /// Join matches `(probe base positions, build base positions)`.
    PairParts(Vec<u32>, Vec<u32>),
    /// Partial sum.
    Sum(f64),
    /// Partial group accumulator (dense flat array or hash fallback).
    Groups(GroupAcc),
    /// Partial hash-join build: the partition's build keys, contiguous
    /// with the global build-row index space (chains are linked once at
    /// finalize, over the concatenated key array).
    BuildKeys(Vec<i64>),
    /// Memo hit: the node's value is already cached; the finalize step
    /// reuses it (timing still charged).
    Reuse,
}

/// One meterable step of a task.
#[derive(Clone, Copy, Debug)]
pub enum ChargeItem {
    /// Stream-read one segment.
    Read(SegId),
    /// Stream-write one segment.
    Write(SegId),
    /// Burn CPU cycles.
    Compute(u64),
}

/// A prepared, partially executed task.
pub struct TaskCursor {
    /// The task descriptor.
    pub task: Task,
    /// Traffic attribution stream of the owning query.
    pub stream: StreamId,
    /// MAL operator name (Tomograph).
    pub mal_name: &'static str,
    items: Vec<ChargeItem>,
    idx: usize,
    /// The evaluated partial (taken by the engine at completion).
    pub partial: Option<Partial>,
    /// Output rows produced by this partition.
    pub out_rows: usize,
    /// Output region (if the op materialises), allocated at prepare and
    /// first-touched by the write items.
    pub out_region: Option<Region>,
    /// Total simulated time charged so far.
    pub charged: SimDuration,
}

impl TaskCursor {
    /// Builds a cursor from prepared parts.
    pub fn new(
        task: Task,
        stream: StreamId,
        mal_name: &'static str,
        items: Vec<ChargeItem>,
        partial: Partial,
        out_rows: usize,
        out_region: Option<Region>,
    ) -> Self {
        TaskCursor {
            task,
            stream,
            mal_name,
            items,
            idx: 0,
            partial: Some(partial),
            out_rows,
            out_region,
            charged: SimDuration::ZERO,
        }
    }

    /// Remaining charge items (diagnostics).
    pub fn remaining(&self) -> usize {
        self.items.len() - self.idx
    }

    /// Takes the charge-item storage for reuse (the engine pools the
    /// vectors across tasks to cut allocator churn on the hot path).
    pub fn take_items(&mut self) -> Vec<ChargeItem> {
        self.idx = 0;
        std::mem::take(&mut self.items)
    }

    /// Advances the cursor by at most `budget`, charging reads/writes/
    /// compute against the machine. Returns `(time used, finished)`.
    /// May slightly overshoot the budget by one item (≤ a segment
    /// access); the caller treats the overshoot as consumed.
    pub fn advance(&mut self, ctx: &mut WorkCtx<'_>, budget: SimDuration) -> (SimDuration, bool) {
        let mut used = SimDuration::ZERO;
        while self.idx < self.items.len() {
            if used >= budget {
                self.charged += used;
                return (used, false);
            }
            let item = self.items[self.idx];
            self.idx += 1;
            let t = match item {
                ChargeItem::Read(seg) => {
                    ctx.machine
                        .access_segment(ctx.core, seg, AccessKind::Read, self.stream)
                        .time
                }
                ChargeItem::Write(seg) => {
                    ctx.machine
                        .access_segment(ctx.core, seg, AccessKind::Write, self.stream)
                        .time
                }
                ChargeItem::Compute(cycles) => ctx.machine.compute(cycles),
            };
            used += t;
        }
        self.charged += used;
        (used, true)
    }
}

/// Deterministic partition boundaries: row range of partition `part` of
/// `n_parts` over `len` rows.
pub fn part_range(len: usize, part: u32, n_parts: u32) -> (usize, usize) {
    debug_assert!(part < n_parts);
    let n = n_parts as usize;
    let p = part as usize;
    let start = len * p / n;
    let end = len * (p + 1) / n;
    (start, end)
}

/// How many partitions an operator over `len` rows is split into given
/// `workers` worker threads (MonetDB's mitosis: one slice per worker, but
/// never slices smaller than [`MIN_ROWS_PER_PART`]).
pub fn n_parts_for(len: usize, workers: usize) -> u32 {
    let by_size = len.div_ceil(MIN_ROWS_PER_PART).max(1);
    by_size.min(workers.max(1)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_ranges_cover_exactly() {
        let len = 100_003;
        let n = 16;
        let mut covered = 0;
        for p in 0..n {
            let (s, e) = part_range(len, p, n);
            assert_eq!(s, covered);
            covered = e;
        }
        assert_eq!(covered, len);
    }

    #[test]
    fn part_count_respects_floor() {
        assert_eq!(n_parts_for(100, 16), 1);
        assert_eq!(n_parts_for(4096, 16), 1);
        assert_eq!(n_parts_for(8192, 16), 2);
        assert_eq!(n_parts_for(1_000_000, 16), 16);
        assert_eq!(n_parts_for(0, 16), 1);
        assert_eq!(n_parts_for(1_000_000, 0), 1);
    }

    #[test]
    fn cursor_advances_within_budget() {
        use emca_metrics::SimTime;
        use numa_sim::{CoreId, Machine};
        use os_sim::Tid;

        let mut machine = Machine::opteron_4x4();
        let sp = machine.create_space();
        let region = machine.alloc(sp, 4 * numa_sim::SEG_BYTES);
        let items: Vec<ChargeItem> = region
            .segments()
            .map(ChargeItem::Read)
            .chain(std::iter::once(ChargeItem::Compute(28_000)))
            .collect();
        let task = Task {
            qid: QueryId(1),
            node: NodeId(0),
            part: 0,
            n_parts: 1,
            pref_node: None,
            pref_worker: None,
        };
        let mut cursor = TaskCursor::new(
            task,
            StreamId(1),
            "algebra.thetasubselect",
            items,
            Partial::Pos(vec![]),
            0,
            None,
        );
        assert_eq!(cursor.remaining(), 5);
        let mut wakes = Vec::new();
        let mut ctx = WorkCtx {
            machine: &mut machine,
            core: CoreId(0),
            now: SimTime::ZERO,
            budget: SimDuration::from_micros(100),
            tid: Tid(0),
            wakes: &mut wakes,
        };
        // A tiny budget makes progress but does not finish.
        let (used, done) = cursor.advance(&mut ctx, SimDuration::from_micros(15));
        assert!(!done);
        assert!(used >= SimDuration::from_micros(10)); // at least one DRAM fetch
                                                       // A generous budget finishes the rest.
        let (_, done) = cursor.advance(&mut ctx, SimDuration::from_secs(1));
        assert!(done);
        assert_eq!(cursor.remaining(), 0);
        assert!(cursor.charged > SimDuration::from_micros(40));
        // The four segments were read once each.
        assert_eq!(ctx.machine.counters().total_l3_misses(), 4);
    }
}
